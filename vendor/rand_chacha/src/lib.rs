//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha8 keystream generator behind the
//! stand-in `rand` traits. Deterministic per seed; the stream is not
//! guaranteed word-for-word identical to upstream `rand_chacha`
//! (which the workspace never relies on — seeds only pin
//! reproducibility of generated point sets).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    input: [u32; 16],
    /// Buffered keystream words not yet handed out.
    buffer: [u32; 16],
    /// Next unread index into `buffer` (16 = exhausted).
    cursor: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = working;
        self.cursor = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.input[12].overflowing_add(1);
        self.input[12] = lo;
        if carry {
            self.input[13] = self.input[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut input = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        for i in 0..8 {
            input[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        Self {
            input,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut c = ChaCha8Rng::seed_from_u64(10);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = 100_000;
        let ones: u32 = (0..n).map(|_| rng.next_u32().count_ones()).sum();
        let mean = ones as f64 / n as f64;
        assert!((15.8..16.2).contains(&mean), "bit bias: {mean}");
    }
}
