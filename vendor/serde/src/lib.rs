//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace
//! patches `serde` to this implementation. Instead of upstream serde's
//! visitor-based data model it uses one concrete intermediate form,
//! [`value::Value`] (a JSON-shaped tree): [`Serialize`] renders a type
//! into a `Value`, [`Deserialize`] rebuilds a type from one. The
//! companion `serde_json` stand-in handles text.
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! the local `serde_derive` proc-macro crate) support exactly the
//! shapes this workspace uses: structs with named fields and enums
//! with unit variants. Object keys preserve declaration order, so
//! serialized output is deterministic — which the perf-regression
//! goldens rely on.

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate tree every type serializes through.
pub mod value {
    /// A JSON-shaped value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// Non-negative integer.
        U64(u64),
        /// Negative integer.
        I64(i64),
        /// Floating-point number.
        F64(f64),
        /// JSON string.
        Str(String),
        /// JSON array.
        Array(Vec<Value>),
        /// JSON object; insertion order is preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// True for `Value::Null`.
        #[must_use]
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        /// Looks up a key in an object value.
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Element of an array value.
        #[must_use]
        pub fn get_index(&self, i: usize) -> Option<&Value> {
            match self {
                Value::Array(items) => items.get(i),
                _ => None,
            }
        }

        /// Numeric view (any of the three number variants).
        #[must_use]
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::U64(v) => Some(v as f64),
                Value::I64(v) => Some(v as f64),
                Value::F64(v) => Some(v),
                _ => None,
            }
        }

        /// Unsigned view; exact only.
        #[must_use]
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Value::U64(v) => Some(v),
                Value::I64(v) if v >= 0 => Some(v as u64),
                _ => None,
            }
        }

        /// Signed view; exact only.
        #[must_use]
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Value::U64(v) => i64::try_from(v).ok(),
                Value::I64(v) => Some(v),
                _ => None,
            }
        }

        /// String view.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Boolean view.
        #[must_use]
        pub fn as_bool(&self) -> Option<bool> {
            match *self {
                Value::Bool(b) => Some(b),
                _ => None,
            }
        }

        /// Array view.
        #[must_use]
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// Object view.
        #[must_use]
        pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        /// Short description of the variant, for error messages.
        #[must_use]
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            static NULL: Value = Value::Null;
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        fn index(&self, i: usize) -> &Value {
            static NULL: Value = Value::Null;
            self.get_index(i).unwrap_or(&NULL)
        }
    }
}

/// Deserialization error plumbing.
pub mod de {
    use crate::value::Value;

    /// Why deserialization failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// New error with a message.
        #[must_use]
        pub fn custom(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }

        /// Adds field/element context to an inner error.
        #[must_use]
        pub fn context(self, path: &str) -> Self {
            Self {
                message: format!("{path}: {}", self.message),
            }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    impl std::error::Error for Error {}

    /// Looks up `key` in `v` (which must be an object) and
    /// deserializes the field, attaching the key to any error.
    ///
    /// # Errors
    /// If `v` is not an object, the key is absent, or the field fails
    /// to deserialize.
    pub fn field<T: crate::Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
        match v.get(key) {
            Some(inner) => T::from_value(inner).map_err(|e| e.context(key)),
            None => Err(Error::custom(format!(
                "missing field `{key}` in {}",
                v.kind()
            ))),
        }
    }
}

use de::Error;
use value::Value;

/// Renders `self` into the serde [`Value`] tree.
pub trait Serialize {
    /// The value form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `v`.
    ///
    /// # Errors
    /// If `v` has the wrong shape for `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {}", v.kind())))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, found {}", v.kind()
                    ))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = v.as_u64().ok_or_else(|| {
            Error::custom(format!("expected unsigned integer, found {}", v.kind()))
        })?;
        usize::try_from(raw).map_err(|_| Error::custom(format!("{raw} out of range for usize")))
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, found {}", v.kind()))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| {
                    Error::custom(format!("expected number, found {}", v.kind()))
                })
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", v.kind())))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| e.context(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn errors_carry_context() {
        let v = Value::Object(vec![("a".into(), Value::Str("x".into()))]);
        let e = de::field::<u64>(&v, "a").unwrap_err();
        assert!(e.to_string().contains('a'));
        let e = de::field::<u64>(&v, "b").unwrap_err();
        assert!(e.to_string().contains("missing field"));
    }
}
