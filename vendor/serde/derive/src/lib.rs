//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the two shapes this workspace uses — structs with named fields and
//! enums with unit variants — by hand-parsing the item token stream
//! (no `syn`/`quote`, which are unavailable offline). Structs map to
//! objects whose keys follow field declaration order; unit enums map
//! to their variant name as a string.
//!
//! Anything else (tuple structs, generic types, variants with
//! payloads, `#[serde(...)]` attributes) is rejected with a
//! `compile_error!` so unsupported shapes fail loudly at build time
//! rather than serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the derive target.
enum Item {
    /// Struct name + named fields, in declaration order.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names, in declaration order.
    Enum(String, Vec<String>),
}

fn err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Consumes leading `#[...]` attribute groups and a `pub` /
/// `pub(...)` visibility prefix, flagging `#[serde(...)]`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> Result<usize, String> {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner = g.stream().to_string();
                    if inner.starts_with("serde") {
                        return Err("#[serde(...)] attributes are not supported by the \
                                    offline serde_derive stand-in"
                            .into());
                    }
                    i += 2;
                } else {
                    return Err("malformed attribute".into());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return Ok(i),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0)?;

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the offline serde_derive stand-in"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "`{name}`: only braced bodies (named fields / unit variants) are supported"
            ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    match kind.as_str() {
        "struct" => parse_named_fields(&body).map(|fields| Item::Struct(name, fields)),
        "enum" => parse_unit_variants(&body).map(|variants| Item::Enum(name, variants)),
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i)?;
        if i >= body.len() {
            break;
        }
        let field = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        // Consume the type: everything up to the next comma at angle
        // depth zero. Delimited groups arrive as single tokens, so
        // only `<`/`>` need tracking.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i)?;
        if i >= body.len() {
            break;
        }
        let variant = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{variant}` carries data; the offline serde_derive \
                     stand-in only supports unit variants"
                ))
            }
            Some(other) => return Err(format!("unexpected token `{other}` after `{variant}`")),
        }
        variants.push(variant);
    }
    Ok(variants)
}

/// Derives the stand-in `serde::Serialize` (see module docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return err(&e),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         let mut obj: ::std::vec::Vec<(::std::string::String, \
                             ::serde::value::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::value::Value::Object(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Str(match self {{\n{arms}}}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives the stand-in `serde::Deserialize` (see module docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return err(&e),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(v, {f:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) \
                         -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                         ::core::result::Result::Ok(Self {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::core::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) \
                         -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                         let s = v.as_str().ok_or_else(|| ::serde::de::Error::custom(\
                             format!(\"expected {name} variant string, found {{}}\", v.kind())))?;\n\
                         match s {{\n{arms}\
                             other => ::core::result::Result::Err(::serde::de::Error::custom(\
                                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
