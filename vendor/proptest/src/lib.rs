//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest DSL this workspace's property
//! tests use: the `proptest!` macro with `arg in strategy` bindings
//! and an optional `#![proptest_config(...)]` header, range / `Just` /
//! `prop_oneof!` / `collection::vec` / `option::of` /
//! `sample::select` / `any::<bool>()` strategies, `prop_map`, and the
//! `prop_assert*` macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! reports its inputs (printed by a drop guard) and panics. Cases are
//! generated from a SplitMix64 stream seeded by the test name, so runs
//! are fully deterministic.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A reference-counted type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    /// Object-safe strategy view (used by `prop_oneof!`).
    pub trait DynStrategy<T> {
        /// Draws one value.
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from a non-empty option list.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A 0),
        (A 0, B 1),
        (A 0, B 1, C 2),
        (A 0, B 1, C 2, D 3),
        (A 0, B 1, C 2, D 3, E 4),
        (A 0, B 1, C 2, D 3, E 4, F 5)
    );

    /// `any::<T>()` support.
    pub trait ArbitraryValue: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (proptest's `any::<T>()`).
    #[must_use]
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification: fixed or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with the given element strategy and size.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy (proptest's `collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest::option` — `Option<T>` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Wraps a strategy into an optional one (proptest's `option::of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// `proptest::sample` — choosing from explicit collections.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed set.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Uniformly selects one element (proptest's `sample::select`).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select { options }
    }
}

/// Test-execution plumbing used by the `proptest!` expansion.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test path) and case
        /// index so every test sees an independent stream.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Prints the failing case's inputs if the test body panics.
    pub struct CaseGuard {
        description: String,
        armed: bool,
    }

    impl CaseGuard {
        /// Arms the guard with a rendered input description.
        #[must_use]
        pub fn new(description: String) -> Self {
            Self {
                description,
                armed: true,
            }
        }

        /// Disarms after the body completes successfully.
        pub fn disarm(&mut self) {
            self.armed = false;
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!("proptest: failing case inputs: {}", self.description);
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// The property-test entry macro. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    (@fns $cfg:expr; ) => {};
    (@fns $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )*
                let mut guard = $crate::test_runner::CaseGuard::new(format!(
                    concat!("case {}: ", $(stringify!($arg), " = {:?}, ",)* ""),
                    case, $(&$arg),*
                ));
                $body
                guard.disarm();
            }
        }
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -5i32..5, f in 0.25f32..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn collections_and_options(v in crate::collection::vec(0u32..100, 32),
                                   o in crate::option::of(0u32..10)) {
            prop_assert_eq!(v.len(), 32);
            prop_assert!(v.iter().all(|&x| x < 100));
            if let Some(x) = o { prop_assert!(x < 10); }
        }

        #[test]
        fn oneof_and_select(c in prop_oneof![Just(1u8), Just(2u8)],
                            s in crate::sample::select(vec![10usize, 20, 30])) {
            prop_assert!(c == 1 || c == 2);
            prop_assert!(s % 10 == 0 && s <= 30);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0u32..4).prop_map(|x| x * 100);
        let mut rng = TestRng::deterministic("map");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 100 == 0 && v < 400);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
