//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no crates.io access, so the workspace
//! patches `rayon` to this implementation (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It reproduces the subset of the rayon API
//! the workspace uses — `par_iter`, `par_iter_mut`, `into_par_iter`,
//! `par_chunks_mut` and the common adaptors — with real parallelism:
//! terminal operations fan work out across `std::thread::scope`
//! threads, one chunk per available core.
//!
//! Semantic differences from upstream rayon are deliberate
//! simplifications, not bugs to inherit from:
//!
//! * adaptors are **eager** (each `map` is a full parallel pass), so
//!   long adaptor chains cost one materialised `Vec` per stage;
//! * there is no work stealing — items are split into contiguous
//!   chunks up front, which is fine for the uniform per-item cost of
//!   the simulator's block replays;
//! * panics in worker closures propagate to the caller on join.

use std::cell::Cell;
use std::ops::Range;

/// `rayon::prelude` — import everything call sites need.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
        ParallelSliceMut,
    };
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]
    /// (0 = no override, use the machine's parallelism).
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Set on fan-out worker threads so nested parallel calls run
    /// inline instead of spawning threads-of-threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn thread_count() -> usize {
    let pinned = POOL_THREADS.with(Cell::get);
    if pinned > 0 {
        return pinned;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The number of threads parallel operations currently fan out to:
/// the innermost [`ThreadPool::install`] override, or the machine's
/// available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    thread_count()
}

/// Splits `items` into roughly equal contiguous chunks, runs `f` over
/// each chunk on its own scoped thread, and returns the per-chunk
/// outputs in order.
fn fan_out<T: Send, U: Send>(items: Vec<T>, f: impl Fn(Vec<T>) -> Vec<U> + Sync) -> Vec<U> {
    let n = items.len();
    let workers = thread_count().min(n);
    if workers <= 1 || IN_WORKER.with(Cell::get) {
        return f(items);
    }
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let pinned = POOL_THREADS.with(Cell::get);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move || {
                    // Workers inherit the pool override so code asking
                    // for the thread count sees a consistent answer,
                    // and run nested parallelism inline (rayon pool
                    // threads likewise never over-subscribe).
                    POOL_THREADS.with(|p| p.set(pinned));
                    IN_WORKER.with(|w| w.set(true));
                    f(c)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Error building a [`ThreadPool`] (kept for rayon API parity; this
/// stand-in cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped [`ThreadPool`], mirroring rayon's API.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default (machine) thread count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the pool to `n` threads (0 = machine default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in this stand-in; the `Result` mirrors rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override. Unlike upstream rayon there are no
/// persistent pool threads: `install` pins the fan-out width for the
/// duration of the closure (including parallel calls it makes), which
/// is the property call sites rely on for deterministic sizing.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed; parallel
    /// operations inside `f` fan out to at most that many threads.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|p| p.replace(self.num_threads));
        let out = f();
        POOL_THREADS.with(|p| p.set(prev));
        out
    }

    /// The pool's thread count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// An eager parallel iterator: the item set is materialised and each
/// terminal (or mapping) operation distributes it across threads.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map; preserves input order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync + Send,
    {
        ParIter {
            items: fan_out(self.items, |chunk| chunk.into_iter().map(&f).collect()),
        }
    }

    /// Parallel side-effecting traversal.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        fan_out(self.items, |chunk| {
            chunk.into_iter().for_each(&f);
            Vec::<()>::new()
        });
    }

    /// Pairs every item with its index (like `Iterator::enumerate`).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Keeps items satisfying the predicate.
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync + Send,
    {
        ParIter {
            items: fan_out(self.items, |chunk| {
                chunk.into_iter().filter(|x| f(x)).collect()
            }),
        }
    }

    /// Collects into any `FromIterator` container, in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Folds with `op` after seeding each chunk with `identity`
    /// (rayon's reduce signature).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync + Send,
        OP: Fn(T, T) -> T + Sync + Send,
    {
        self.items.into_iter().fold(identity(), &op)
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Accepted for API compatibility; chunking is already contiguous.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_into_par!(usize, u32, u64, i32, i64);

/// `par_iter()` over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send + 'a;
    /// Parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut()` over exclusive references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutable reference item type.
    type Item: Send + 'a;
    /// Parallel iterator over `&mut self`'s items.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Parallel chunking of mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut data = vec![0u64; 97];
        data.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = i as u64;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[95], 9);
    }

    #[test]
    fn sum_and_filter() {
        let s: usize = (0..100usize).into_par_iter().filter(|x| x % 2 == 0).sum();
        assert_eq!(s, (0..100).filter(|x| x % 2 == 0).sum());
    }

    #[test]
    fn pool_install_pins_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(crate::current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(crate::current_num_threads(), 0, "override restored");
    }

    #[test]
    fn pool_install_nests_and_restores() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(5)
            .build()
            .unwrap();
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(crate::current_num_threads(), 5);
            inner.install(|| assert_eq!(crate::current_num_threads(), 2));
            assert_eq!(crate::current_num_threads(), 5);
        });
    }

    #[test]
    fn workers_inherit_override_and_run_nested_inline() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let counts: Vec<usize> = pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map(|_| {
                    // Nested parallelism inside a worker must still see
                    // the pinned count and must not explode into
                    // threads-of-threads (it runs inline).
                    let inner: Vec<usize> = (0..8usize).into_par_iter().map(|x| x).collect();
                    assert_eq!(inner, (0..8).collect::<Vec<_>>());
                    crate::current_num_threads()
                })
                .collect()
        });
        assert!(counts.iter().all(|&c| c == 4));
    }
}
