//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the stand-in serde [`Value`] tree to JSON text and
//! parses it back. Numbers keep their integer-ness (`u64`/`i64` stay
//! exact; floats print with Rust's shortest round-trip formatting), so
//! counter values survive a JSON round trip bit-exactly — the property
//! the perf-regression goldens depend on.

pub use serde::value::Value;

/// JSON parse/convert error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Converts any serializable type into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a type from a [`Value`].
///
/// # Errors
/// If the value has the wrong shape for `T`.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes to compact JSON.
///
/// # Errors
/// Never fails for the stand-in value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indent).
///
/// # Errors
/// Never fails for the stand-in value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    from_value(&v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v:?}");
        out.push_str(&s);
    } else {
        // JSON has no NaN/Inf; upstream serde_json emits null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

/// Builds a [`Value`] object/array literal. Values are any
/// `serde::Serialize` expressions; nested containers use nested
/// `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( serde::Serialize::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), serde::Serialize::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { serde::Serialize::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_numbers_exactly() {
        let v = Value::Object(vec![
            ("big".into(), Value::U64(u64::MAX)),
            ("neg".into(), Value::I64(-42)),
            ("f".into(), Value::F64(0.1)),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x\n", true, null], "b": {}}"#).unwrap();
        assert_eq!(v["a"][0], Value::U64(1));
        assert_eq!(v["a"][1], Value::F64(2.5));
        assert_eq!(v["a"][2], Value::Str("x\n".into()));
        assert_eq!(v["b"], Value::Object(vec![]));
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "k": 32usize, "name": "fused" });
        assert_eq!(v["k"], Value::U64(32));
        assert_eq!(v["name"].as_str(), Some("fused"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
    }
}
