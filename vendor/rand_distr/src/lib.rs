//! Offline stand-in for `rand_distr`: the [`Normal`] distribution via
//! the Box-Muller transform, which is all this workspace samples.

use rand::distributions::Distribution;
use rand::Rng;

/// Floats Box-Muller works over.
pub trait Float: Copy {
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64`.
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

/// Invalid [`Normal`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Standard deviation was negative or NaN.
    StdDevTooSmall,
    /// Mean was NaN.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::StdDevTooSmall => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates the distribution.
    ///
    /// # Errors
    /// If `std_dev` is negative or either parameter is NaN.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !mean.to_f64().is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        let sd = std_dev.to_f64();
        if sd.is_nan() || sd < 0.0 || !sd.is_finite() {
            return Err(NormalError::StdDevTooSmall);
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        // Box-Muller; one of the pair is discarded for simplicity.
        let u1: f64 = loop {
            let u: f64 = rand::distributions::Standard.sample(rng);
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rand::distributions::Standard.sample(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng, StdRng};

    #[test]
    fn rejects_bad_sigma() {
        assert!(Normal::new(0.0f32, -1.0f32).is_err());
        assert!(Normal::new(0.0f32, f32::NAN).is_err());
        assert!(Normal::new(0.0f32, 0.5f32).is_ok());
    }

    #[test]
    fn moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(11);
        let _ = rng.next_u32();
        let n = Normal::new(2.0f64, 3.0f64).unwrap();
        let count = 200_000;
        let samples: Vec<f64> = (0..count).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }
}
