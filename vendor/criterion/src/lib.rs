//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors the criterion API surface the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`). Instead of criterion's
//! statistical engine it runs a short warm-up, then `sample_size`
//! timed samples, and prints median wall time (and derived
//! throughput). Good enough to (a) keep `--benches` compiling and
//! (b) give ballpark per-commit numbers; not a replacement for real
//! criterion statistics.

use std::time::{Duration, Instant};

/// Keeps the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted for API compatibility;
/// every batch is one iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Work-rate annotation for a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Runs closures and accumulates timing samples.
pub struct Bencher {
    samples: u64,
    /// Median duration of one iteration, filled by `iter*`.
    measured: Option<Duration>,
}

impl Bencher {
    fn time<F: FnMut()>(&mut self, mut once: F) {
        // Warm-up.
        once();
        let mut durations: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                once();
                start.elapsed()
            })
            .collect();
        durations.sort();
        self.measured = Some(durations[durations.len() / 2]);
    }

    /// Times `routine` directly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.time(|| {
            black_box(routine());
        });
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Setup cost is included here (criterion excludes it); the
        // workspace's setup closures are cheap clones, so medians stay
        // comparable run-to-run.
        self.time(|| {
            let input = setup();
            black_box(routine(input));
        });
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Annotates per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        f(&mut b);
        let median = b.measured.unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  {:.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(
                    "  {:.3} MiB/s",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{}/{id}: median {median:?}{rate}", self.name);
    }

    /// Benchmarks a closure.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        self.run(&id.label.clone(), f);
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        let id = id.into();
        self.run(&id.label.clone(), |b| f(b, input));
    }

    /// Ends the group (printing happens per-bench).
    pub fn finish(self) {}
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Declares a bench entry point running the listed functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
