//! Offline stand-in for the `rand` crate.
//!
//! Provides the trait surface this workspace uses (`RngCore`, `Rng`,
//! `SeedableRng`, `Distribution`, `Uniform`, `Standard`). Generators
//! are deterministic for a given seed, which is all the tests and the
//! data generators require; the streams do **not** match upstream
//! `rand`'s bit-for-bit.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`](distributions::Standard)
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: Into<distributions::Uniform<T>>,
        Self: Sized,
    {
        use distributions::Distribution;
        range.into().sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (as upstream
    /// rand does) and builds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Distributions over values.
pub mod distributions {
    use super::Rng;

    /// A distribution that can be sampled with any [`Rng`].
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: full range for integers,
    /// `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 mantissa bits, uniform in [0, 1).
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    /// Uniform sampling support for the ranges [`Uniform`] accepts.
    pub mod uniform {
        use super::{Distribution, Rng};

        /// Types [`super::Uniform`] can sample.
        pub trait SampleUniform: Copy + PartialOrd {
            /// Draws uniformly from `[lo, hi)`.
            fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty => $wide:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo < hi, "Uniform requires lo < hi");
                        let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                        // Multiply-shift bounded sampling; bias is
                        // < 2^-64 per draw, irrelevant for tests.
                        let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                        ((lo as $wide).wrapping_add(r as $wide)) as $t
                    }
                }
            )*};
        }
        impl_sample_uniform_int!(
            u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
            i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
        );

        macro_rules! impl_sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo < hi, "Uniform requires lo < hi");
                        let unit: $t = super::Standard.sample(rng);
                        lo + unit * (hi - lo)
                    }
                }
            )*};
        }
        impl_sample_uniform_float!(f32, f64);
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: uniform::SampleUniform> Uniform<T> {
        /// Uniform over the half-open range `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Self { lo, hi }
        }
    }

    impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_uniform(self.lo, self.hi, rng)
        }
    }

    impl<T: uniform::SampleUniform> From<std::ops::Range<T>> for Uniform<T> {
        fn from(r: std::ops::Range<T>) -> Self {
            Uniform::new(r.start, r.end)
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::{Rng, RngCore, SeedableRng};
}

pub use distributions::Distribution;

/// Default small fast generator (xoshiro256++-class quality is not
/// needed here; SplitMix64 is statistically fine for tests and data
/// generation).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = 0u64;
        for chunk in seed.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state ^= u64::from_le_bytes(word);
        }
        Self { state }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = Uniform::new(0.0f32, 1.0f32);
        for _ in 0..10_000 {
            let x = u.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
        let d = Uniform::new(5usize, 10usize);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((5..10).contains(&x));
        }
    }

    #[test]
    fn gen_range_and_gen() {
        let mut rng = StdRng::seed_from_u64(3);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let y = rng.gen_range(0u32..100);
        assert!(y < 100);
    }
}
