//! Cross-crate behavioural tests of the simulator substrate:
//! determinism, traffic-vs-functional equivalence on full pipelines,
//! and failure injection.

use kernel_summation::gpu_kernels::{GpuKernelSummation, GpuVariant};
use kernel_summation::gpu_sim::GpuDevice;
use kernel_summation::prelude::*;

fn problem_arrays(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let a = PointSet::uniform_cube(m, k, 7).coords().to_vec();
    let b = PointSet::uniform_cube(n, k, 8).coords().to_vec();
    let w = PointSet::uniform_cube(n, 1, 9).coords().to_vec();
    (a, b, w)
}

#[test]
fn profiles_are_deterministic_across_runs() {
    let ks = GpuKernelSummation::new(1024, 1024, 32, 1.0);
    let run = || {
        let mut dev = GpuDevice::gtx970();
        ks.profile(&mut dev, GpuVariant::Fused).unwrap()
    };
    let p1 = run();
    let p2 = run();
    assert_eq!(p1.kernels.len(), p2.kernels.len());
    for (a, b) in p1.kernels.iter().zip(p2.kernels.iter()) {
        assert_eq!(a.counters, b.counters, "{}", a.name);
        assert_eq!(a.mem, b.mem, "{}", a.name);
        assert!((a.timing.time_s - b.timing.time_s).abs() < 1e-15);
    }
}

#[test]
fn functional_execution_is_reproducible_with_same_seed() {
    let (a, b, w) = problem_arrays(256, 256, 16);
    let ks = GpuKernelSummation::new(256, 256, 16, 1.0);
    let run = || {
        let mut dev = GpuDevice::gtx970();
        ks.execute(&mut dev, GpuVariant::CudaUnfused, &a, &b, &w)
            .unwrap()
            .0
    };
    // The unfused pipeline has no atomics, so results are bitwise
    // reproducible even with parallel block execution.
    assert_eq!(run(), run());
}

#[test]
fn atomic_reduction_is_reproducible_within_tolerance() {
    let (a, b, w) = problem_arrays(256, 512, 16);
    let ks = GpuKernelSummation::new(256, 512, 16, 1.0);
    let run = || {
        let mut dev = GpuDevice::gtx970();
        ks.execute(&mut dev, GpuVariant::Fused, &a, &b, &w)
            .unwrap()
            .0
    };
    let v1 = run();
    let v2 = run();
    // Atomic accumulation order varies across host threads; float
    // addition is not associative, so allow rounding-level wiggle.
    for (x, y) in v1.iter().zip(v2.iter()) {
        assert!((x - y).abs() <= 1e-4 * x.abs().max(1.0), "{x} vs {y}");
    }
}

#[test]
fn execute_and_profile_report_identical_traffic() {
    // Functional execution must not change what the traffic replay
    // says about the memory system.
    let (a, b, w) = problem_arrays(256, 256, 16);
    let ks = GpuKernelSummation::new(256, 256, 16, 1.0);
    let mut d1 = GpuDevice::gtx970();
    let (_, from_execute) = ks
        .execute(&mut d1, GpuVariant::CublasUnfused, &a, &b, &w)
        .unwrap();
    let mut d2 = GpuDevice::gtx970();
    let from_profile = ks.profile(&mut d2, GpuVariant::CublasUnfused).unwrap();
    for (x, y) in from_execute.kernels.iter().zip(from_profile.kernels.iter()) {
        assert_eq!(x.counters, y.counters, "{}", x.name);
        assert_eq!(x.mem, y.mem, "{}", x.name);
    }
}

#[test]
fn oversized_problems_are_rejected_not_miscomputed() {
    // K not a multiple of 8 must fail at construction.
    let r = std::panic::catch_unwind(|| GpuKernelSummation::new(128, 128, 12, 1.0));
    assert!(r.is_err(), "K=12 must violate the tiling constraints");
    // Invalid bandwidth must fail, too.
    let r = std::panic::catch_unwind(|| GpuKernelSummation::new(128, 128, 8, 0.0));
    assert!(r.is_err(), "h=0 must be rejected");
}

#[test]
fn l2_size_matters_for_the_unfused_pipeline() {
    // Shrinking the L2 by 8x must increase DRAM traffic for the
    // cache-sensitive unfused pipeline: the simulator actually
    // simulates the cache, it doesn't just count bytes.
    let ks = GpuKernelSummation::new(2048, 1024, 32, 1.0);
    let mut big = GpuDevice::gtx970();
    let p_big = ks.profile(&mut big, GpuVariant::CublasUnfused).unwrap();
    let mut small_cfg = kernel_summation::gpu_sim::DeviceConfig::gtx970();
    small_cfg.l2_bytes /= 8;
    let mut small = GpuDevice::new(small_cfg);
    let p_small = ks.profile(&mut small, GpuVariant::CublasUnfused).unwrap();
    assert!(
        p_small.total_mem().dram_transactions() > p_big.total_mem().dram_transactions(),
        "smaller L2 must leak more traffic to DRAM: {} vs {}",
        p_small.total_mem().dram_transactions(),
        p_big.total_mem().dram_transactions()
    );
}

#[test]
fn gpu_and_cpu_fused_agree_on_a_paper_sized_cell() {
    let (m, n, k) = (1024, 1024, 32);
    let p = KernelSumProblem::builder()
        .sources(PointSet::uniform_cube(m, k, 21))
        .targets(PointSet::uniform_cube(n, k, 22))
        .weights(PointSet::uniform_cube(n, 1, 23).coords().to_vec())
        .kernel(GaussianKernel { h: 1.0 })
        .build();
    let cpu = p.solve(kernel_summation::core::Backend::CpuFused);
    let gpu = p.solve(kernel_summation::core::Backend::GpuSim(GpuVariant::Fused));
    assert!(
        max_rel_error(&gpu, &cpu) < 5e-3,
        "err {}",
        max_rel_error(&gpu, &cpu)
    );
}
