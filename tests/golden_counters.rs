//! Golden-value regression tests: exact counter values for a fixed
//! reference configuration. Any change to the kernels' instruction
//! streams, the coalescer, the bank model or the L2 shows up here
//! first — these numbers were derived by hand from the paper's tiling
//! (see the per-assertion notes) and cross-checked against the
//! functional engine.

use kernel_summation::gpu_kernels::{GpuKernelSummation, GpuVariant};
use kernel_summation::gpu_sim::{DeviceConfig, GpuDevice};

/// M = 1024, N = 1024, K = 32: 64 blocks, 4 k-tiles per block.
fn fused_profile() -> kernel_summation::gpu_sim::profiler::PipelineProfile {
    let ks = GpuKernelSummation::new(1024, 1024, 32, 1.0);
    let mut dev = GpuDevice::gtx970();
    ks.profile(&mut dev, GpuVariant::Fused).unwrap()
}

#[test]
fn fused_kernel_golden_counters() {
    let prof = fused_profile();
    let k = &prof.kernels[2]; // norms_a, norms_b, fused
    let c = &k.counters;
    let blocks = 64u64;
    let tiles = 4u64;

    // GEMM FFMAs: blocks × tiles × 8 warps × 8 steps × 64,
    // + evaluation (128 + 64 per warp) + W-fold (64 per warp).
    assert_eq!(c.ffma_insts, blocks * (tiles * 8 * 8 * 64 + 8 * (128 + 64)));
    // exp: 64 MUFU per warp.
    assert_eq!(c.sfu_insts, blocks * 8 * 64);
    // Tile loads: 2 LDG.128/warp/tile; epilogue: 2 (a2) + 2 (b2) + 2
    // (w) LDG.128 per warp.
    assert_eq!(c.global_load_insts, blocks * (tiles * 8 * 2 + 8 * 6));
    // No plain stores; 4 atomic warp instructions per block.
    assert_eq!(c.global_store_insts, 0);
    assert_eq!(c.atomic_insts, blocks * 4);
    // Atomics touch 16 sectors per block (128 contiguous floats).
    assert_eq!(c.atomic_sectors, blocks * 16);
    // Shared stores: tile staging (8 warps × 8 phases per tile) + the
    // T scratch (8 warps × 8 single-lane phases).
    assert_eq!(c.smem.store_instructions, blocks * (tiles * 8 * 8 + 8 * 8));
    // Swizzled staging is conflict-free; T stores have 2 active lanes
    // in distinct banks — transactions equal instructions.
    assert_eq!(c.smem.store_transactions, c.smem.store_instructions);
    // Shared loads: GEMM (8 LDS.64 per warp-step ⇒ 2 transactions
    // each) + the drain (4 warps × 1 LDS.32).
    assert_eq!(c.smem.load_instructions, blocks * (tiles * 8 * 8 * 8 + 4));
    assert_eq!(
        c.smem.load_transactions,
        blocks * (tiles * 8 * 8 * 8 * 2 + 4)
    );
    // One barrier per tile + the pre-drain barrier, per warp.
    assert_eq!(c.sync_insts, blocks * 8 * (tiles + 1));
    // FLOPs: GEMM 2·128·128·32 per block + eval/reduce
    // (per thread: 64 FADD + 128·2 FFMA-flops + 64 MUFU + 64·2 FFMA
    // + 32 shuffle-adds) + 128 atomic adds per block.
    let per_block_eval = 256 * (64 + 256 + 64 + 128 + 32) as u64;
    assert_eq!(
        c.flops,
        blocks * (2 * 128 * 128 * 32 + per_block_eval + 128)
    );
}

#[test]
fn fused_pipeline_golden_memory_traffic() {
    let prof = fused_profile();
    let mem = prof.total_mem();
    // Inputs: A and B are each 1024×32 floats = 4096 sectors; read by
    // the norms kernels (cold) and re-read by the fused kernel
    // (partially L2-resident). DRAM reads must be bounded by
    // 3 passes over the inputs and at least 1 pass.
    assert!(mem.dram_reads() >= 2 * 4096, "reads {}", mem.dram_reads());
    assert!(mem.dram_reads() <= 5 * 4096, "reads {}", mem.dram_reads());
    // Writes: the two norm vectors (128 + 128 sectors) and V
    // (128 sectors of atomics), nothing else.
    assert_eq!(mem.dram_writes, 128 + 128 + 128);
}

#[test]
fn unfused_pipeline_golden_memory_traffic() {
    let ks = GpuKernelSummation::new(1024, 1024, 32, 1.0);
    let mut dev = GpuDevice::gtx970();
    let prof = ks.profile(&mut dev, GpuVariant::CublasUnfused).unwrap();
    // The intermediate C is 1024² floats = 131072 sectors: written by
    // the GEMM and read back by the summation kernel.
    let c_sectors = 131_072u64;
    let gemm = &prof.kernels[2];
    assert_eq!(
        gemm.counters.l2_write_sectors,
        2 * c_sectors,
        "two STG.128 touch each sector"
    );
    assert_eq!(gemm.mem.dram_writes, c_sectors);
    let evalsum = &prof.kernels[3];
    // Thread-per-row: every C element is its own scattered sector
    // access (32 per warp instruction); the b2/W loads are broadcasts
    // (1 sector per instruction) and the a2 load covers 32 rows in 4
    // sectors per warp.
    let elems = 1024u64 * 1024;
    let warp_iters = elems / 32;
    let a2_sectors = (1024 / 32) * 4;
    assert_eq!(
        evalsum.counters.l2_read_sectors,
        elems + 2 * warp_iters + a2_sectors
    );
    assert!(
        evalsum.mem.dram_reads() >= c_sectors,
        "C must come back from DRAM"
    );
}

/// The fault model and ABFT verification are strictly additive: with
/// verification off, a profile taken on a device that merely *carries*
/// a (quiet) fault model serializes byte-identically to the pre-fault
/// baseline — same counters, same JSON, no new keys. This pins the
/// golden values above against the resilience subsystem.
#[test]
fn quiet_fault_model_profile_is_bit_identical_to_baseline() {
    let baseline = fused_profile();
    let mut cfg = DeviceConfig::gtx970();
    cfg.fault = Some(kernel_summation::gpu_sim::FaultSpec {
        seed: 1234,
        ..Default::default()
    });
    let mut dev = GpuDevice::new(cfg);
    let quiet = GpuKernelSummation::new(1024, 1024, 32, 1.0)
        .profile(&mut dev, GpuVariant::Fused)
        .unwrap();
    assert_eq!(
        serde_json::to_string(&baseline).unwrap(),
        serde_json::to_string(&quiet).unwrap(),
        "a zero-rate fault model must not perturb profiles or their serialization"
    );
    assert!(
        !serde_json::to_string(&baseline).unwrap().contains("faults"),
        "fault counters stay out of fault-free documents (golden files untouched)"
    );
}

#[test]
fn occupancy_and_launch_golden() {
    let prof = fused_profile();
    let k = &prof.kernels[2];
    assert_eq!(k.occupancy.blocks_per_sm, 2);
    assert_eq!(k.launch.total_blocks(), 64);
    assert_eq!(k.launch.threads_per_block(), 256);
    assert_eq!(k.resources.smem_bytes_per_block, 16 * 1024);
    assert_eq!(k.resources.regs_per_thread, 128);
}
