//! End-to-end assertions of the paper's headline claims, evaluated on
//! a CI-sized sweep of the simulated GTX970. These are the *shape*
//! claims of §V (who wins, by roughly what factor, where the
//! crossovers fall) — see EXPERIMENTS.md for the full-sweep numbers.

use std::sync::OnceLock;

use ks_bench::{PointData, Sweep, SweepData};

fn sweep() -> &'static SweepData {
    static DATA: OnceLock<SweepData> = OnceLock::new();
    DATA.get_or_init(|| {
        SweepData::compute(Sweep {
            k_values: vec![32, 64, 128, 256],
            m_values: vec![4096],
            n: 1024,
        })
        .expect("paper grid profiles cleanly")
    })
}

#[test]
fn fig6_fused_beats_cublas_unfused_at_low_k_and_loses_at_high_k() {
    let d = sweep();
    // "Fused approach beats cuBLAS-Unfused by up to 1.8X when K < 128."
    let s32 = d.at(32, 4096).unwrap().speedup_vs_cublas();
    assert!(s32 > 1.5, "K=32 speedup {s32}");
    assert!(s32 < 4.0, "K=32 speedup {s32} implausibly high");
    let s64 = d.at(64, 4096).unwrap().speedup_vs_cublas();
    assert!(s64 > 1.0, "K=64 speedup {s64}");
    // "As dimension K increases the performance degradation … outweighs
    // the benefits of fused computation."
    let s256 = d.at(256, 4096).unwrap().speedup_vs_cublas();
    assert!(s256 < 1.0, "K=256 speedup {s256} should be below 1");
    // Monotone decline across K.
    assert!(s32 > s64 && s64 > s256);
}

#[test]
fn fig6_fused_always_beats_cuda_unfused() {
    // "Fused shows much better performance than CUDA-Unfused in all
    // problem sizes" (max 3.7X at K=32, ~1.5X at K=256).
    let d = sweep();
    for k in [32usize, 64, 128, 256] {
        let s = d.at(k, 4096).unwrap().speedup_vs_cuda();
        assert!(s > 1.0, "K={k}: fused vs CUDA-Unfused speedup {s}");
    }
    let s32 = d.at(32, 4096).unwrap().speedup_vs_cuda();
    let s256 = d.at(256, 4096).unwrap().speedup_vs_cuda();
    assert!(s32 > 2.0, "K=32 projected speedup {s32}");
    assert!(s32 > s256);
}

#[test]
fn fig7_cudac_gemm_is_1_3x_to_2x_slower_than_vendor() {
    let d = sweep();
    for p in &d.points {
        let ratio = p.cudac_gemm().timing.time_s / p.vendor_gemm().timing.time_s;
        assert!(
            (1.25..2.15).contains(&ratio),
            "K={}: GEMM ratio {ratio}",
            p.k
        );
    }
}

#[test]
fn fig8_fused_memory_traffic_is_a_fraction_of_unfused() {
    let d = sweep();
    for p in &d.points {
        let l2_ratio = p.fused.total_mem().l2_transactions() as f64
            / p.cublas_unfused.total_mem().l2_transactions() as f64;
        let dram_ratio = p.fused.total_mem().dram_transactions() as f64
            / p.cublas_unfused.total_mem().dram_transactions() as f64;
        // Fig 8a: "less than 50% … in most cases"; Fig 8b: "less than
        // 10% … in all problem sizes" (we allow the K=256 corner where
        // our A-traffic model is more pessimistic than the paper's).
        assert!(l2_ratio < 0.55, "K={}: L2 ratio {l2_ratio}", p.k);
        assert!(dram_ratio < 0.30, "K={}: DRAM ratio {dram_ratio}", p.k);
    }
    let low_k = d.at(32, 4096).unwrap();
    let dram_ratio = low_k.fused.total_mem().dram_transactions() as f64
        / low_k.cublas_unfused.total_mem().dram_transactions() as f64;
    assert!(dram_ratio < 0.10, "K=32 DRAM ratio {dram_ratio}");
}

#[test]
fn fig2_l2_mpki_falls_with_k() {
    let d = sweep();
    let mpki: Vec<f64> = [32usize, 64, 128, 256]
        .iter()
        .map(|&k| d.at(k, 4096).unwrap().cublas_unfused.l2_mpki())
        .collect();
    assert!(mpki[0] > 2.0, "K=32 MPKI {}", mpki[0]);
    for w in mpki.windows(2) {
        assert!(w[0] > w[1], "MPKI must fall with K: {mpki:?}");
    }
}

#[test]
fn fig1_dram_energy_share_is_3_to_35_percent() {
    let d = sweep();
    for p in &d.points {
        let share = p.cublas_energy.dram_share();
        assert!(
            (0.03..0.35).contains(&share),
            "K={}: DRAM share {share}",
            p.k
        );
    }
    // Highest share at the lowest K.
    assert!(
        d.at(32, 4096).unwrap().cublas_energy.dram_share()
            > d.at(256, 4096).unwrap().cublas_energy.dram_share()
    );
}

#[test]
fn table2_flop_efficiency_shapes() {
    let d = sweep();
    let peak = d.device.peak_sp_gflops();
    let eff = |p: &PointData| {
        (
            p.cublas_unfused.flop_efficiency(peak),
            p.fused.flop_efficiency(peak),
        )
    };
    let (u32_, f32_) = eff(d.at(32, 4096).unwrap());
    let (u256, f256) = eff(d.at(256, 4096).unwrap());
    // Table II: Fused leads at K=32, cuBLAS-Unfused leads at K=256.
    assert!(f32_ > u32_, "K=32: fused {f32_} vs unfused {u32_}");
    assert!(u256 > f256, "K=256: unfused {u256} vs fused {f256}");
    // Efficiency grows with K for the unfused pipeline.
    assert!(u256 > u32_);
    // Magnitudes in the paper's bands (±15 points).
    assert!((0.10..0.45).contains(&u32_), "u32 {u32_}");
    assert!((0.50..0.85).contains(&u256), "u256 {u256}");
    assert!((0.35..0.70).contains(&f32_), "f32 {f32_}");
}

#[test]
fn table3_energy_savings_match_paper_bands() {
    let d = sweep();
    // Paper: 31.3–32.5% at K=32; 18.7–23.6% at K=64; 10.2–14.8% at
    // K=128; 3.5–8.5% at K=256. Allow ±7 points of slack.
    let bands = [
        (32usize, 0.24, 0.40),
        (64, 0.12, 0.31),
        (128, 0.05, 0.22),
        (256, 0.00, 0.16),
    ];
    let mut last = f64::INFINITY;
    for (k, lo, hi) in bands {
        let p = d.at(k, 4096).unwrap();
        let s = p.fused_energy.saving_vs(&p.cublas_energy);
        assert!((lo..hi).contains(&s), "K={k}: saving {s}");
        assert!(s < last, "savings must fall with K");
        last = s;
    }
}

#[test]
fn sec5c_fused_saves_most_dram_energy_everywhere() {
    let d = sweep();
    for p in &d.points {
        let saving = 1.0 - p.fused_energy.dram_j / p.cublas_energy.dram_j;
        assert!(saving > 0.7, "K={}: DRAM energy saving {saving}", p.k);
    }
}

#[test]
fn fused_pipeline_issues_no_plain_global_stores() {
    // §III: "The only data which a thread block stores back to main
    // memory is a partial sum of the final result" (atomics).
    let d = sweep();
    let p = d.at(32, 4096).unwrap();
    let fused_kernel = p.fused.kernels.last().unwrap();
    assert_eq!(fused_kernel.counters.global_store_insts, 0);
    assert!(fused_kernel.counters.atomic_insts > 0);
}
