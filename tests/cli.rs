//! Black-box tests of the `ksum` binary's argument handling: malformed
//! invocations must print the usage to stderr and exit with status 2
//! (never panic), and `serve-bench --json` must emit a parseable
//! `ServeMetrics` document.

use std::process::{Command, Output};

use kernel_summation::bench::ServeMetrics;

fn ksum(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ksum"))
        .args(args)
        .output()
        .expect("ksum binary runs")
}

fn assert_usage_error(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected exit 2, got {:?}; stderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("usage: ksum"),
        "stderr must show the usage; got: {stderr}"
    );
    assert!(
        stderr.contains(needle),
        "stderr must name the problem ({needle}); got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "argument errors must not panic; got: {stderr}"
    );
}

#[test]
fn no_command_prints_usage_and_exits_2() {
    let out = ksum(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: ksum"));
}

#[test]
fn unknown_command_is_a_usage_error() {
    assert_usage_error(&ksum(&["frobnicate"]), "unknown command frobnicate");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    assert_usage_error(&ksum(&["solve", "--bogus", "1"]), "unknown flag --bogus");
}

#[test]
fn unknown_backend_is_a_usage_error() {
    assert_usage_error(&ksum(&["solve", "--backend", "tpu"]), "unknown backend tpu");
}

#[test]
fn unknown_variant_is_a_usage_error() {
    assert_usage_error(
        &ksum(&["profile", "--variant", "nope"]),
        "unknown variant nope",
    );
}

#[test]
fn missing_and_malformed_values_are_usage_errors() {
    assert_usage_error(&ksum(&["solve", "--m"]), "missing value for --m");
    assert_usage_error(
        &ksum(&["solve", "--m", "many"]),
        "invalid value for --m: many",
    );
}

#[test]
fn serve_bench_rejects_unknown_backends_too() {
    assert_usage_error(
        &ksum(&["serve-bench", "--backend", "fpga"]),
        "unknown serve backend fpga",
    );
}

#[test]
fn threads_flag_rejects_missing_zero_and_malformed_values() {
    assert_usage_error(
        &ksum(&["solve", "--threads"]),
        "missing value for --threads",
    );
    assert_usage_error(
        &ksum(&["--threads", "0", "solve"]),
        "--threads must be >= 1",
    );
    assert_usage_error(
        &ksum(&["--threads", "lots", "solve"]),
        "invalid value for --threads: lots",
    );
}

#[test]
fn threads_flag_is_accepted_anywhere_on_the_command_line() {
    for args in [
        &[
            "--threads",
            "2",
            "solve",
            "--m",
            "64",
            "--n",
            "32",
            "--k",
            "4",
        ][..],
        &[
            "solve",
            "--m",
            "64",
            "--n",
            "32",
            "--k",
            "4",
            "--threads",
            "2",
        ][..],
    ] {
        let out = ksum(args);
        assert_eq!(
            out.status.code(),
            Some(0),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn faults_flag_rejects_missing_and_malformed_specs() {
    assert_usage_error(&ksum(&["solve", "--faults"]), "missing value for --faults");
    assert_usage_error(
        &ksum(&["--faults", "bogus=1", "solve"]),
        "invalid --faults spec",
    );
    assert_usage_error(
        &ksum(&["--faults", "sm=2", "solve"]),
        "sm probability must be <= 1",
    );
}

#[test]
fn faulty_solve_reports_injected_flips_and_succeeds() {
    let out = ksum(&[
        "--faults",
        "seed=3,smem=2,reg=1",
        "solve",
        "--m",
        "256",
        "--n",
        "256",
        "--k",
        "16",
        "--backend",
        "gpu-fused",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("injected faults:"), "stdout: {stdout}");
}

#[test]
fn injected_launch_fault_fails_with_runtime_error_not_panic() {
    let out = ksum(&[
        "--faults",
        "sm=1",
        "profile",
        "--m",
        "1024",
        "--n",
        "1024",
        "--k",
        "32",
        "--variant",
        "fused",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "launch faults are runtime errors"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("launch failed"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    assert!(
        !stderr.contains("usage: ksum"),
        "runtime failures must not print usage; stderr: {stderr}"
    );
}

#[test]
fn solve_succeeds_on_a_tiny_problem() {
    let out = ksum(&[
        "solve",
        "--m",
        "64",
        "--n",
        "32",
        "--k",
        "4",
        "--backend",
        "cpu-fused",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("done in"));
}

#[test]
fn lint_unknown_flag_keeps_the_exit_2_convention() {
    assert_usage_error(&ksum(&["lint", "--bogus", "x"]), "unknown flag --bogus");
    assert_usage_error(&ksum(&["lint", "--kernel"]), "missing value for --kernel");
}

#[test]
fn lint_static_is_clean_and_exports_parseable_json() {
    let dir = std::env::temp_dir().join("ksum_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json = dir.join("lint_static.json");
    let agree = dir.join("agreement.json");
    let out = ksum(&[
        "lint",
        "--static",
        "--json",
        json.to_str().expect("utf-8 temp path"),
        "--agreement",
        agree.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "shipped kernels must lint clean statically; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fused_naive_layout"), "stdout: {stdout}");

    let doc = std::fs::read_to_string(&json).expect("json written");
    let v: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON document");
    let kernels = v.get("kernels").expect("kernels array");
    if let serde_json::Value::Array(ks) = kernels {
        assert!(ks.len() >= 16, "per-kernel summaries exported");
    } else {
        panic!("kernels must be an array");
    }

    let doc = std::fs::read_to_string(&agree).expect("agreement written");
    let v: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON document");
    let serde_json::Value::Array(probes) = v.get("probes").expect("probes array") else {
        panic!("probes must be an array");
    };
    assert!(probes.len() >= 16, "agreement covers the registry");
    std::fs::remove_file(&json).ok();
    std::fs::remove_file(&agree).ok();
}

#[test]
fn lint_kernel_filter_narrows_the_report() {
    let out = ksum(&["lint", "--static", "--kernel", "fused"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 kernel(s)"), "stdout: {stdout}");
    assert!(
        !stdout.contains("fused_naive_layout"),
        "other probes filtered out; stdout: {stdout}"
    );
}

#[test]
fn serve_bench_json_export_parses() {
    let dir = std::env::temp_dir().join("ksum_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("serve_bench.json");
    let out = ksum(&[
        "serve-bench",
        "--clients",
        "2",
        "--queries",
        "6",
        "--m",
        "64",
        "--n",
        "32",
        "--k",
        "8",
        "--backend",
        "cpu-fused",
        "--json",
        path.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&path).expect("json written");
    let metrics = ServeMetrics::from_json(&doc).expect("valid ServeMetrics document");
    assert_eq!(metrics.submitted, 12);
    assert_eq!(metrics.completed + metrics.rejected, metrics.submitted);
    assert!(metrics.gpu.is_none(), "cpu-fused backend runs no GPU batch");
    std::fs::remove_file(&path).ok();
}

#[test]
fn tune_rejects_unknown_flags() {
    assert_usage_error(&ksum(&["tune", "--bogus", "1"]), "unknown flag --bogus");
}

#[test]
fn serve_bench_rejects_a_non_positive_energy_budget() {
    assert_usage_error(
        &ksum(&["serve-bench", "--energy-budget", "-1"]),
        "--energy-budget must be positive",
    );
}

/// Extracts `packed launches N` from the serve-bench counter line.
fn packed_launches(stdout: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.contains("packed launches"))
        .unwrap_or_else(|| panic!("serve-bench must report packed launches; stdout: {stdout}"));
    line.split("packed launches")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("malformed counter line: {line}"))
}

#[test]
fn serve_bench_pack_fuses_waves_and_no_pack_reports_zero() {
    let base = [
        "serve-bench",
        "--clients",
        "2",
        "--queries",
        "8",
        "--m",
        "256",
        "--n",
        "256",
        "--k",
        "32",
        "--large-ratio",
        "0",
        "--backend",
        "gpu-fused",
    ];
    let mut packed_args: Vec<&str> = base.to_vec();
    packed_args.push("--pack");
    let out = ksum(&packed_args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        packed_launches(&String::from_utf8_lossy(&out.stdout)) > 0,
        "--pack must fuse at least one wave of this stream"
    );

    // --no-pack (and the default) serve back-to-back: zero packed
    // launches, and a later --no-pack overrides an earlier --pack.
    let mut unpacked_args: Vec<&str> = base.to_vec();
    unpacked_args.extend(["--pack", "--no-pack"]);
    let out = ksum(&unpacked_args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        packed_launches(&String::from_utf8_lossy(&out.stdout)),
        0,
        "--no-pack must win over an earlier --pack"
    );
}

#[test]
fn serve_bench_rejects_malformed_pool_fault_specs() {
    assert_usage_error(
        &ksum(&["serve-bench", "--lifecycle-faults"]),
        "missing value for --lifecycle-faults",
    );
    assert_usage_error(
        &ksum(&[
            "serve-bench",
            "--devices",
            "2",
            "--lifecycle-faults",
            "bogus=1",
        ]),
        "invalid --lifecycle-faults spec",
    );
    assert_usage_error(
        &ksum(&[
            "serve-bench",
            "--devices",
            "2",
            "--lifecycle-faults",
            "hang=2",
        ]),
        "hang probability must be <= 1",
    );
    assert_usage_error(
        &ksum(&["serve-bench", "--devices", "2", "--link-faults", "corrupt"]),
        "invalid --link-faults spec",
    );
    // Pool fault specs without a pool are a contradiction, not a no-op.
    assert_usage_error(
        &ksum(&["serve-bench", "--lifecycle-faults", "hang=0.5"]),
        "pass --devices N",
    );
    assert_usage_error(
        &ksum(&["serve-bench", "--link-faults", "corrupt=0.5"]),
        "pass --devices N",
    );
}

#[test]
fn serve_bench_pool_fault_specs_surface_in_the_report() {
    let out = ksum(&[
        "serve-bench",
        "--smoke",
        "--devices",
        "2",
        "--wave",
        "1",
        "--lifecycle-faults",
        "seed=9,hang=1,recover=1",
        "--link-faults",
        "seed=5,corrupt=0.5",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("shed 0"),
        "shed counter line; stdout: {stdout}"
    );
    assert!(
        stdout.contains("hang /") && stdout.contains("evictions"),
        "per-device lifecycle line; stdout: {stdout}"
    );
    assert!(
        stdout.contains("crc detections"),
        "per-device link line; stdout: {stdout}"
    );
}

#[test]
fn serve_bench_reports_energy_per_query() {
    let out = ksum(&[
        "serve-bench",
        "--clients",
        "2",
        "--queries",
        "4",
        "--m",
        "256",
        "--n",
        "64",
        "--k",
        "8",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("uJ/query"),
        "serve-bench must report energy per query; stdout: {stdout}"
    );
}
