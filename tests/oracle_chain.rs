//! Cross-backend oracle chain: every solver must agree with the naive
//! reference on randomized problems (property-based).

use kernel_summation::core::cpu_fused::{self, FusedCpuConfig};
use kernel_summation::core::{cpu_unfused, reference};
use kernel_summation::prelude::*;
use ks_blas::GemmConfig;
use proptest::prelude::*;

fn build_problem(m: usize, n: usize, k: usize, h: f32, seed: u64) -> KernelSumProblem {
    KernelSumProblem::builder()
        .sources(PointSet::uniform_cube(m, k, seed))
        .targets(PointSet::uniform_cube(n, k, seed.wrapping_add(1)))
        .weights(
            PointSet::uniform_cube(n, 1, seed.wrapping_add(2))
                .coords()
                .iter()
                .map(|v| v * 2.0 - 1.0)
                .collect(),
        )
        .kernel(GaussianKernel { h })
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cpu_backends_agree_with_reference(
        m in 1usize..200,
        n in 1usize..200,
        k in 1usize..48,
        h in 0.2f32..3.0,
        seed in 0u64..1000,
    ) {
        let p = build_problem(m, n, k, h, seed);
        let want = reference::solve(&p);
        let unfused = cpu_unfused::solve(&p);
        prop_assert!(max_rel_error(&unfused, &want) < 2e-3, "unfused err {}", max_rel_error(&unfused, &want));
        let fused = cpu_fused::solve(&p, &FusedCpuConfig::default());
        prop_assert!(max_rel_error(&fused, &want) < 2e-3, "fused err {}", max_rel_error(&fused, &want));
    }

    #[test]
    fn fused_cpu_is_blocking_invariant(
        m in 1usize..120,
        n in 1usize..120,
        k in 1usize..24,
        mb in 1usize..40,
        nb in 1usize..40,
        seed in 0u64..1000,
    ) {
        let p = build_problem(m, n, k, 1.0, seed);
        let base = cpu_fused::solve(&p, &FusedCpuConfig::default());
        let alt = cpu_fused::solve(
            &p,
            &FusedCpuConfig { mb, nb, gemm: GemmConfig { mc: 16, kc: 8, nc: 16 } },
        );
        prop_assert!(max_rel_error(&alt, &base) < 2e-3);
    }

    #[test]
    fn gpu_sim_agrees_with_reference(
        mblocks in 1usize..3,
        nblocks in 1usize..3,
        k in proptest::sample::select(vec![8usize, 16, 24]),
        seed in 0u64..100,
    ) {
        let p = build_problem(mblocks * 128, nblocks * 128, k, 1.0, seed);
        let want = reference::solve(&p);
        for variant in GpuVariant::ALL {
            let got = p.solve(kernel_summation::core::Backend::GpuSim(variant));
            prop_assert!(
                max_rel_error(&got, &want) < 5e-3,
                "{} err {}",
                variant.label(),
                max_rel_error(&got, &want)
            );
        }
    }
}

#[test]
fn kernels_other_than_gaussian_run_through_both_cpu_paths() {
    for (name, p) in [
        (
            "laplace",
            KernelSumProblem::builder()
                .sources(PointSet::uniform_cube(77, 9, 1))
                .targets(PointSet::uniform_cube(55, 9, 2))
                .unit_weights()
                .kernel(LaplaceKernel { h: 0.4 })
                .build(),
        ),
        (
            "cauchy",
            KernelSumProblem::builder()
                .sources(PointSet::uniform_cube(77, 9, 3))
                .targets(PointSet::uniform_cube(55, 9, 4))
                .unit_weights()
                .kernel(CauchyKernel { h: 0.7 })
                .build(),
        ),
        (
            "polynomial",
            KernelSumProblem::builder()
                .sources(PointSet::uniform_cube(77, 9, 5))
                .targets(PointSet::uniform_cube(55, 9, 6))
                .unit_weights()
                .kernel(PolynomialKernel { c: 1.0, degree: 3 })
                .build(),
        ),
    ] {
        let want = reference::solve(&p);
        let a = cpu_unfused::solve(&p);
        let b = cpu_fused::solve(&p, &FusedCpuConfig::default());
        assert!(max_rel_error(&a, &want) < 5e-3, "{name} unfused");
        assert!(max_rel_error(&b, &want) < 5e-3, "{name} fused");
    }
}

#[test]
fn weighted_sums_are_linear_in_weights() {
    // V(w1 + w2) == V(w1) + V(w2): linearity of the summation.
    let src = PointSet::uniform_cube(64, 6, 10);
    let tgt = PointSet::uniform_cube(48, 6, 11);
    let w1: Vec<f32> = (0..48).map(|i| (i as f32 * 0.7).sin()).collect();
    let w2: Vec<f32> = (0..48).map(|i| (i as f32 * 0.3).cos()).collect();
    let solve_with = |w: Vec<f32>| {
        KernelSumProblem::builder()
            .sources(src.clone())
            .targets(tgt.clone())
            .weights(w)
            .kernel(GaussianKernel { h: 0.6 })
            .build()
            .solve(Backend::CpuFused)
    };
    let v1 = solve_with(w1.clone());
    let v2 = solve_with(w2.clone());
    let v12 = solve_with(w1.iter().zip(&w2).map(|(a, b)| a + b).collect());
    for i in 0..v12.len() {
        assert!((v12[i] - (v1[i] + v2[i])).abs() < 1e-3 * v12[i].abs().max(1.0));
    }
}
