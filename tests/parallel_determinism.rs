//! Golden determinism of the parallel replay engine at the export
//! layer: a smoke-sized sweep profiled with a 1-thread pool and an
//! 8-thread pool must produce **byte-identical** `BENCH_sweep.json`
//! documents once the (nondeterministic) host wall-time fields are
//! zeroed. This is the end-to-end form of the per-counter invariance
//! tests in `ks-gpu-sim`: any drift in cache state, counter merging,
//! or memoized translation would surface here as a JSON diff.

use ks_bench::metrics::SweepMetrics;
use ks_bench::{Sweep, SweepData};

fn sweep() -> Sweep {
    Sweep {
        k_values: vec![32, 64],
        m_values: vec![1024, 2048, 4096, 8192],
        n: 1024,
    }
}

/// Profiles the sweep inside a pool of `threads` workers and zeroes
/// the wall-time fields (the only nondeterministic part of the
/// schema).
fn metrics_with(threads: usize) -> SweepMetrics {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool builds");
    let mut m = pool.install(|| {
        SweepMetrics::collect(&SweepData::compute(sweep()).expect("sweep profiles cleanly"))
    });
    for p in &mut m.points {
        p.wall_time_ms = 0.0;
    }
    m
}

#[test]
fn sweep_json_is_byte_identical_across_thread_counts() {
    let one = metrics_with(1);
    let eight = metrics_with(8);
    assert_eq!(one, eight, "sweep metrics differ between 1 and 8 threads");
    assert_eq!(
        one.to_json(),
        eight.to_json(),
        "serialised sweep JSON differs between 1 and 8 threads"
    );
}
