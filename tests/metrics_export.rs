//! Export-layer integration tests plus the perf-regression gate.
//!
//! The regression test diffs a freshly profiled smoke sweep against
//! the checked-in golden (`tests/goldens/smoke_sweep.json`). Counters
//! must match exactly; simulated times within 1e-9 relative. To bless
//! an intentional behaviour change, regenerate the golden:
//!
//! ```text
//! cargo run --release -p ks-bench --bin run_all -- --smoke --json tests/goldens/smoke_sweep.json
//! ```

use std::sync::OnceLock;

use ks_bench::metrics::SweepMetrics;
use ks_bench::{regress, Sweep, SweepData};

const GOLDEN_PATH: &str = "tests/goldens/smoke_sweep.json";

fn smoke() -> &'static SweepData {
    static DATA: OnceLock<SweepData> = OnceLock::new();
    DATA.get_or_init(|| SweepData::compute(Sweep::smoke()).expect("smoke sweep profiles cleanly"))
}

fn export() -> SweepMetrics {
    SweepMetrics::collect(smoke())
}

#[test]
fn pipeline_profile_round_trips_through_json() {
    let p = &smoke().points[0].fused;
    let json = serde_json::to_string(p).expect("serialise");
    let back: ks_gpu_sim::PipelineProfile = serde_json::from_str(&json).expect("parse");
    assert_eq!(&back, p);
}

#[test]
fn exported_counters_match_in_memory_profiles() {
    // The acceptance point: M=1024, N=1024, K=32.
    let d = smoke();
    let m = export();
    let p = d.at(32, 1024).expect("point in smoke sweep");
    let pt = m
        .points
        .iter()
        .find(|pt| pt.k == 32 && pt.m == 1024)
        .expect("point in export");

    let json = m.to_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("parse own export");
    let idx = m
        .points
        .iter()
        .position(|pt| pt.k == 32 && pt.m == 1024)
        .unwrap();
    for (label, profile, summed) in [
        ("fused", &p.fused, &pt.fused),
        ("cuda_unfused", &p.cuda_unfused, &pt.cuda_unfused),
        ("cublas_unfused", &p.cublas_unfused, &pt.cublas_unfused),
    ] {
        // In-memory totals == summary block == what the JSON parses to.
        assert_eq!(summed.counters, profile.total_counters(), "{label}");
        let from_json: ks_gpu_sim::Counters =
            serde_json::from_value(&v["points"][idx][label]["counters"])
                .expect("counters deserialise");
        assert_eq!(from_json, profile.total_counters(), "{label} via JSON");
    }
}

#[test]
fn export_is_schema_complete() {
    // What `run_all --json` writes (same code path) must parse and
    // carry every top-level and per-point field of the schema.
    let m = export();
    let dir = std::env::temp_dir().join("ks_metrics_export_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("BENCH_sweep.json");
    m.write_json(path.to_str().unwrap()).expect("write export");

    let text = std::fs::read_to_string(&path).expect("read back");
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(v["schema_version"].as_u64(), Some(1));
    assert!(v["peak_sp_gflops"].as_f64().unwrap() > 0.0);
    assert_eq!(v["points"].as_array().unwrap().len(), Sweep::smoke().len());
    let pt = &v["points"][0];
    for key in [
        "k",
        "m",
        "n",
        "wall_time_ms",
        "speedup_vs_cublas",
        "speedup_vs_cuda",
        "fused",
        "cuda_unfused",
        "cublas_unfused",
    ] {
        assert!(!pt[key].is_null(), "point field {key} missing");
    }
    for key in [
        "name",
        "time_s",
        "counters",
        "mem",
        "l2_transactions",
        "dram_transactions",
        "flop_efficiency",
        "l2_mpki",
        "energy",
        "profile",
    ] {
        assert!(!pt["fused"][key].is_null(), "pipeline field {key} missing");
    }
    // And the whole document round-trips losslessly.
    assert_eq!(SweepMetrics::from_json(&text).expect("reparse"), m);
}

#[test]
fn csv_export_covers_every_kernel_launch() {
    let m = export();
    let csv = m.to_csv();
    let kernels: usize = m
        .points
        .iter()
        .map(|p| {
            p.fused.profile.kernels.len()
                + p.cuda_unfused.profile.kernels.len()
                + p.cublas_unfused.profile.kernels.len()
        })
        .sum();
    assert_eq!(csv.lines().count(), 1 + kernels);
    let header = csv.lines().next().unwrap();
    assert!(header.starts_with("k,m,n,pipeline,kernel,"));
    assert!(header.contains("dram_read_transactions"));
}

#[test]
fn smoke_sweep_matches_golden() {
    let golden_text = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN_PATH}: {e} — regenerate with `cargo run --release -p ks-bench --bin run_all -- --smoke --json {GOLDEN_PATH}`"));
    let golden = SweepMetrics::from_json(&golden_text).expect("golden parses");
    let fresh = export();
    let drift = regress::diff(&golden, &fresh);
    assert!(
        drift.is_empty(),
        "metrics drifted from {GOLDEN_PATH} ({} mismatches):\n{}\n\nIf this change is intentional, regenerate the golden:\n  cargo run --release -p ks-bench --bin run_all -- --smoke --json {GOLDEN_PATH}",
        drift.len(),
        drift.join("\n")
    );
}
