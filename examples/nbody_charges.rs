//! Screened electrostatics — the physics workload of the paper's
//! introduction ("kernel summation is widely used in … electrostatics,
//! and particle physics, most famously N-body simulations").
//!
//! A box of positive and negative charges interacts through a
//! Gaussian-screened potential (Yukawa-like screening is modelled by
//! the Gaussian kernel; the paper's method applies to any smooth
//! kernel). We evaluate the potential every charge feels from every
//! other charge and use it for one damped relaxation step.
//!
//! ```bash
//! cargo run --release --example nbody_charges
//! ```

use std::time::Instant;

use kernel_summation::prelude::*;

fn main() {
    let n_charges = 2048;
    let dim = 3;
    let h = 0.1f32;

    let positions = PointSet::uniform_cube(n_charges, dim, 2024);
    // Alternating ±1 charges.
    let charges: Vec<f32> = (0..n_charges)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();

    // Potential at every charge location from all charges (self-term
    // included; 𝒦(0)=1 adds a constant q_i that we subtract below).
    let problem = KernelSumProblem::builder()
        .sources(positions.clone())
        .targets(positions.clone())
        .weights(charges.clone())
        .kernel(GaussianKernel { h })
        .build();

    let t = Instant::now();
    let raw = problem.solve(Backend::CpuFused);
    println!(
        "potential evaluation for {n_charges} charges (fused): {:?}",
        t.elapsed()
    );

    let potential: Vec<f32> = raw.iter().zip(charges.iter()).map(|(v, q)| v - q).collect();

    // Interaction energy U = ½ Σ_i q_i φ(x_i).
    let energy: f64 = 0.5
        * potential
            .iter()
            .zip(charges.iter())
            .map(|(p, q)| (*p as f64) * (*q as f64))
            .sum::<f64>();
    println!("screened interaction energy U = {energy:.4}");

    // A neutral, well-mixed plasma should sit near zero net potential:
    let mean_pot: f64 = potential.iter().map(|&v| v as f64).sum::<f64>() / n_charges as f64;
    println!("mean potential = {mean_pot:.4e} (should be ~0 for a neutral box)");
    assert!(
        mean_pot.abs() < 0.5,
        "neutral box should have near-zero mean potential"
    );

    // Cross-check against the simulated GPU (paper sizes need the
    // tiling constraints: 2048 % 128 == 0 ✓).
    let gpu = kernel_summation::core::gpu::solve_gpu(&problem, GpuVariant::Fused);
    let err = max_rel_error(&gpu.v, &raw);
    println!(
        "simulated GTX970 fused kernel agrees to {err:.2e}; device time {:.3} ms, energy {:.2} mJ \
         ({:.0}% of it in DRAM)",
        gpu.report.profile.total_time_s() * 1e3,
        gpu.report.energy.total_j() * 1e3,
        gpu.report.energy.dram_share() * 100.0,
    );
    assert!(err < 5e-3);
    println!("n-body sanity checks passed ✓");
}
