//! Kernel density estimation — the statistics workload the paper's
//! introduction motivates (§II-A: "kernel summations are fundamental
//! to non-parametric statistics and machine learning tasks such as
//! density estimation").
//!
//! We draw samples from a mixture of Gaussian clusters and estimate
//! the density at a set of query points with a Gaussian KDE:
//!
//! ```text
//! p̂(q) = (1 / (M · (2πh²)^{K/2})) Σ_i exp(−‖q − x_i‖² / (2h²))
//! ```
//!
//! which is exactly the paper's kernel summation with unit weights —
//! queries as sources (one output per query), samples as targets.
//!
//! ```bash
//! cargo run --release --example kernel_density_estimation
//! ```

use std::f64::consts::PI;
use std::time::Instant;

use kernel_summation::prelude::*;

fn main() {
    let dim = 8;
    let n_samples = 2048; // targets (data)
    let n_queries = 1024; // sources (evaluation points)
    let h = 0.25f32;

    // Data: three tight clusters. Queries: half drawn near the data
    // clusters (same generator, different seed), half uniform noise.
    let data = PointSet::gaussian_clusters(n_samples, dim, 3, 0.05, 7);
    let near = PointSet::gaussian_clusters(n_queries / 2, dim, 3, 0.05, 7);
    let far = PointSet::uniform_cube(n_queries / 2, dim, 99);
    let mut q = near.coords().to_vec();
    q.extend_from_slice(far.coords());
    let queries = PointSet::from_coords(n_queries, dim, q);

    let problem = KernelSumProblem::builder()
        .sources(queries)
        .targets(data)
        .unit_weights()
        .kernel(GaussianKernel { h })
        .build();

    println!("KDE: {n_samples} samples, {n_queries} queries, dim {dim}, bandwidth {h}");

    let t = Instant::now();
    let sums_unfused = problem.solve(Backend::CpuUnfused);
    let t_unfused = t.elapsed();
    let t = Instant::now();
    let sums_fused = problem.solve(Backend::CpuFused);
    let t_fused = t.elapsed();

    println!("cpu unfused: {t_unfused:?} (allocates a {n_queries}x{n_samples} intermediate)");
    println!("cpu fused  : {t_fused:?} (intermediate stays in cache blocks)");
    assert!(max_rel_error(&sums_fused, &sums_unfused) < 1e-3);

    // Normalise to densities.
    let norm = 1.0 / (n_samples as f64 * (2.0 * PI * (h as f64).powi(2)).powf(dim as f64 / 2.0));
    let dens: Vec<f64> = sums_fused.iter().map(|&s| s as f64 * norm).collect();

    let on_cluster: f64 = dens[..n_queries / 2].iter().sum::<f64>() / (n_queries / 2) as f64;
    let off_cluster: f64 = dens[n_queries / 2..].iter().sum::<f64>() / (n_queries / 2) as f64;
    println!("mean estimated density near clusters : {on_cluster:.4e}");
    println!("mean estimated density at random pts : {off_cluster:.4e}");
    println!(
        "contrast ratio                        : {:.1}x",
        on_cluster / off_cluster.max(1e-300)
    );
    assert!(
        on_cluster > 10.0 * off_cluster,
        "density on the data manifold should dominate background"
    );
    println!("KDE sanity checks passed ✓");
}
