//! nvprof-style profiling of the three kernel-summation pipelines on
//! the simulated GTX970 (§IV's methodology, one problem size).
//!
//! ```bash
//! cargo run --release --example gpu_profiling [M] [K]
//! ```

use kernel_summation::energy::{pipeline_energy, EnergyParams};
use kernel_summation::gpu_kernels::{GpuKernelSummation, GpuVariant};
use kernel_summation::gpu_sim::GpuDevice;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let m: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16384);
    let k: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let n = 1024;

    println!("profiling kernel summation at M={m}, N={n}, K={k} on a simulated GTX970\n");
    let pipeline = GpuKernelSummation::new(m, n, k, 1.0);
    let params = EnergyParams::default();

    for variant in GpuVariant::ALL {
        let mut dev = GpuDevice::gtx970();
        let prof = pipeline.profile(&mut dev, variant).expect("valid launch");
        let peak = dev.config().peak_sp_gflops();
        println!(
            "=== {} — total {:.3} ms, {:.1}% FLOP efficiency ===",
            variant.label(),
            prof.total_time_s() * 1e3,
            prof.flop_efficiency(peak) * 100.0
        );
        println!(
            "{:<28} {:>9} {:>8} {:>12} {:>12} {:>12} {:>10} {:>8}",
            "kernel", "time", "occup.", "flops", "l2_trans", "dram_trans", "smem_tr", "bound"
        );
        for kp in &prof.kernels {
            println!(
                "{:<28} {:>7.3}ms {:>7.2} {:>12} {:>12} {:>12} {:>10} {:>8}",
                kp.name,
                kp.timing.time_s * 1e3,
                kp.occupancy.fraction,
                kp.counters.flops,
                kp.mem.l2_transactions(),
                kp.mem.dram_transactions(),
                kp.counters.smem.load_transactions + kp.counters.smem.store_transactions,
                format!("{:?}", kp.timing.bound),
            );
        }
        let e = pipeline_energy(&params, &prof);
        println!(
            "energy: {:.2} mJ total — compute {:.1}%, smem {:.1}%, L2 {:.1}%, DRAM {:.1}%\n",
            e.total_j() * 1e3,
            100.0 * e.compute_j / e.total_j(),
            100.0 * e.smem_j / e.total_j(),
            100.0 * e.l2_j / e.total_j(),
            100.0 * e.dram_j / e.total_j(),
        );
    }
}
