//! Kernel (Nadaraya–Watson) regression with multiple output channels —
//! the machine-learning workload behind the paper's §II-A citations,
//! exercising the multi-weight extension (`V = K·W` with an `N×R`
//! weight matrix).
//!
//! We fit `R = 3` smooth target functions from noisy samples and
//! predict them at held-out query points:
//!
//! ```text
//! f̂_r(q) = Σ_j 𝒦(q, x_j) y_{j,r}  /  Σ_j 𝒦(q, x_j)
//! ```
//!
//! Numerator (all channels at once) and denominator (unit weights) are
//! both kernel summations.
//!
//! ```bash
//! cargo run --release --example kernel_regression
//! ```

use kernel_summation::core::multi::solve_multi_fused;
use kernel_summation::core::FusedCpuConfig;
use kernel_summation::prelude::*;
use ks_blas::{Layout, Matrix};

/// The three ground-truth functions on [0,1]^dim.
fn truth(x: &[f32]) -> [f32; 3] {
    let s: f32 = x.iter().sum();
    [(2.0 * s).sin(), (0.5 * s).cos() * s, (s - 1.0).powi(2)]
}

fn main() {
    let dim = 4;
    let n_train = 4096;
    let n_query = 512;
    let h = 0.15f32;

    let train = PointSet::uniform_cube(n_train, dim, 11);
    let queries = PointSet::uniform_cube(n_query, dim, 12);

    // Noisy labels.
    let noise = PointSet::uniform_cube(n_train, 3, 13);
    let labels = Matrix::from_fn(n_train, 3, Layout::RowMajor, |j, r| {
        truth(train.point(j))[r] + (noise.point(j)[r] - 0.5) * 0.05
    });

    let problem = KernelSumProblem::builder()
        .sources(queries.clone())
        .targets(train)
        .unit_weights()
        .kernel(GaussianKernel { h })
        .build();

    let t = std::time::Instant::now();
    // Numerator: R = 3 weighted sums in one fused pass.
    let num = solve_multi_fused(&problem, &labels, &FusedCpuConfig::default());
    // Denominator: plain kernel density.
    let den = problem.solve(Backend::CpuFused);
    println!(
        "fit {n_query} queries x 3 channels from {n_train} samples in {:?}",
        t.elapsed()
    );

    // Prediction error per channel.
    let mut mse = [0.0f64; 3];
    for (i, d) in den.iter().enumerate() {
        let t = truth(queries.point(i));
        for (r, m) in mse.iter_mut().enumerate() {
            let pred = num.get(i, r) / d.max(1e-12);
            *m += ((pred - t[r]) as f64).powi(2);
        }
    }
    for (r, e) in mse.iter().enumerate() {
        let rmse = (e / n_query as f64).sqrt();
        println!("channel {r}: RMSE = {rmse:.4}");
        // Nadaraya–Watson has O(h²) smoothing bias; with h=0.15 in 4-D
        // an RMSE well under the signal scale (~1) is a pass.
        assert!(
            rmse < 0.30,
            "regression should recover the smooth target (channel {r}: {rmse})"
        );
    }
    println!("kernel regression sanity checks passed ✓");
}
