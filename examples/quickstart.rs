//! Quickstart: define a kernel-summation problem, solve it three ways,
//! and check the answers agree.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use kernel_summation::prelude::*;

fn main() {
    // 4096 source points and 1024 targets in a 32-dimensional space —
    // one cell of the paper's sweep (§IV).
    let (m, n, k) = (4096, 1024, 32);
    let problem = KernelSumProblem::builder()
        .sources(PointSet::uniform_cube(m, k, 1))
        .targets(PointSet::uniform_cube(n, k, 2))
        .weights(PointSet::uniform_cube(n, 1, 3).coords().to_vec())
        .kernel(GaussianKernel { h: 1.0 })
        .build();

    println!("problem: M={m} sources, N={n} targets, K={k} dimensions");

    // 1. The naive O(MNK) oracle.
    let t = std::time::Instant::now();
    let v_ref = problem.solve(Backend::Reference);
    println!(
        "reference  : {:>8.1?}  V[0..4] = {:?}",
        t.elapsed(),
        &v_ref[..4]
    );

    // 2. The unfused BLAS pipeline (materialises the M×N intermediate).
    let t = std::time::Instant::now();
    let v_unfused = problem.solve(Backend::CpuUnfused);
    println!(
        "cpu unfused: {:>8.1?}  max rel err {:.2e}",
        t.elapsed(),
        max_rel_error(&v_unfused, &v_ref)
    );

    // 3. The paper's contribution: fused evaluation (no intermediate).
    let t = std::time::Instant::now();
    let v_fused = problem.solve(Backend::CpuFused);
    println!(
        "cpu fused  : {:>8.1?}  max rel err {:.2e}",
        t.elapsed(),
        max_rel_error(&v_fused, &v_ref)
    );

    // 4. The simulated GTX970, fused kernel (Algorithm 2).
    let t = std::time::Instant::now();
    let gpu = kernel_summation::core::gpu::solve_gpu(&problem, GpuVariant::Fused);
    println!(
        "gpu (sim)  : {:>8.1?}  max rel err {:.2e}  — simulated device time {:.3} ms, {:.1}% FLOP efficiency",
        t.elapsed(),
        max_rel_error(&gpu.v, &v_ref),
        gpu.report.profile.total_time_s() * 1e3,
        gpu.report.flop_efficiency() * 100.0,
    );

    assert!(
        max_rel_error(&v_fused, &v_ref) < 1e-3,
        "fused result diverged"
    );
    println!("all solvers agree ✓");
}
