//! `ksum` — command-line driver for the kernel-summation library.
//!
//! ```bash
//! ksum solve       --m 4096 --n 1024 --k 32 --h 1.0 --backend cpu-fused
//! ksum profile     --m 16384 --n 1024 --k 32 --variant fused
//! ksum compare     --m 8192 --n 1024 --k 64
//! ksum lint        [--static] [--kernel NAME] [--out findings.txt]
//!                  [--json findings.json] [--agreement agreement.json]
//! ksum serve-bench [--smoke] [--clients C] [--queries Q] [--devices N]
//!                  [--energy-budget J] [--pack|--no-pack] [--json PATH]
//! ksum tune        [--smoke] [--seed S] [--json PATH]
//! ```
//!
//! Argument errors (unknown command, flag, backend or variant, or a
//! malformed value) print the usage to stderr and exit with status 2;
//! they never panic.

use std::process::ExitCode;
use std::time::Instant;

use kernel_summation::bench::ServeMetrics;
use kernel_summation::core::gpu::{profile_gpu, try_profile_gpu_on, try_solve_gpu_on, GpuReport};
use kernel_summation::core::Backend;
use kernel_summation::gpu_kernels::TileGeometry;
use kernel_summation::gpu_sim::config::DeviceConfig;
use kernel_summation::gpu_sim::report::summary;
use kernel_summation::gpu_sim::Interconnect;
use kernel_summation::gpu_sim::{FaultSpec, GpuDevice, LifecycleSpec, LinkFaultSpec};
use kernel_summation::prelude::*;
use kernel_summation::serve::{
    run_workload, smoke_workload, PoolConfig, ServeBackend, ServeConfig, WorkloadConfig,
};
use kernel_summation::tune::{tune, ProblemShape, TuneConfig};

const USAGE: &str = "usage: ksum [--threads N] [--faults SPEC] <command> [flags]
  --threads N  global: size of the worker pool used for parallel
               traffic replay (N >= 1; default: machine cores)
  --faults SPEC
               global: seeded soft-error injection on the simulated
               device, e.g. seed=7,smem=0.5,reg=1,dram=0.25,sm=0.01,
               watchdog=0.001 (rates per launch; applies to the
               gpu-sim backends of solve/profile/compare/serve-bench)
  solve        --m M --n N --k K --h H --seed S --backend B
               (backends: cpu-fused, cpu-unfused, reference,
                gpu-fused, gpu-cuda-unfused, gpu-cublas-unfused)
  profile      --m M --n N --k K --h H --variant V
               (variants: fused, cuda-unfused, cublas-unfused)
  compare      --m M --n N --k K --h H
  lint         [--static] [--kernel NAME] [--out PATH] [--json PATH]
               [--agreement PATH]
               (--static proves coalescing, bank conflicts, bounds and
                occupancy from declared access specs, zero replay;
                --kernel filters to one probe; --json exports findings
                as JSON; --agreement cross-checks every static verdict
                against trace replay and writes the matrix as JSON)
  serve-bench  [--smoke] [--clients C] [--queries Q] [--corpora R]
               [--shared-ratio F] [--large-ratio F] [--m M] [--n N]
               [--k K] [--h H] [--seed S] [--queue DEPTH] [--wave W]
               [--no-cache] [--devices N] [--energy-budget J]
               [--pack | --no-pack]
               [--lifecycle-faults SPEC] [--link-faults SPEC]
               [--backend cpu-fused|gpu-fused|gpu-resilient]
               [--json PATH]
               (--pack fuses mutually-unrelated small batches from one
                scheduling wave into a single routed launch; results
                stay bit-identical to unpacked serving;
                --devices N shards every batch row-wise over a pool of
                N simulated devices on PCIe 3.0 x16 links; results stay
                bit-identical to single-device serving;
                --lifecycle-faults e.g. seed=7,hang=0.1,loss=0.01,
                recover=0.5 flaps pool devices through seeded hang/
                loss/recovery epochs — sick devices drain, evict and
                readmit via the health loop (needs --devices);
                --link-faults e.g. seed=7,corrupt=0.2,timeout=0.05
                injects per-transfer CRC-detected corruption and
                timeouts on every pool link (needs --devices); seeds
                decorrelate per device;
                --energy-budget J downshifts batches to a
                bit-compatible low-power tile geometry once the
                modelled J/query exceeds the budget — result bits
                never change)
  tune         [--smoke] [--seed S] [--json PATH]
               (sweeps the legal tile-geometry lattice through the
                static analyzer, the bit-exact differential gate and
                exact-counter profiling, fits the log-linear cost
                model and prints its per-shape picks; --smoke shrinks
                the training grid; --json exports the picks)";

/// A usage error: printed to stderr with the usage text, exit code 2.
struct UsageError(String);

fn usage_exit(e: &UsageError) -> ExitCode {
    eprintln!("error: {}", e.0);
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_value<T: std::str::FromStr>(flag: &str, val: &str) -> Result<T, UsageError> {
    val.parse()
        .map_err(|_| UsageError(format!("invalid value for {flag}: {val}")))
}

struct Args {
    m: usize,
    n: usize,
    k: usize,
    h: f32,
    seed: u64,
    backend: String,
    variant: String,
}

fn parse(rest: &[String]) -> Result<Args, UsageError> {
    let mut a = Args {
        m: 4096,
        n: 1024,
        k: 32,
        h: 1.0,
        seed: 42,
        backend: "cpu-fused".into(),
        variant: "fused".into(),
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let val = it
            .next()
            .ok_or_else(|| UsageError(format!("missing value for {flag}")))?;
        match flag.as_str() {
            "--m" => a.m = parse_value(flag, val)?,
            "--n" => a.n = parse_value(flag, val)?,
            "--k" => a.k = parse_value(flag, val)?,
            "--h" => a.h = parse_value(flag, val)?,
            "--seed" => a.seed = parse_value(flag, val)?,
            "--backend" => a.backend = val.clone(),
            "--variant" => a.variant = val.clone(),
            other => return Err(UsageError(format!("unknown flag {other}"))),
        }
    }
    Ok(a)
}

fn backend_of(name: &str) -> Result<Backend, UsageError> {
    Ok(match name {
        "reference" => Backend::Reference,
        "cpu-fused" => Backend::CpuFused,
        "cpu-unfused" => Backend::CpuUnfused,
        "gpu-fused" => Backend::GpuSim(GpuVariant::Fused),
        "gpu-cuda-unfused" => Backend::GpuSim(GpuVariant::CudaUnfused),
        "gpu-cublas-unfused" => Backend::GpuSim(GpuVariant::CublasUnfused),
        other => return Err(UsageError(format!("unknown backend {other}"))),
    })
}

fn variant_of(name: &str) -> Result<GpuVariant, UsageError> {
    Ok(match name {
        "fused" => GpuVariant::Fused,
        "cuda-unfused" => GpuVariant::CudaUnfused,
        "cublas-unfused" => GpuVariant::CublasUnfused,
        other => return Err(UsageError(format!("unknown variant {other}"))),
    })
}

fn build(a: &Args) -> KernelSumProblem {
    KernelSumProblem::builder()
        .sources(PointSet::uniform_cube(a.m, a.k, a.seed))
        .targets(PointSet::uniform_cube(a.n, a.k, a.seed + 1))
        .weights(PointSet::uniform_cube(a.n, 1, a.seed + 2).coords().to_vec())
        .kernel(GaussianKernel { h: a.h })
        .build()
}

/// A fresh GTX 970 with the given fault model installed.
fn faulty_device(fault: FaultSpec) -> GpuDevice {
    let mut cfg = DeviceConfig::gtx970();
    cfg.fault = Some(fault);
    GpuDevice::new(cfg)
}

/// Reports injected-fault tallies (if any) after a faulty run.
fn print_fault_tally(dev: &mut GpuDevice) {
    let fc = dev.take_fault_counters();
    if !fc.is_empty() {
        println!(
            "injected faults: {} smem, {} reg, {} dram, {} launch",
            fc.smem_flips, fc.reg_flips, fc.dram_flips, fc.launch_faults
        );
    }
}

fn cmd_solve(a: &Args, fault: Option<FaultSpec>) -> Result<ExitCode, UsageError> {
    let backend = backend_of(&a.backend)?;
    let p = build(a);
    println!(
        "solving M={} N={} K={} h={} with {}",
        a.m, a.n, a.k, a.h, a.backend
    );
    let t = Instant::now();
    let v = match (fault, backend) {
        (Some(fs), Backend::GpuSim(variant)) => {
            let mut dev = faulty_device(fs);
            match try_solve_gpu_on(&mut dev, &p, variant) {
                Ok(out) => {
                    print_fault_tally(&mut dev);
                    out.v
                }
                Err(e) => {
                    print_fault_tally(&mut dev);
                    eprintln!("error: launch failed: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            }
        }
        _ => p.solve(backend),
    };
    let dt = t.elapsed();
    let sum: f64 = v.iter().map(|&x| x as f64).sum();
    let max = v.iter().cloned().fold(f32::MIN, f32::max);
    println!(
        "done in {dt:?}: Σ V = {sum:.4}, max V = {max:.4}, V[0..4] = {:?}",
        &v[..v.len().min(4)]
    );
    Ok(ExitCode::SUCCESS)
}

fn print_profile_report(r: &GpuReport) {
    print!("{}", r.profile);
    println!("{}", summary(&r.profile, r.peak_gflops));
    println!(
        "energy {:.3} mJ (compute {:.1}%, smem {:.1}%, l2 {:.1}%, dram {:.1}%)",
        r.energy.total_j() * 1e3,
        r.energy.compute_share() * 100.0,
        100.0 * r.energy.smem_j / r.energy.total_j(),
        100.0 * r.energy.l2_j / r.energy.total_j(),
        r.energy.dram_share() * 100.0,
    );
}

fn cmd_profile(a: &Args, fault: Option<FaultSpec>) -> Result<ExitCode, UsageError> {
    let variant = variant_of(&a.variant)?;
    println!(
        "profiling {} at M={} N={} K={} on a simulated GTX970",
        variant.label(),
        a.m,
        a.n,
        a.k
    );
    let r = match fault {
        Some(fs) => {
            let mut dev = faulty_device(fs);
            match try_profile_gpu_on(&mut dev, a.m, a.n, a.k, a.h, variant) {
                Ok(r) => r,
                Err(e) => {
                    print_fault_tally(&mut dev);
                    eprintln!("error: launch failed: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            }
        }
        None => profile_gpu(a.m, a.n, a.k, a.h, variant),
    };
    print_profile_report(&r);
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(a: &Args, fault: Option<FaultSpec>) -> Result<ExitCode, UsageError> {
    println!(
        "comparing pipelines at M={} N={} K={} (simulated GTX970)",
        a.m, a.n, a.k
    );
    let mut times = Vec::new();
    for variant in GpuVariant::ALL {
        let r = match fault {
            Some(fs) => {
                let mut dev = faulty_device(fs);
                match try_profile_gpu_on(&mut dev, a.m, a.n, a.k, a.h, variant) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("error: launch failed for {}: {e}", variant.label());
                        return Ok(ExitCode::FAILURE);
                    }
                }
            }
            None => profile_gpu(a.m, a.n, a.k, a.h, variant),
        };
        println!("  {}", summary(&r.profile, r.peak_gflops));
        times.push((variant.label(), r.profile.total_time_s()));
    }
    let fused = times[0].1;
    for (label, t) in &times[1..] {
        println!("  fused speedup vs {label}: {:.3}x", t / fused);
    }
    Ok(ExitCode::SUCCESS)
}

/// Writes `content` to `path`, mapping I/O failure to exit 1.
fn write_artifact(path: &str, content: &str, what: &str) -> Result<(), ExitCode> {
    match std::fs::write(path, content) {
        Ok(()) => {
            println!("{what} written to {path}");
            Ok(())
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn cmd_lint(rest: &[String]) -> Result<ExitCode, UsageError> {
    let mut out: Option<String> = None;
    let mut json: Option<String> = None;
    let mut agreement: Option<String> = None;
    let mut kernel: Option<String> = None;
    let mut static_mode = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--static" {
            static_mode = true;
            continue;
        }
        let val = it
            .next()
            .ok_or_else(|| UsageError(format!("missing value for {flag}")))?
            .clone();
        match flag.as_str() {
            "--out" => out = Some(val),
            "--json" => json = Some(val),
            "--agreement" => agreement = Some(val),
            "--kernel" => kernel = Some(val),
            other => {
                return Err(UsageError(format!(
                    "unknown flag {other} (lint takes --static, --kernel NAME, \
                     --out PATH, --json PATH, --agreement PATH)"
                )))
            }
        }
    }
    let dev = DeviceConfig::gtx970();

    // Differential artifact: every static verdict cross-checked
    // against trace replay; disagreement is a failure in itself.
    let mut agreement_ok = true;
    if let Some(path) = agreement {
        let diff = kernel_summation::analyze::differential::differential_report(&dev);
        agreement_ok = diff.all_agree();
        println!("static/dynamic agreement over the probe registry:");
        println!("{}", diff.table());
        if let Err(code) = write_artifact(&path, &diff.to_json(), "agreement report") {
            return Ok(code);
        }
    }

    let (report, text) = if static_mode {
        println!(
            "statically linting declared access specs against a simulated {}",
            dev.name
        );
        let mut outcome = kernel_summation::analyze::lint_report_static(&dev);
        if let Some(name) = &kernel {
            outcome.kernels.retain(|k| &k.kernel == name);
            outcome.report.retain_kernel(name);
        }
        println!("{}", outcome.summary_table());
        let table = outcome.report.table();
        println!("{table}");
        if let Some(path) = json {
            if let Err(code) = write_artifact(&path, &outcome.to_json(), "static lint report") {
                return Ok(code);
            }
        }
        let text = format!("{}\n{table}", outcome.summary_table());
        (outcome.report, text)
    } else {
        println!("linting recorded warp traces on a simulated {}", dev.name);
        let mut report = kernel_summation::analyze::lint_report(&dev);
        if let Some(name) = &kernel {
            report.retain_kernel(name);
        }
        let table = report.table();
        println!("{table}");
        if let Some(path) = json {
            if let Err(code) = write_artifact(&path, &report.to_json(), "lint report") {
                return Ok(code);
            }
        }
        (report, String::new())
    };
    let table = if text.is_empty() {
        report.table()
    } else {
        text
    };
    if let Some(path) = out {
        if let Err(code) = write_artifact(&path, &table, "findings table") {
            return Ok(code);
        }
    }
    if let Some(name) = &kernel {
        if report.checked.is_empty() && report.findings.is_empty() {
            eprintln!("warning: no probe named {name} in the registry");
        }
    }
    Ok(if report.is_clean() && agreement_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// The serving device: a GTX970 with its effective L2 cut to 16 KB to
/// model inter-request cache pressure, so plan reuse is visible in
/// the DRAM ledger (matches the acceptance test in `ks-bench`).
fn serve_device() -> DeviceConfig {
    let mut d = DeviceConfig::gtx970();
    d.l2_bytes = 16 * 1024;
    d
}

fn cmd_serve_bench(rest: &[String], fault: Option<FaultSpec>) -> Result<ExitCode, UsageError> {
    let mut wl = WorkloadConfig::default();
    let mut device = serve_device();
    device.fault = fault;
    let mut cfg = ServeConfig {
        backend: ServeBackend::GpuFused { cpu_fallback: true },
        device,
        wave: 4,
        ..ServeConfig::default()
    };
    let mut json: Option<String> = None;
    let mut devices: usize = 0;
    let mut lifecycle: Option<LifecycleSpec> = None;
    let mut link_fault: Option<LinkFaultSpec> = None;
    let mut it = rest.iter().peekable();
    while let Some(flag) = it.next() {
        // Bare switches first; everything else takes a value.
        match flag.as_str() {
            "--smoke" => {
                wl = smoke_workload();
                continue;
            }
            "--no-cache" => {
                cfg.enable_plan_cache = false;
                continue;
            }
            "--pack" => {
                cfg.pack = true;
                continue;
            }
            "--no-pack" => {
                cfg.pack = false;
                continue;
            }
            _ => {}
        }
        let val = it
            .next()
            .ok_or_else(|| UsageError(format!("missing value for {flag}")))?;
        match flag.as_str() {
            "--clients" => wl.clients = parse_value(flag, val)?,
            "--queries" => wl.queries_per_client = parse_value(flag, val)?,
            "--corpora" => wl.corpora = parse_value(flag, val)?,
            "--shared-ratio" => wl.shared_ratio = parse_value(flag, val)?,
            "--large-ratio" => wl.large_ratio = parse_value(flag, val)?,
            "--m" => wl.m = parse_value(flag, val)?,
            "--n" => wl.n = parse_value(flag, val)?,
            "--k" => wl.k = parse_value(flag, val)?,
            "--h" => wl.h = parse_value(flag, val)?,
            "--seed" => wl.seed = parse_value(flag, val)?,
            "--queue" => cfg.queue_capacity = parse_value(flag, val)?,
            "--devices" => {
                devices = parse_value(flag, val)?;
                if devices == 0 {
                    return Err(UsageError("--devices needs at least 1 device".into()));
                }
            }
            "--wave" => cfg.wave = parse_value(flag, val)?,
            "--backend" => {
                cfg.backend = match val.as_str() {
                    "cpu-fused" => ServeBackend::CpuFused,
                    "gpu-fused" => ServeBackend::GpuFused { cpu_fallback: true },
                    "gpu-resilient" => ServeBackend::GpuResilient,
                    other => {
                        return Err(UsageError(format!(
                        "unknown serve backend {other} (try cpu-fused, gpu-fused, gpu-resilient)"
                    )))
                    }
                };
            }
            "--lifecycle-faults" => {
                lifecycle =
                    Some(LifecycleSpec::parse(val).map_err(|e| {
                        UsageError(format!("invalid --lifecycle-faults spec: {e}"))
                    })?);
            }
            "--link-faults" => {
                link_fault = Some(
                    LinkFaultSpec::parse(val)
                        .map_err(|e| UsageError(format!("invalid --link-faults spec: {e}")))?,
                );
            }
            "--energy-budget" => {
                let budget: f64 = parse_value(flag, val)?;
                if budget <= 0.0 || budget.is_nan() {
                    return Err(UsageError("--energy-budget must be positive".into()));
                }
                cfg.energy_budget_j = Some(budget);
                // The downshift target for shapes without a tuned
                // pick: the default's bit-compatibility class with
                // taller microtile rows (fewer threads, more register
                // reuse), so routing never changes result bits.
                cfg.low_power = Some(TileGeometry {
                    micro_m: 16,
                    ..TileGeometry::paper_default()
                });
            }
            "--json" => json = Some(val.clone()),
            other => return Err(UsageError(format!("unknown flag {other}"))),
        }
    }
    if (lifecycle.is_some() || link_fault.is_some()) && devices == 0 {
        return Err(UsageError(
            "--lifecycle-faults and --link-faults model pool members; pass --devices N".into(),
        ));
    }
    if devices > 0 {
        // Pool devices clone the final serve device, so the global
        // --faults spec (if any) applies to every pool member.
        let mut pool =
            PoolConfig::homogeneous(devices, cfg.device.clone(), Interconnect::pcie3_x16());
        // Per-device seed decorrelation: one spec on the command line,
        // independent fault trajectories per pool member.
        for (d, member) in pool.devices.iter_mut().enumerate() {
            if let Some(spec) = &lifecycle {
                let mut spec = *spec;
                spec.seed ^= d as u64;
                member.lifecycle = Some(spec);
            }
            if let Some(spec) = &link_fault {
                let mut spec = *spec;
                spec.seed ^= d as u64;
                member.interconnect.fault = Some(spec);
            }
        }
        cfg.pool = Some(pool);
    }
    println!(
        "serve-bench: {} clients x {} queries, {} corpora, shared ratio {}, M={} N={} K={}{}",
        wl.clients,
        wl.queries_per_client,
        wl.corpora,
        wl.shared_ratio,
        wl.m,
        wl.n,
        wl.k,
        if devices > 0 {
            format!(", {devices}-device pool")
        } else {
            String::new()
        }
    );
    let device = cfg.device.clone();
    let t = Instant::now();
    let report = run_workload(cfg, &wl);
    let wall = t.elapsed();
    println!(
        "submitted {} | accepted {} | rejected {} | completed {} | expired {} | shed {} | failed {}",
        report.submitted,
        report.accepted,
        report.rejected,
        report.completed,
        report.expired,
        report.shed,
        report.failed
    );
    println!(
        "batches {} (avg width {:.2}) | plan cache: {} hits / {} misses / {} evictions (hit rate {:.2})",
        report.batches,
        if report.batches > 0 {
            report.batched_queries as f64 / report.batches as f64
        } else {
            0.0
        },
        report.plan_cache.hits,
        report.plan_cache.misses,
        report.plan_cache.evictions,
        report.hit_rate(),
    );
    println!(
        "queue high water {} | fallbacks {} | wall {wall:?}",
        report.queue_high_water, report.fallbacks
    );
    println!(
        "launches {} | packed launches {} carrying {} segments",
        report.launches, report.packed_launches, report.packed_segments
    );
    println!(
        "energy {:.3} mJ | {:.3} uJ/query | {} budget downshifts",
        report.energy_j * 1e3,
        report.j_per_query() * 1e6,
        report.energy_downshifts
    );
    if report.attempts > report.batches
        || report.corruption_detected > 0
        || report.injected_faults > 0
    {
        println!(
            "resilience: {} attempts ({} retries) | corruption detected {} | injected faults {} \
             (undetected {}) | degraded {} | breaker trips {} / resets {}",
            report.attempts,
            report.retries,
            report.corruption_detected,
            report.injected_faults,
            report.undetected_injected,
            report.degraded_completions,
            report.breaker_trips,
            report.breaker_resets,
        );
    }
    if let Some(pool) = &report.pool {
        println!(
            "pool: {} devices | {} shard tasks ({} stolen) | sim time {:.3} ms | \
             {} CPU shard recoveries | breaker trips {}",
            pool.devices.len(),
            pool.shard_tasks,
            pool.stolen_tasks,
            pool.sim_time_s * 1e3,
            pool.total_fallbacks(),
            pool.total_trips(),
        );
        if pool.total_evictions() > 0 || pool.total_readmissions() > 0 {
            println!(
                "pool health: {} evictions | {} readmissions",
                pool.total_evictions(),
                pool.total_readmissions(),
            );
        }
        for d in &pool.devices {
            println!(
                "  {}: {} executed ({} stolen), {} gpu / {} cpu shards, \
                 shard cache {} hits / {} misses, {} B transferred",
                d.name,
                d.executed,
                d.stolen,
                d.gpu_shards,
                d.cpu_fallbacks,
                d.plan_cache.hits,
                d.plan_cache.misses,
                d.transfer_bytes,
            );
            if d.lifecycle_hangs + d.lifecycle_losses + d.evictions > 0 {
                println!(
                    "    lifecycle: {} hang / {} loss epochs | {} evictions, {} readmissions",
                    d.lifecycle_hangs, d.lifecycle_losses, d.evictions, d.readmissions,
                );
            }
            if d.link_crc_detected + d.link_retransmits + d.link_timeouts > 0 {
                println!(
                    "    link: {} crc detections, {} retransmits, {} timeouts",
                    d.link_crc_detected, d.link_retransmits, d.link_timeouts,
                );
            }
        }
    }
    let metrics = ServeMetrics::collect(&report, &device);
    if let Some(gpu) = &metrics.gpu {
        println!(
            "gpu: {} kernels, sim time {:.3} ms, {} DRAM transactions, {:.3} mJ",
            gpu.profile.kernels.len(),
            gpu.time_s * 1e3,
            gpu.dram_transactions,
            gpu.energy.total_j() * 1e3
        );
    }
    if let Some(path) = json {
        if let Err(e) = metrics.write_json(&path) {
            eprintln!("error: cannot write {path}: {e}");
            return Ok(ExitCode::FAILURE);
        }
        eprintln!("wrote {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_tune(rest: &[String]) -> Result<ExitCode, UsageError> {
    let mut cfg = TuneConfig::smoke(DeviceConfig::gtx970());
    let mut json: Option<String> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--smoke" {
            cfg.train_shapes = vec![
                ProblemShape::new(1024, 1024, 32),
                ProblemShape::new(512, 512, 32),
                ProblemShape::new(256, 256, 64),
            ];
            cfg.pick_shapes = vec![
                ProblemShape::new(1024, 1024, 32),
                ProblemShape::new(256, 256, 64),
            ];
            continue;
        }
        let val = it
            .next()
            .ok_or_else(|| UsageError(format!("missing value for {flag}")))?;
        match flag.as_str() {
            "--seed" => cfg.seed = parse_value(flag, val)?,
            "--json" => json = Some(val.clone()),
            other => {
                return Err(UsageError(format!(
                    "unknown flag {other} (tune takes --smoke, --seed S, --json PATH)"
                )))
            }
        }
    }
    println!(
        "tuning {} geometries x {} training shapes on a simulated {}",
        TileGeometry::lattice(&cfg.device).len(),
        cfg.train_shapes.len(),
        cfg.device.name
    );
    let t = Instant::now();
    let out = tune(&cfg);
    println!(
        "{} admitted, {} rejected, {} profiled samples in {:?}",
        out.admitted.len(),
        out.rejected.len(),
        out.samples.len(),
        t.elapsed()
    );
    println!(
        "fit: {} train / {} holdout, time err mape {:.4} max {:.4},          energy err mape {:.4} max {:.4}",
        out.fit.train_count,
        out.fit.holdout_count,
        out.fit.holdout_mape_time,
        out.fit.holdout_max_rel_time,
        out.fit.holdout_mape_energy,
        out.fit.holdout_max_rel_energy
    );
    for r in &out.rejected {
        println!("  rejected {} at {}: {}", r.geometry, r.stage, r.reason);
    }
    println!("picks (model-only, paper default wins near-ties):");
    for p in &out.picks {
        let low = p
            .choice
            .low_power
            .map_or(String::new(), |g| format!(" (low-power {g})"));
        println!(
            "  {}x{}x{}: {} pred {:.3e} s / {:.3e} J{low}",
            p.m, p.n, p.k, p.choice.geometry, p.choice.pred_time_s, p.choice.pred_energy_j
        );
    }
    if let Some(path) = json {
        let doc = serde_json::to_string_pretty(&out.picks).expect("picks serialise");
        if let Err(code) = write_artifact(&path, &doc, "tuned picks") {
            return Ok(code);
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Global flags, valid anywhere on the command line.
struct Globals {
    /// Worker-pool size for parallel traffic replay.
    threads: Option<usize>,
    /// Soft-error injection spec for the simulated device.
    fault: Option<FaultSpec>,
}

/// Strips the global `--threads N` and `--faults SPEC` flags (valid
/// anywhere on the command line) and returns the remaining args plus
/// the parsed globals. `N` must parse as an integer >= 1; `SPEC` must
/// satisfy [`FaultSpec::parse`].
fn extract_globals(args: &[String]) -> Result<(Vec<String>, Globals), UsageError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut g = Globals {
        threads: None,
        fault: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let val = it
                    .next()
                    .ok_or_else(|| UsageError("missing value for --threads".into()))?;
                let n: usize = parse_value("--threads", val)?;
                if n == 0 {
                    return Err(UsageError("--threads must be >= 1".into()));
                }
                g.threads = Some(n);
            }
            "--faults" => {
                let val = it
                    .next()
                    .ok_or_else(|| UsageError("missing value for --faults".into()))?;
                let spec = FaultSpec::parse(val)
                    .map_err(|e| UsageError(format!("invalid --faults spec: {e}")))?;
                g.fault = Some(spec);
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok((rest, g))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().collect();
    let (args, globals) = match extract_globals(&raw) {
        Ok(x) => x,
        Err(e) => return usage_exit(&e),
    };
    let Some(cmd) = args.get(1) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let fault = globals.fault;
    let run = || -> Result<ExitCode, UsageError> {
        match cmd.as_str() {
            "lint" => cmd_lint(&args[2..]),
            "serve-bench" => cmd_serve_bench(&args[2..], fault),
            "tune" => cmd_tune(&args[2..]),
            "solve" => parse(&args[2..]).and_then(|a| cmd_solve(&a, fault)),
            "profile" => parse(&args[2..]).and_then(|a| cmd_profile(&a, fault)),
            "compare" => parse(&args[2..]).and_then(|a| cmd_compare(&a, fault)),
            other => Err(UsageError(format!("unknown command {other}"))),
        }
    };
    let out = match globals.threads {
        Some(n) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| UsageError(format!("cannot build thread pool: {e}")));
            pool.and_then(|p| p.install(run))
        }
        None => run(),
    };
    match out {
        Ok(code) => code,
        Err(e) => usage_exit(&e),
    }
}
