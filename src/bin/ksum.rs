//! `ksum` — command-line driver for the kernel-summation library.
//!
//! ```bash
//! ksum solve   --m 4096 --n 1024 --k 32 --h 1.0 --backend cpu-fused
//! ksum profile --m 16384 --n 1024 --k 32 --variant fused
//! ksum compare --m 8192 --n 1024 --k 64
//! ksum lint    [--out findings.txt]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use kernel_summation::core::gpu::profile_gpu;
use kernel_summation::core::Backend;
use kernel_summation::gpu_sim::report::summary;
use kernel_summation::prelude::*;

struct Args {
    m: usize,
    n: usize,
    k: usize,
    h: f32,
    seed: u64,
    backend: String,
    variant: String,
}

fn parse(rest: &[String]) -> Args {
    let mut a = Args {
        m: 4096,
        n: 1024,
        k: 32,
        h: 1.0,
        seed: 42,
        backend: "cpu-fused".into(),
        variant: "fused".into(),
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let val = it
            .next()
            .unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--m" => a.m = val.parse().expect("--m"),
            "--n" => a.n = val.parse().expect("--n"),
            "--k" => a.k = val.parse().expect("--k"),
            "--h" => a.h = val.parse().expect("--h"),
            "--seed" => a.seed = val.parse().expect("--seed"),
            "--backend" => a.backend = val.clone(),
            "--variant" => a.variant = val.clone(),
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

fn backend_of(name: &str) -> Backend {
    match name {
        "reference" => Backend::Reference,
        "cpu-fused" => Backend::CpuFused,
        "cpu-unfused" => Backend::CpuUnfused,
        "gpu-fused" => Backend::GpuSim(GpuVariant::Fused),
        "gpu-cuda-unfused" => Backend::GpuSim(GpuVariant::CudaUnfused),
        "gpu-cublas-unfused" => Backend::GpuSim(GpuVariant::CublasUnfused),
        other => panic!("unknown backend {other} (try cpu-fused, cpu-unfused, reference, gpu-fused, gpu-cuda-unfused, gpu-cublas-unfused)"),
    }
}

fn variant_of(name: &str) -> GpuVariant {
    match name {
        "fused" => GpuVariant::Fused,
        "cuda-unfused" => GpuVariant::CudaUnfused,
        "cublas-unfused" => GpuVariant::CublasUnfused,
        other => panic!("unknown variant {other} (try fused, cuda-unfused, cublas-unfused)"),
    }
}

fn build(a: &Args) -> KernelSumProblem {
    KernelSumProblem::builder()
        .sources(PointSet::uniform_cube(a.m, a.k, a.seed))
        .targets(PointSet::uniform_cube(a.n, a.k, a.seed + 1))
        .weights(PointSet::uniform_cube(a.n, 1, a.seed + 2).coords().to_vec())
        .kernel(GaussianKernel { h: a.h })
        .build()
}

fn cmd_solve(a: &Args) {
    let p = build(a);
    println!(
        "solving M={} N={} K={} h={} with {}",
        a.m, a.n, a.k, a.h, a.backend
    );
    let t = Instant::now();
    let v = p.solve(backend_of(&a.backend));
    let dt = t.elapsed();
    let sum: f64 = v.iter().map(|&x| x as f64).sum();
    let max = v.iter().cloned().fold(f32::MIN, f32::max);
    println!(
        "done in {dt:?}: Σ V = {sum:.4}, max V = {max:.4}, V[0..4] = {:?}",
        &v[..v.len().min(4)]
    );
}

fn cmd_profile(a: &Args) {
    let variant = variant_of(&a.variant);
    println!(
        "profiling {} at M={} N={} K={} on a simulated GTX970",
        variant.label(),
        a.m,
        a.n,
        a.k
    );
    let r = profile_gpu(a.m, a.n, a.k, a.h, variant);
    print!("{}", r.profile);
    println!("{}", summary(&r.profile, r.peak_gflops));
    println!(
        "energy {:.3} mJ (compute {:.1}%, smem {:.1}%, l2 {:.1}%, dram {:.1}%)",
        r.energy.total_j() * 1e3,
        r.energy.compute_share() * 100.0,
        100.0 * r.energy.smem_j / r.energy.total_j(),
        100.0 * r.energy.l2_j / r.energy.total_j(),
        r.energy.dram_share() * 100.0,
    );
}

fn cmd_compare(a: &Args) {
    println!(
        "comparing pipelines at M={} N={} K={} (simulated GTX970)",
        a.m, a.n, a.k
    );
    let mut times = Vec::new();
    for variant in GpuVariant::ALL {
        let r = profile_gpu(a.m, a.n, a.k, a.h, variant);
        println!("  {}", summary(&r.profile, r.peak_gflops));
        times.push((variant.label(), r.profile.total_time_s()));
    }
    let fused = times[0].1;
    for (label, t) in &times[1..] {
        println!("  fused speedup vs {label}: {:.3}x", t / fused);
    }
}

fn cmd_lint(rest: &[String]) -> ExitCode {
    let mut out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = Some(it.next().expect("missing value for --out").clone()),
            other => panic!("unknown flag {other} (lint takes only --out PATH)"),
        }
    }
    let dev = kernel_summation::gpu_sim::config::DeviceConfig::gtx970();
    println!("linting recorded warp traces on a simulated {}", dev.name);
    let report = kernel_summation::analyze::lint_report(&dev);
    let table = report.table();
    println!("{table}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &table) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("findings table written to {path}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(cmd) = args.get(1) else {
        eprintln!("usage: ksum <solve|profile|compare|lint> [--m M] [--n N] [--k K] [--h H] [--seed S] [--backend B] [--variant V] | lint [--out PATH]");
        return ExitCode::FAILURE;
    };
    if cmd == "lint" {
        return cmd_lint(&args[2..]);
    }
    let a = parse(&args[2..]);
    match cmd.as_str() {
        "solve" => cmd_solve(&a),
        "profile" => cmd_profile(&a),
        "compare" => cmd_compare(&a),
        other => {
            eprintln!("unknown command {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
