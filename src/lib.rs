//! # kernel-summation — facade crate
//!
//! One-stop re-export of the workspace: the kernel-summation library
//! ([`ks_core`]), the CPU BLAS substrate ([`ks_blas`]), the
//! Maxwell-class GPU simulator ([`ks_gpu_sim`]), the GPU kernels
//! ([`ks_gpu_kernels`]), the energy model ([`ks_energy`]), the batched
//! serving stack ([`ks_serve`]), the tile-geometry autotuner
//! ([`ks_tune`]) and the experiment harness ([`ks_bench`]).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory; `EXPERIMENTS.md` records the paper-vs-measured numbers.

pub use ks_analyze as analyze;
pub use ks_bench as bench;
pub use ks_blas as blas;
pub use ks_core as core;
pub use ks_energy as energy;
pub use ks_gpu_kernels as gpu_kernels;
pub use ks_gpu_sim as gpu_sim;
pub use ks_serve as serve;
pub use ks_tune as tune;

pub use ks_core::prelude;
