//! Failure-injection tests: the simulator must *fault* (panic with a
//! clear message) on illegal device behaviour rather than silently
//! mis-count — the moral equivalent of cuda-memcheck.

use ks_gpu_sim::buffer::GlobalMem;
use ks_gpu_sim::cache::Cache;
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::{Kernel, KernelResources, LaunchError};
use ks_gpu_sim::traffic::{full_warp_idx, TrafficSink};
use ks_gpu_sim::GpuDevice;

/// A kernel whose lane 31 reads one element past the buffer.
struct OutOfBounds {
    buf: ks_gpu_sim::BufId,
    len: usize,
}

impl Kernel for OutOfBounds {
    fn name(&self) -> String {
        "oob".into()
    }
    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(1u32, 32u32)
    }
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 32,
            regs_per_thread: 8,
            smem_bytes_per_block: 0,
        }
    }
    fn execute_block(&self, _: Dim3, ctx: &mut BlockCtx) {
        let idx = full_warp_idx(|l| self.len - 31 + l); // lane 31 → len
        let _ = ctx.warp_ld_global(self.buf, &idx);
    }
    fn block_traffic(&self, _: Dim3, _: &mut TrafficSink) {}
}

#[test]
fn out_of_bounds_global_read_faults_in_functional_mode() {
    let mut dev = GpuDevice::gtx970();
    let buf = dev.alloc(64);
    let k = OutOfBounds { buf, len: 64 };
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dev.run(&k)));
    assert!(r.is_err(), "device fault must surface as a panic");
}

#[test]
fn functional_access_to_virtual_buffer_faults() {
    let mut dev = GpuDevice::gtx970();
    let buf = dev.alloc_virtual(64);
    let k = OutOfBounds { buf, len: 32 }; // in-bounds indices, virtual storage
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dev.run(&k)));
    assert!(r.is_err(), "virtual buffers must reject functional access");
}

/// A kernel that reads shared memory beyond its declaration.
struct SmemOverrun;

impl Kernel for SmemOverrun {
    fn name(&self) -> String {
        "smem_overrun".into()
    }
    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(1u32, 32u32)
    }
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 32,
            regs_per_thread: 8,
            smem_bytes_per_block: 128,
        }
    }
    fn execute_block(&self, _: Dim3, ctx: &mut BlockCtx) {
        // 128 bytes = 32 words; word 32 is out of range.
        let words: [Option<u32>; 32] = std::array::from_fn(|l| Some(l as u32 + 1));
        let _ = ctx.warp_ld_shared(&words);
    }
    fn block_traffic(&self, _: Dim3, _: &mut TrafficSink) {}
}

#[test]
fn shared_memory_overrun_faults() {
    let mut dev = GpuDevice::gtx970();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dev.run(&SmemOverrun)));
    assert!(r.is_err());
}

#[test]
fn every_launch_error_variant_is_reachable_and_described() {
    struct Cfg {
        lc: LaunchConfig,
        res: KernelResources,
    }
    impl Kernel for Cfg {
        fn name(&self) -> String {
            "cfg".into()
        }
        fn launch_config(&self) -> LaunchConfig {
            self.lc
        }
        fn resources(&self) -> KernelResources {
            self.res
        }
        fn execute_block(&self, _: Dim3, _: &mut BlockCtx) {}
        fn block_traffic(&self, _: Dim3, _: &mut TrafficSink) {}
    }
    let mut dev = GpuDevice::gtx970();
    let cases: Vec<(Cfg, &str)> = vec![
        (
            Cfg {
                lc: LaunchConfig::new(0u32, 32u32),
                res: KernelResources {
                    threads_per_block: 32,
                    regs_per_thread: 8,
                    smem_bytes_per_block: 0,
                },
            },
            "empty",
        ),
        (
            Cfg {
                lc: LaunchConfig::new(1u32, Dim3::new_2d(64, 32)),
                res: KernelResources {
                    threads_per_block: 2048,
                    regs_per_thread: 8,
                    smem_bytes_per_block: 0,
                },
            },
            "threads per block",
        ),
        (
            Cfg {
                lc: LaunchConfig::new(1u32, 32u32),
                res: KernelResources {
                    threads_per_block: 32,
                    regs_per_thread: 99,
                    smem_bytes_per_block: 0,
                },
            },
            "", // valid — control case
        ),
        (
            Cfg {
                lc: LaunchConfig::new(1u32, 32u32),
                res: KernelResources {
                    threads_per_block: 32,
                    regs_per_thread: 8,
                    smem_bytes_per_block: 96 * 1024,
                },
            },
            "shared memory",
        ),
        (
            Cfg {
                lc: LaunchConfig::new(1u32, 32u32),
                res: KernelResources {
                    threads_per_block: 64,
                    regs_per_thread: 8,
                    smem_bytes_per_block: 0,
                },
            },
            "declare",
        ),
    ];
    for (k, needle) in cases {
        match dev.launch(&k) {
            Ok(_) => assert!(needle.is_empty(), "expected error containing {needle:?}"),
            Err(e) => {
                assert!(!needle.is_empty(), "unexpected error {e}");
                let msg = e.to_string().to_lowercase();
                assert!(
                    msg.contains(needle),
                    "error {msg:?} should mention {needle:?}"
                );
            }
        }
    }
    // Registers over the architectural max is a distinct error.
    let k = Cfg {
        lc: LaunchConfig::new(1u32, 32u32),
        res: KernelResources {
            threads_per_block: 32,
            regs_per_thread: 255,
            smem_bytes_per_block: 0,
        },
    };
    assert!(
        dev.launch(&k).is_ok(),
        "255 regs is the architectural max and must be allowed"
    );
}

#[test]
fn sink_is_safe_on_empty_and_degenerate_inputs() {
    let mem = GlobalMem::new();
    let mut l2 = Cache::new(1024, 4, 32);
    let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
    // All-inactive warps everywhere: zero counters, no panic.
    let idx: [Option<usize>; 32] = [None; 32];
    let words: [Option<u32>; 32] = [None; 32];
    sink.shared_read(&words, 4);
    sink.shared_write(&words, 1);
    sink.ffma(0);
    sink.syncthreads(0);
    // Inactive global accesses need a valid buffer id even if no lane
    // uses it — allocate one.
    let mut mem2 = GlobalMem::new();
    let buf = mem2.alloc(1);
    let mut l2b = Cache::new(1024, 4, 32);
    let mut sink2 = TrafficSink::new(&mem2, &mut l2b, 32, 32);
    sink2.global_read(buf, &idx, 1);
    sink2.global_write(buf, &idx, 4);
    sink2.global_atomic(buf, &idx);
    assert_eq!(sink2.counters.l2_read_sectors, 0);
    assert_eq!(sink2.counters.l2_write_sectors, 0);
    assert_eq!(sink2.counters.atomic_sectors, 0);
    // Instructions are still issued (predicated-off warps execute).
    assert_eq!(sink2.counters.global_load_insts, 1);
}

#[test]
fn launch_error_is_a_real_error_type() {
    fn assert_error<E: std::error::Error>(_: &E) {}
    let e = LaunchError::EmptyLaunch;
    assert_error(&e);
    assert!(!e.to_string().is_empty());
}
