//! Property-based tests of the simulator substrate: invariants of the
//! bank-conflict model, the coalescer, the cache, and the occupancy
//! calculator under random inputs.

use ks_gpu_sim::cache::Cache;
use ks_gpu_sim::coalesce::{warp_sectors, warp_transaction_count, MAX_SECTORS_PER_WARP};
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::kernel::KernelResources;
use ks_gpu_sim::occupancy::occupancy;
use ks_gpu_sim::smem::warp_transactions;
use proptest::prelude::*;

fn warp_words() -> impl Strategy<Value = [Option<u32>; 32]> {
    proptest::collection::vec(proptest::option::of(0u32..2048), 32)
        .prop_map(|v| std::array::from_fn(|i| v[i]))
}

fn warp_addrs() -> impl Strategy<Value = [Option<u64>; 32]> {
    proptest::collection::vec(proptest::option::of(0u64..(1 << 20)), 32)
        .prop_map(|v| std::array::from_fn(|i| v[i]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn smem_transactions_are_bounded(words in warp_words()) {
        let active = words.iter().filter(|w| w.is_some()).count() as u32;
        let t = warp_transactions(&words, 32);
        prop_assert!(t <= active, "txns {t} > active lanes {active}");
        if active > 0 {
            prop_assert!(t >= 1);
            // Can never exceed the worst distinct-words-per-bank count.
            prop_assert!(t <= 32);
        } else {
            prop_assert_eq!(t, 0);
        }
    }

    #[test]
    fn smem_any_permutation_of_one_row_is_conflict_free(seed in 0u64..10_000) {
        // Any permutation of the 32 words of one bank row touches all
        // 32 banks exactly once.
        let mut perm: Vec<u32> = (0..32).collect();
        let mut state = seed | 1;
        for i in (1..32usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let words: [Option<u32>; 32] = std::array::from_fn(|i| Some(perm[i]));
        prop_assert_eq!(warp_transactions(&words, 32), 1);
    }

    #[test]
    fn smem_transactions_invariant_under_lane_permutation(words in warp_words(), seed in 0u64..10_000) {
        let mut lanes: Vec<usize> = (0..32).collect();
        let mut state = seed | 1;
        for i in (1..32usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            lanes.swap(i, j);
        }
        let permuted: [Option<u32>; 32] = std::array::from_fn(|i| words[lanes[i]]);
        prop_assert_eq!(warp_transactions(&words, 32), warp_transactions(&permuted, 32));
    }

    #[test]
    fn coalescer_counts_exactly_the_distinct_sectors(addrs in warp_addrs()) {
        let mut expected: Vec<u64> = addrs
            .iter()
            .flatten()
            .flat_map(|&a| vec![a / 32, (a + 3) / 32])
            .collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(warp_transaction_count(&addrs, 4, 32) as usize, expected.len());
    }

    #[test]
    fn coalescer_sector_list_is_unique_and_aligned(addrs in warp_addrs()) {
        let mut buf = [0u64; MAX_SECTORS_PER_WARP * 2];
        let sectors = warp_sectors(&addrs, 16, 32, &mut buf).to_vec();
        let mut sorted = sectors.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sectors.len(), "duplicates in sector list");
        for s in &sectors {
            prop_assert_eq!(s % 32, 0);
        }
    }

    #[test]
    fn vector_width_never_reduces_sector_count(addrs in warp_addrs()) {
        // A 16B access per lane covers at least the sectors of a 4B
        // access at the same base.
        let narrow = warp_transaction_count(&addrs, 4, 32);
        let wide = warp_transaction_count(&addrs, 16, 32);
        prop_assert!(wide >= narrow);
    }

    #[test]
    fn cache_conservation_laws(ops in proptest::collection::vec((any::<bool>(), 0u64..(1 << 14)), 1..400)) {
        let mut c = Cache::new(4096, 4, 32);
        for (is_write, addr) in &ops {
            if *is_write {
                c.write(*addr);
            } else {
                c.read(*addr);
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.read_hits + s.read_misses, s.read_accesses);
        prop_assert_eq!(s.write_hits + s.write_misses, s.write_accesses);
        // Write-backs can never exceed total writes (each write dirties
        // at most one line; flushes clean them).
        let flushed = c.flush_dirty();
        prop_assert!(c.stats().write_backs <= s.write_accesses);
        prop_assert!(flushed <= s.write_accesses);
        // Second flush is a no-op.
        prop_assert_eq!(c.flush_dirty(), 0);
    }

    #[test]
    fn cache_working_set_within_capacity_has_no_capacity_misses(
        lines in 1usize..32,
        passes in 2usize..5,
    ) {
        // Touch `lines` distinct sectors repeatedly: with LRU and
        // capacity 128 lines, ≤ 32 lines always fit.
        let mut c = Cache::new(4096, 4, 32);
        let mut misses_after_first = 0;
        for pass in 0..passes {
            for i in 0..lines {
                let before = c.stats().read_misses;
                c.read((i * 32) as u64);
                if pass > 0 {
                    misses_after_first += c.stats().read_misses - before;
                }
            }
        }
        prop_assert_eq!(misses_after_first, 0);
    }

    #[test]
    fn occupancy_is_monotone_in_resources(
        threads_exp in 5u32..10,
        regs in 16u32..255,
        smem in 0u32..48_000,
    ) {
        let dev = DeviceConfig::gtx970();
        let threads = 1 << threads_exp;
        let base = occupancy(&dev, &KernelResources { threads_per_block: threads, regs_per_thread: regs, smem_bytes_per_block: smem });
        // More registers can never increase occupancy.
        if regs + 8 <= 255 {
            let more_regs = occupancy(&dev, &KernelResources { threads_per_block: threads, regs_per_thread: regs + 8, smem_bytes_per_block: smem });
            prop_assert!(more_regs.blocks_per_sm <= base.blocks_per_sm);
        }
        // More shared memory can never increase occupancy.
        if smem + 1024 <= 48 * 1024 {
            let more_smem = occupancy(&dev, &KernelResources { threads_per_block: threads, regs_per_thread: regs, smem_bytes_per_block: smem + 1024 });
            prop_assert!(more_smem.blocks_per_sm <= base.blocks_per_sm);
        }
        // Fraction is consistent with warp counts.
        prop_assert!((base.fraction - base.warps_per_sm as f64 / 64.0).abs() < 1e-12);
        // Hardware limits always hold.
        prop_assert!(base.threads_per_sm <= dev.max_threads_per_sm);
        prop_assert!(base.blocks_per_sm <= dev.max_blocks_per_sm);
    }
}
