//! Property-based tests of the parallel replay engine: replayed
//! counters and memory traffic are invariant under the worker count
//! and memoization flag, counter merging is order-independent, and
//! set-sharded L2 simulation reproduces the whole-cache serial walk
//! on random address streams.

use ks_gpu_sim::cache::Cache;
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::KernelResources;
use ks_gpu_sim::traffic::full_warp_idx;
use ks_gpu_sim::{BufId, Counters, GpuDevice, Kernel, ReplayStrategy, TrafficSink};
use proptest::prelude::*;

/// Heterogeneous kernel driven by a per-block table of tile bases:
/// block `i` reads `x[bases[i]..+32]`, writes `y` at the same offset,
/// and every third block also issues an atomic — enough variety to
/// exercise the Full replay mode (reads, writes, atomics, per-block
/// counter differences).
struct Scatter {
    x: BufId,
    y: BufId,
    bases: Vec<usize>,
}

impl Kernel for Scatter {
    fn name(&self) -> String {
        "scatter".into()
    }
    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::new_1d(self.bases.len() as u32), 32u32)
    }
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 32,
            regs_per_thread: 16,
            smem_bytes_per_block: 0,
        }
    }
    fn execute_block(&self, _block: Dim3, _ctx: &mut BlockCtx) {
        unreachable!("traffic-only kernel");
    }
    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        let base = self.bases[block.x as usize];
        let idx = full_warp_idx(|l| base + l);
        sink.global_read(self.x, &idx, 1);
        sink.ffma(1 + block.x as u64 % 3);
        sink.global_write(self.y, &idx, 1);
        if block.x.is_multiple_of(3) {
            sink.global_atomic(self.y, &idx);
        }
    }
}

fn profile_with(bases: &[usize], strategy: ReplayStrategy) -> ks_gpu_sim::KernelProfile {
    let mut dev = GpuDevice::gtx970();
    let x = dev.alloc(8192);
    let y = dev.alloc(8192);
    dev.set_replay_strategy(strategy);
    dev.launch(&Scatter {
        x,
        y,
        bases: bases.to_vec(),
    })
    .unwrap()
}

fn counters_strategy() -> impl Strategy<Value = Counters> {
    (
        0u64..1000,
        0u64..1000,
        0u64..1000,
        0u64..1000,
        0u64..1000,
        0u64..1000,
    )
        .prop_map(|(ffma, loads, l2r, atom, flops, thread)| Counters {
            ffma_insts: ffma,
            global_load_insts: loads,
            l2_read_sectors: l2r,
            atomic_sectors: atom,
            flops,
            thread_insts: thread,
            ..Counters::default()
        })
}

/// Applies `ops` through `n` set shards (bucketing exactly as the
/// replay engine does: `set_index / ceil(sets / n)`, global order
/// preserved within each bucket) and folds the shard stats back.
fn apply_sharded(c: &mut Cache, ops: &[(bool, u64)], n: usize) {
    let n = n.clamp(1, c.num_sets());
    let per = c.num_sets().div_ceil(n);
    let mut buckets: Vec<Vec<(bool, u64)>> = vec![Vec::new(); n];
    for &(w, a) in ops {
        buckets[c.set_index(a) / per].push((w, a));
    }
    let mut stats = Vec::with_capacity(n);
    for (shard, bucket) in c.shards(n).iter_mut().zip(&buckets) {
        for &(w, a) in bucket {
            if w {
                shard.write(a);
            } else {
                shard.read(a);
            }
        }
        stats.push(shard.stats());
    }
    for s in &stats {
        c.absorb_stats(s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole invariant: the replayed profile (every counter and the
    /// L2/DRAM traffic delta) does not depend on the shard/worker
    /// count or on memoization.
    #[test]
    fn replay_profile_invariant_under_shard_count(
        bases in proptest::collection::vec(0usize..8000, 1..20),
    ) {
        let serial = profile_with(&bases, ReplayStrategy::Serial);
        for threads in [1usize, 2, 7, 16] {
            for memoize in [false, true] {
                let par = profile_with(
                    &bases,
                    ReplayStrategy::Parallel { memoize, threads: Some(threads) },
                );
                prop_assert_eq!(serial.counters, par.counters,
                    "threads {} memoize {}", threads, memoize);
                prop_assert_eq!(serial.mem, par.mem,
                    "threads {} memoize {}", threads, memoize);
            }
        }
    }

    /// Per-block counters merge to the same total in any order (the
    /// engine still folds them in grid order; this pins down that the
    /// choice is presentational, not load-bearing).
    #[test]
    fn counter_merge_is_order_independent(
        per_block in proptest::collection::vec(counters_strategy(), 1..32),
        seed in 0u64..10_000,
    ) {
        let mut grid_order = Counters::default();
        for c in &per_block {
            grid_order.merge(c);
        }
        let mut perm: Vec<usize> = (0..per_block.len()).collect();
        let mut state = seed | 1;
        for i in (1..perm.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut permuted = Counters::default();
        for &i in &perm {
            permuted.merge(&per_block[i]);
        }
        prop_assert_eq!(grid_order, permuted);
    }

    /// Set-sharded simulation of a random read/write stream produces
    /// the same aggregate statistics and the same dirty-line
    /// population as the serial whole-cache walk, for any shard count.
    #[test]
    fn sharded_l2_stats_match_serial(
        ops in proptest::collection::vec((any::<bool>(), 0u64..(1 << 15)), 1..500),
        n in 1usize..17,
        hashed in any::<bool>(),
    ) {
        let mk = || if hashed {
            Cache::new_hashed(16 * 1024, 4, 32)
        } else {
            Cache::new(16 * 1024, 4, 32)
        };
        let mut serial = mk();
        for &(w, a) in &ops {
            if w {
                serial.write(a);
            } else {
                serial.read(a);
            }
        }
        let mut sharded = mk();
        apply_sharded(&mut sharded, &ops, n);
        prop_assert_eq!(serial.stats(), sharded.stats(), "shards {}", n);
        prop_assert_eq!(serial.flush_dirty(), sharded.flush_dirty(), "shards {}", n);
    }
}
