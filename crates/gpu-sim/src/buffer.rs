//! Device global memory: a flat address space of `f32` cells.
//!
//! Buffers live at 256-byte-aligned base addresses in a single linear
//! address space so the cache model sees realistic, non-overlapping
//! addresses. Cells are `AtomicU32` holding `f32` bit patterns: plain
//! loads/stores use relaxed atomics (race-free kernels never contend),
//! and `atomic_add` implements the device-wide `atomicAdd(float*)`
//! with a compare-exchange loop — the same read-modify-write the L2
//! atomic unit performs on Maxwell (paper §III-C, inter-thread-block
//! reduction).

use std::sync::atomic::{AtomicU32, Ordering};

/// Handle to a device buffer (index into a [`GlobalMem`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub(crate) usize);

enum Storage {
    /// Backed by host memory: functional kernels may load/store.
    Real(Vec<AtomicU32>),
    /// Address-space-only: traffic replay works (addresses exist) but
    /// any data access faults. Lets paper-scale problems (a 2 GB
    /// intermediate at `M = 524288`) be profiled without allocating.
    Virtual(usize),
}

struct BufferEntry {
    base_addr: u64,
    data: Storage,
}

impl BufferEntry {
    fn len(&self) -> usize {
        match &self.data {
            Storage::Real(v) => v.len(),
            Storage::Virtual(n) => *n,
        }
    }

    fn cells(&self) -> &Vec<AtomicU32> {
        match &self.data {
            Storage::Real(v) => v,
            Storage::Virtual(_) => {
                panic!("data access to a virtual (traffic-only) buffer")
            }
        }
    }
}

/// Flat device memory: allocation, upload/download, and addressing.
#[derive(Default)]
pub struct GlobalMem {
    buffers: Vec<BufferEntry>,
    next_addr: u64,
}

/// Alignment of buffer base addresses (matches `cudaMalloc`'s minimum).
pub const BUFFER_ALIGN: u64 = 256;

impl GlobalMem {
    /// Empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, len: usize, data: Storage) -> BufId {
        let base_addr = self.next_addr;
        self.next_addr += ((len as u64 * 4).div_ceil(BUFFER_ALIGN)) * BUFFER_ALIGN;
        // Zero-length buffers still get distinct addresses.
        self.next_addr += BUFFER_ALIGN;
        self.buffers.push(BufferEntry { base_addr, data });
        BufId(self.buffers.len() - 1)
    }

    /// Allocates `len` zero-initialised `f32` cells.
    pub fn alloc(&mut self, len: usize) -> BufId {
        let mut data = Vec::with_capacity(len);
        data.resize_with(len, || AtomicU32::new(0f32.to_bits()));
        self.push(len, Storage::Real(data))
    }

    /// Reserves `len` cells of address space with **no** backing data:
    /// traffic replay works, functional access faults — paper-scale
    /// problems can be profiled without materialising gigabytes.
    pub fn alloc_virtual(&mut self, len: usize) -> BufId {
        self.push(len, Storage::Virtual(len))
    }

    /// Allocates and fills from `src`.
    pub fn upload(&mut self, src: &[f32]) -> BufId {
        let id = self.alloc(src.len());
        let buf = &self.buffers[id.0];
        for (cell, v) in buf.cells().iter().zip(src) {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
        id
    }

    /// Copies a buffer back to the host.
    ///
    /// # Panics
    /// Panics on an invalid handle.
    #[must_use]
    pub fn download(&self, id: BufId) -> Vec<f32> {
        self.entry(id)
            .cells()
            .iter()
            .map(|c| f32::from_bits(c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Overwrites a buffer's contents with `src`.
    ///
    /// # Panics
    /// Panics on an invalid handle or length mismatch.
    pub fn write(&self, id: BufId, src: &[f32]) {
        let buf = self.entry(id);
        assert_eq!(buf.len(), src.len(), "upload length mismatch");
        for (cell, v) in buf.cells().iter().zip(src) {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Fills a buffer with a constant.
    pub fn fill(&self, id: BufId, v: f32) {
        for cell in self.entry(id).cells() {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Number of `f32` cells in the buffer.
    #[must_use]
    pub fn len(&self, id: BufId) -> usize {
        self.entry(id).len()
    }

    /// True if the buffer holds no cells.
    #[must_use]
    pub fn is_empty(&self, id: BufId) -> bool {
        self.entry(id).len() == 0
    }

    /// True if the buffer is address-space-only (no backing data) —
    /// such buffers cannot receive injected DRAM faults.
    #[must_use]
    pub fn is_virtual(&self, id: BufId) -> bool {
        matches!(self.entry(id).data, Storage::Virtual(_))
    }

    /// Base byte address of the buffer in the flat device address space.
    #[must_use]
    pub fn base_addr(&self, id: BufId) -> u64 {
        self.entry(id).base_addr
    }

    /// Byte address of element `idx` of the buffer.
    #[inline]
    #[must_use]
    pub fn addr_of(&self, id: BufId, idx: usize) -> u64 {
        self.entry(id).base_addr + idx as u64 * 4
    }

    /// Loads element `idx`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access (the simulator's equivalent of a
    /// device memory fault).
    #[inline]
    #[must_use]
    pub fn load(&self, id: BufId, idx: usize) -> f32 {
        f32::from_bits(self.entry(id).cells()[idx].load(Ordering::Relaxed))
    }

    /// Stores `v` into element `idx`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn store(&self, id: BufId, idx: usize, v: f32) {
        self.entry(id).cells()[idx].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomic `+=` (device `atomicAdd(float*, float)`), returning the
    /// previous value.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    pub fn atomic_add(&self, id: BufId, idx: usize, v: f32) -> f32 {
        let cell = &self.entry(id).cells()[idx];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let old = f32::from_bits(cur);
            let new = (old + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return old,
                Err(actual) => cur = actual,
            }
        }
    }

    fn entry(&self, id: BufId) -> &BufferEntry {
        self.buffers.get(id.0).expect("invalid buffer handle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_round_trip() {
        let mut m = GlobalMem::new();
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let id = m.upload(&data);
        assert_eq!(m.download(id), data);
        assert_eq!(m.len(id), 100);
        assert!(!m.is_empty(id));
    }

    #[test]
    fn buffers_do_not_overlap_and_are_aligned() {
        let mut m = GlobalMem::new();
        let a = m.alloc(3); // 12 bytes -> 256-byte slot
        let b = m.alloc(100);
        let c = m.alloc(0);
        let d = m.alloc(1);
        assert_eq!(m.base_addr(a) % BUFFER_ALIGN, 0);
        assert_eq!(m.base_addr(b) % BUFFER_ALIGN, 0);
        assert!(m.base_addr(b) >= m.base_addr(a) + 12);
        assert!(m.base_addr(c) > m.base_addr(b));
        assert!(
            m.base_addr(d) > m.base_addr(c),
            "zero-length buffers still get unique addresses"
        );
    }

    #[test]
    fn addr_of_is_base_plus_offset() {
        let mut m = GlobalMem::new();
        let a = m.alloc(10);
        assert_eq!(m.addr_of(a, 7), m.base_addr(a) + 28);
    }

    #[test]
    fn load_store_and_fill() {
        let mut m = GlobalMem::new();
        let a = m.alloc(4);
        m.store(a, 2, 9.5);
        assert_eq!(m.load(a, 2), 9.5);
        m.fill(a, -1.0);
        assert_eq!(m.download(a), vec![-1.0; 4]);
    }

    #[test]
    fn atomic_add_returns_previous_and_accumulates() {
        let mut m = GlobalMem::new();
        let a = m.alloc(1);
        assert_eq!(m.atomic_add(a, 0, 2.0), 0.0);
        assert_eq!(m.atomic_add(a, 0, 3.0), 2.0);
        assert_eq!(m.load(a, 0), 5.0);
    }

    #[test]
    fn atomic_add_is_correct_under_contention() {
        use rayon::prelude::*;
        let mut m = GlobalMem::new();
        let a = m.alloc(1);
        let m = &m;
        (0..10_000).into_par_iter().for_each(|_| {
            m.atomic_add(a, 0, 1.0);
        });
        assert_eq!(m.load(a, 0), 10_000.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_load_faults() {
        let mut m = GlobalMem::new();
        let a = m.alloc(2);
        let _ = m.load(a, 2);
    }

    #[test]
    fn virtual_buffers_have_addresses_but_no_data() {
        let mut m = GlobalMem::new();
        let a = m.alloc_virtual(1_000_000);
        let b = m.alloc(4);
        assert_eq!(m.len(a), 1_000_000);
        assert!(m.base_addr(b) >= m.base_addr(a) + 4_000_000);
        assert_eq!(m.addr_of(a, 10), m.base_addr(a) + 40);
    }

    #[test]
    #[should_panic(expected = "virtual")]
    fn virtual_buffer_load_faults() {
        let mut m = GlobalMem::new();
        let a = m.alloc_virtual(8);
        let _ = m.load(a, 0);
    }

    #[test]
    fn write_replaces_contents() {
        let mut m = GlobalMem::new();
        let a = m.upload(&[1.0, 2.0]);
        m.write(a, &[3.0, 4.0]);
        assert_eq!(m.download(a), vec![3.0, 4.0]);
    }
}
