//! Functional block-synchronous execution engine.
//!
//! A kernel's `execute_block` runs the numerics of one thread block
//! against real device buffers. Code is written *warp-synchronously*:
//! memory traffic is issued through warp-level [`BlockCtx`] calls
//! (which also feed the [`TrafficSink`] when profiling), and
//! per-thread compute is ordinary Rust between those calls. Because
//! the engine interprets one block at a time with explicit barriers,
//! `__syncthreads()` semantics hold trivially; blocks themselves may
//! run in parallel across host threads (rayon), mirroring independent
//! CTAs on different SMs.

use rayon::prelude::*;

use crate::buffer::{BufId, GlobalMem};
use crate::fault::{BlockFaults, LaunchFaultPlan};
use crate::kernel::Kernel;
use crate::smem::flip_bit;
use crate::traffic::{TrafficSink, WarpIdx};

/// Execution context of one thread block (functional mode).
pub struct BlockCtx<'a, 'b> {
    mem: &'a GlobalMem,
    smem: Vec<f32>,
    sink: Option<&'b mut TrafficSink<'a>>,
    /// Faults scheduled against this block (see [`crate::fault`]).
    faults: Option<BlockFaults>,
    /// `__syncthreads()` ordinal, counted so scheduled shared-memory
    /// flips can target a specific barrier.
    sync_seen: u32,
}

impl<'a, 'b> BlockCtx<'a, 'b> {
    /// Creates a context with `smem_words` words of shared memory.
    #[must_use]
    pub fn new(
        mem: &'a GlobalMem,
        smem_words: usize,
        sink: Option<&'b mut TrafficSink<'a>>,
    ) -> Self {
        Self {
            mem,
            smem: vec![0.0; smem_words],
            sink,
            faults: None,
            sync_seen: 0,
        }
    }

    /// Arms this block with its scheduled faults. Shared-memory flips
    /// fire at their targeted barrier; register flips wait in the
    /// context until the kernel drains them with
    /// [`BlockCtx::take_accumulator_faults`].
    pub fn arm_faults(&mut self, faults: BlockFaults) {
        self.faults = Some(faults);
    }

    /// Drains every accumulator-register fault scheduled against this
    /// block as `(element draw, bit)` pairs, tallying them as applied.
    /// Kernels that keep partial sums in registers call this once,
    /// after their accumulate phase, and map each element draw onto
    /// their accumulator layout (modulo the accumulator count).
    /// Returns an empty vector when the block is not under attack —
    /// and always in traffic mode, where no data exists to corrupt.
    #[must_use]
    pub fn take_accumulator_faults(&mut self) -> Vec<(u64, u8)> {
        let Some(faults) = self.faults.as_mut() else {
            return Vec::new();
        };
        let drained: Vec<(u64, u8)> = faults.reg.drain(..).map(|f| (f.elem_pick, f.bit)).collect();
        if !drained.is_empty() {
            faults.tally.add_reg(drained.len() as u64);
        }
        drained
    }

    /// Shared-memory size in words.
    #[must_use]
    pub fn smem_words(&self) -> usize {
        self.smem.len()
    }

    /// Announces the warp issuing subsequent events (trace-only; no
    /// counter or functional effect).
    pub fn begin_warp(&mut self, warp: u32) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.begin_warp(warp);
        }
    }

    /// Warp global load, one word per active lane.
    ///
    /// # Panics
    /// Panics if a lane's index is out of bounds (a device fault).
    #[must_use]
    pub fn warp_ld_global(&mut self, buf: BufId, idx: &WarpIdx) -> [f32; 32] {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.global_read(buf, idx, 1);
        }
        std::array::from_fn(|l| idx[l].map_or(0.0, |i| self.mem.load(buf, i)))
    }

    /// Warp global vector load: lane `l` reads `VL` consecutive words
    /// starting at `idx[l]` (VL = 4 models LDG.128 / `float4`).
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[must_use]
    pub fn warp_ld_global_vec<const VL: usize>(
        &mut self,
        buf: BufId,
        idx: &WarpIdx,
    ) -> [[f32; VL]; 32] {
        debug_assert!(matches!(VL, 1 | 2 | 4));
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.global_read(buf, idx, VL as u32);
        }
        std::array::from_fn(|l| match idx[l] {
            Some(i) => std::array::from_fn(|j| self.mem.load(buf, i + j)),
            None => [0.0; VL],
        })
    }

    /// Warp global store, one word per active lane.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    pub fn warp_st_global(&mut self, buf: BufId, idx: &WarpIdx, vals: &[f32; 32]) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.global_write(buf, idx, 1);
        }
        for (l, i) in idx.iter().enumerate() {
            if let Some(i) = i {
                self.mem.store(buf, *i, vals[l]);
            }
        }
    }

    /// Warp global vector store (`float4` for VL = 4).
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    pub fn warp_st_global_vec<const VL: usize>(
        &mut self,
        buf: BufId,
        idx: &WarpIdx,
        vals: &[[f32; VL]; 32],
    ) {
        debug_assert!(matches!(VL, 1 | 2 | 4));
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.global_write(buf, idx, VL as u32);
        }
        for (l, i) in idx.iter().enumerate() {
            if let Some(i) = i {
                for j in 0..VL {
                    self.mem.store(buf, *i + j, vals[l][j]);
                }
            }
        }
    }

    /// Warp `atomicAdd`, one word per active lane.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    pub fn warp_atomic_add(&mut self, buf: BufId, idx: &WarpIdx, vals: &[f32; 32]) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.global_atomic(buf, idx);
        }
        for (l, i) in idx.iter().enumerate() {
            if let Some(i) = i {
                self.mem.atomic_add(buf, *i, vals[l]);
            }
        }
    }

    /// Warp shared load, one word per active lane.
    ///
    /// # Panics
    /// Panics if a word index exceeds the block's shared memory.
    #[must_use]
    pub fn warp_ld_shared(&mut self, word: &[Option<u32>; 32]) -> [f32; 32] {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.shared_read(word, 1);
        }
        std::array::from_fn(|l| word[l].map_or(0.0, |w| self.smem[w as usize]))
    }

    /// Warp shared vector load (LDS.128 for VL = 4).
    ///
    /// # Panics
    /// Panics on out-of-bounds shared access.
    #[must_use]
    pub fn warp_ld_shared_vec<const VL: usize>(
        &mut self,
        word: &[Option<u32>; 32],
    ) -> [[f32; VL]; 32] {
        debug_assert!(matches!(VL, 1 | 2 | 4));
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.shared_read(word, VL as u32);
        }
        std::array::from_fn(|l| match word[l] {
            Some(w) => std::array::from_fn(|j| self.smem[w as usize + j]),
            None => [0.0; VL],
        })
    }

    /// Warp shared store, one word per active lane.
    ///
    /// # Panics
    /// Panics on out-of-bounds shared access.
    pub fn warp_st_shared(&mut self, word: &[Option<u32>; 32], vals: &[f32; 32]) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.shared_write(word, 1);
        }
        for (l, w) in word.iter().enumerate() {
            if let Some(w) = w {
                self.smem[*w as usize] = vals[l];
            }
        }
    }

    /// Warp shared vector store (STS.128 for VL = 4).
    ///
    /// # Panics
    /// Panics on out-of-bounds shared access.
    pub fn warp_st_shared_vec<const VL: usize>(
        &mut self,
        word: &[Option<u32>; 32],
        vals: &[[f32; VL]; 32],
    ) {
        debug_assert!(matches!(VL, 1 | 2 | 4));
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.shared_write(word, VL as u32);
        }
        for (l, w) in word.iter().enumerate() {
            if let Some(w) = w {
                for j in 0..VL {
                    self.smem[*w as usize + j] = vals[l][j];
                }
            }
        }
    }

    /// Records `n` full-warp FFMA instructions.
    pub fn ffma(&mut self, n: u64) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.ffma(n);
        }
    }

    /// Records `n` full-warp FADD/FMUL instructions.
    pub fn falu(&mut self, n: u64) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.falu(n);
        }
    }

    /// Records `n` full-warp integer/addressing instructions.
    pub fn alu(&mut self, n: u64) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.alu(n);
        }
    }

    /// Records `n` full-warp special-function instructions.
    pub fn sfu(&mut self, n: u64) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.sfu(n);
        }
    }

    /// Block-wide barrier executed by `warps` warps. (The interpreter
    /// runs warps to completion between barriers, so this is purely a
    /// counting event; ordering is enforced by program structure.)
    ///
    /// When the block is armed with faults, scheduled shared-memory
    /// bit flips targeting this barrier ordinal are applied here —
    /// data only, never counters.
    pub fn syncthreads(&mut self, warps: u64) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.syncthreads(warps);
        }
        let sync_idx = self.sync_seen;
        self.sync_seen += 1;
        if let Some(faults) = self.faults.as_ref() {
            if self.smem.is_empty() {
                return;
            }
            let mut applied = 0u64;
            for f in faults.smem.iter().filter(|f| f.sync_idx == sync_idx) {
                let word = (f.word_pick % self.smem.len() as u64) as usize;
                self.smem[word] = flip_bit(self.smem[word], f.bit);
                applied += 1;
            }
            if applied > 0 {
                faults.tally.add_smem(applied);
            }
        }
    }
}

/// Runs every block of `kernel` functionally, in parallel over host
/// threads. No counters are collected (use
/// [`crate::device::GpuDevice::run_counted`] for that).
pub fn run_functional(mem: &GlobalMem, kernel: &dyn Kernel, smem_words: usize) {
    let lc = kernel.launch_config();
    let blocks: Vec<_> = lc.grid.iter_indices().collect();
    blocks.par_iter().for_each(|&b| {
        let mut ctx = BlockCtx::new(mem, smem_words, None);
        kernel.execute_block(b, &mut ctx);
    });
}

/// [`run_functional`] with a fault schedule: each block is armed with
/// the faults aimed at its launch-order (linear) index before it
/// executes. The linear index is the position in the grid's block
/// enumeration order, which is stable under the rayon partitioning.
pub fn run_functional_with_faults(
    mem: &GlobalMem,
    kernel: &dyn Kernel,
    smem_words: usize,
    plan: &LaunchFaultPlan,
) {
    let lc = kernel.launch_config();
    let blocks: Vec<_> = lc.grid.iter_indices().collect();
    blocks.par_iter().enumerate().for_each(|(i, &b)| {
        let mut ctx = BlockCtx::new(mem, smem_words, None);
        if let Some(f) = plan.block_faults(i as u64) {
            ctx.arm_faults(f);
        }
        kernel.execute_block(b, &mut ctx);
    });
}

/// Runs every block sequentially in launch order, feeding `sink` —
/// functional execution with full profiling (slow; for validation).
pub fn run_functional_counted<'a>(
    mem: &'a GlobalMem,
    kernel: &dyn Kernel,
    smem_words: usize,
    sink: &mut TrafficSink<'a>,
) {
    let lc = kernel.launch_config();
    for (i, b) in lc.grid.iter_indices().enumerate() {
        sink.begin_block(i as u64);
        let mut ctx = BlockCtx::new(mem, smem_words, Some(sink));
        kernel.execute_block(b, &mut ctx);
    }
}

/// Like [`run_functional_counted`], but harvests each block's counters
/// separately (the sink's running counters are reset per block), so
/// the caller can merge them through the same deterministic grid-order
/// reduction the traffic replay engine uses.
pub fn run_functional_counted_per_block<'a>(
    mem: &'a GlobalMem,
    kernel: &dyn Kernel,
    smem_words: usize,
    sink: &mut TrafficSink<'a>,
) -> Vec<crate::profiler::Counters> {
    let lc = kernel.launch_config();
    let mut per_block = Vec::with_capacity(lc.total_blocks() as usize);
    for (i, b) in lc.grid.iter_indices().enumerate() {
        sink.counters = crate::profiler::Counters::default();
        sink.begin_block(i as u64);
        let mut ctx = BlockCtx::new(mem, smem_words, Some(sink));
        kernel.execute_block(b, &mut ctx);
        per_block.push(sink.counters);
    }
    per_block
}

/// [`run_functional_counted_per_block`] with a fault schedule (see
/// [`run_functional_with_faults`]). Faults perturb data, never the
/// harvested counters: the per-block counter vector is bit-identical
/// to a fault-free run because every kernel's instruction stream is
/// data-independent.
pub fn run_functional_counted_per_block_with_faults<'a>(
    mem: &'a GlobalMem,
    kernel: &dyn Kernel,
    smem_words: usize,
    sink: &mut TrafficSink<'a>,
    plan: &LaunchFaultPlan,
) -> Vec<crate::profiler::Counters> {
    let lc = kernel.launch_config();
    let mut per_block = Vec::with_capacity(lc.total_blocks() as usize);
    for (i, b) in lc.grid.iter_indices().enumerate() {
        sink.counters = crate::profiler::Counters::default();
        sink.begin_block(i as u64);
        let mut ctx = BlockCtx::new(mem, smem_words, Some(sink));
        if let Some(f) = plan.block_faults(i as u64) {
            ctx.arm_faults(f);
        }
        kernel.execute_block(b, &mut ctx);
        per_block.push(sink.counters);
    }
    per_block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::dim::{Dim3, LaunchConfig};
    use crate::kernel::KernelResources;
    use crate::traffic::full_warp_idx;

    /// y[i] = 2 * x[i] over one warp per block.
    struct Doubler {
        x: BufId,
        y: BufId,
        n: usize,
    }

    impl Kernel for Doubler {
        fn name(&self) -> String {
            "doubler".into()
        }
        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::new_1d((self.n as u32).div_ceil(32)), 32u32)
        }
        fn resources(&self) -> KernelResources {
            KernelResources {
                threads_per_block: 32,
                regs_per_thread: 8,
                smem_bytes_per_block: 0,
            }
        }
        fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
            let base = block.x as usize * 32;
            let idx: WarpIdx = std::array::from_fn(|l| {
                let i = base + l;
                (i < self.n).then_some(i)
            });
            let v = ctx.warp_ld_global(self.x, &idx);
            ctx.falu(1);
            let out: [f32; 32] = std::array::from_fn(|l| v[l] * 2.0);
            ctx.warp_st_global(self.y, &idx, &out);
        }
        fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
            let base = block.x as usize * 32;
            let idx: WarpIdx = std::array::from_fn(|l| {
                let i = base + l;
                (i < self.n).then_some(i)
            });
            sink.global_read(self.x, &idx, 1);
            sink.falu(1);
            sink.global_write(self.y, &idx, 1);
        }
    }

    #[test]
    fn functional_run_computes_correct_values() {
        let mut mem = GlobalMem::new();
        let n = 100;
        let x = mem.upload(&(0..n).map(|i| i as f32).collect::<Vec<_>>());
        let y = mem.alloc(n);
        let k = Doubler { x, y, n };
        run_functional(&mem, &k, 0);
        let out = mem.download(y);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32);
        }
    }

    #[test]
    fn counted_run_matches_traffic_replay() {
        let mut mem = GlobalMem::new();
        let n = 100;
        let x = mem.upload(&vec![1.0; n]);
        let y = mem.alloc(n);
        let k = Doubler { x, y, n };

        let mut l2a = Cache::new(64 * 1024, 16, 32);
        let mut sink_a = TrafficSink::new(&mem, &mut l2a, 32, 32);
        run_functional_counted(&mem, &k, 0, &mut sink_a);

        let mut l2b = Cache::new(64 * 1024, 16, 32);
        let mut sink_b = TrafficSink::new(&mem, &mut l2b, 32, 32);
        for b in k.launch_config().grid.iter_indices() {
            k.block_traffic(b, &mut sink_b);
        }

        assert_eq!(sink_a.counters, sink_b.counters);
        assert_eq!(l2a.stats(), l2b.stats());
    }

    #[test]
    fn shared_memory_round_trip() {
        let mem = GlobalMem::new();
        let mut ctx = BlockCtx::new(&mem, 64, None);
        let words = crate::traffic::full_warp_words(|l| l as u32);
        let vals: [f32; 32] = std::array::from_fn(|l| l as f32 * 1.5);
        ctx.warp_st_shared(&words, &vals);
        let back = ctx.warp_ld_shared(&words);
        assert_eq!(back, vals);
    }

    #[test]
    fn vector_shared_round_trip() {
        let mem = GlobalMem::new();
        let mut ctx = BlockCtx::new(&mem, 256, None);
        let words = crate::traffic::full_warp_words(|l| 4 * l as u32);
        let vals: [[f32; 4]; 32] =
            std::array::from_fn(|l| std::array::from_fn(|j| (l * 4 + j) as f32));
        ctx.warp_st_shared_vec(&words, &vals);
        assert_eq!(ctx.warp_ld_shared_vec::<4>(&words), vals);
    }

    #[test]
    fn vector_global_round_trip() {
        let mut mem = GlobalMem::new();
        let buf = mem.alloc(128);
        let mut ctx = BlockCtx::new(&mem, 0, None);
        let idx = full_warp_idx(|l| 4 * l);
        let vals: [[f32; 4]; 32] = std::array::from_fn(|l| std::array::from_fn(|j| (l + j) as f32));
        ctx.warp_st_global_vec(buf, &idx, &vals);
        assert_eq!(ctx.warp_ld_global_vec::<4>(buf, &idx), vals);
    }

    #[test]
    fn atomic_add_accumulates_across_blocks() {
        let mut mem = GlobalMem::new();
        let acc = mem.alloc(32);
        struct AtomicK {
            acc: BufId,
        }
        impl Kernel for AtomicK {
            fn name(&self) -> String {
                "atomic".into()
            }
            fn launch_config(&self) -> LaunchConfig {
                LaunchConfig::new(10u32, 32u32)
            }
            fn resources(&self) -> KernelResources {
                KernelResources {
                    threads_per_block: 32,
                    regs_per_thread: 8,
                    smem_bytes_per_block: 0,
                }
            }
            fn execute_block(&self, _: Dim3, ctx: &mut BlockCtx) {
                let idx = full_warp_idx(|l| l);
                ctx.warp_atomic_add(self.acc, &idx, &[1.0; 32]);
            }
            fn block_traffic(&self, _: Dim3, sink: &mut TrafficSink) {
                sink.global_atomic(self.acc, &full_warp_idx(|l| l));
            }
        }
        run_functional(&mem, &AtomicK { acc }, 0);
        assert_eq!(mem.download(acc), vec![10.0; 32]);
    }
}
