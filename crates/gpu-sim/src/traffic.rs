//! The traffic sink: warp-level accesses → transactions → counters.
//!
//! A [`TrafficSink`] is handed to a kernel (either directly through
//! [`crate::kernel::Kernel::block_traffic`], or indirectly by the
//! functional engine's [`crate::exec::BlockCtx`]). Every warp-level
//! event is expanded by the appropriate hardware model:
//!
//! * global accesses → [`crate::coalesce`] → 32B sectors → the L2
//!   [`crate::cache::Cache`];
//! * shared accesses → [`crate::smem`] bank-conflict analysis;
//! * compute events → instruction/FLOP counters.
//!
//! Vector accesses (`float4`) are a single instruction whose words are
//! serviced in `vlen` word-phases (shared memory) or as 16-byte lane
//! footprints (global memory), matching Maxwell LDS.128 / LDG.128.

use crate::buffer::{BufId, GlobalMem};
use crate::cache::Cache;
use crate::coalesce;
use crate::profiler::Counters;
use crate::smem;
use crate::trace::{AccessDir, TraceSink};

/// Lane activity + word index for one warp access: `idx[lane]` is the
/// element index accessed by the lane, or `None` if inactive.
pub type WarpIdx = [Option<usize>; 32];

/// Which event classes a [`TrafficSink`] records.
///
/// Kernels whose per-block compute/shared-memory behaviour is
/// identical across blocks (every kernel in this workspace) can be
/// profiled cheaply: one block is replayed in [`SinkMode::LocalOnly`]
/// and its counters scaled by the grid size, then every block's
/// *global* accesses — the only block-dependent part — are replayed in
/// [`SinkMode::GlobalOnly`] through the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SinkMode {
    /// Record everything.
    #[default]
    Full,
    /// Record only global-memory events (and drive the L2).
    GlobalOnly,
    /// Record only compute and shared-memory events (L2 untouched).
    LocalOnly,
}

/// One L2 sector transaction captured by a recording sink: the sector
/// address, the buffer it belongs to (so block-class memoization can
/// translate the stream per buffer) and the direction. An atomic
/// records its read-modify-write as a read event followed by a write
/// event, preserving the in-order L2 interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Event {
    /// Sector byte address.
    pub addr: u64,
    /// Buffer the sector belongs to.
    pub buf: BufId,
    /// True for a write, false for a read.
    pub write: bool,
}

/// Where a sink's L2 sector transactions go: straight into the live
/// cache model, or into an in-order event log for deferred
/// (set-sharded) simulation.
enum L2Backend<'a> {
    Live(&'a mut Cache),
    Record(Vec<L2Event>),
}

impl L2Backend<'_> {
    #[inline]
    fn read(&mut self, buf: BufId, addr: u64) {
        match self {
            L2Backend::Live(c) => {
                c.read(addr);
            }
            L2Backend::Record(log) => log.push(L2Event {
                addr,
                buf,
                write: false,
            }),
        }
    }

    #[inline]
    fn write(&mut self, buf: BufId, addr: u64) {
        match self {
            L2Backend::Live(c) => {
                c.write(addr);
            }
            L2Backend::Record(log) => log.push(L2Event {
                addr,
                buf,
                write: true,
            }),
        }
    }
}

/// Sink translating warp-level events into counters (see module docs).
pub struct TrafficSink<'a> {
    /// Accumulated counters (public so the device can harvest them).
    pub counters: Counters,
    mem: &'a GlobalMem,
    l2: L2Backend<'a>,
    /// Per-SM L1s (present only when the device caches global loads in
    /// L1, §II-C). Indexed by the round-robin CTA→SM assignment.
    l1s: Option<&'a mut [Cache]>,
    current_sm: usize,
    sector_bytes: u32,
    num_banks: u32,
    mode: SinkMode,
    /// Optional access-trace recorder (see [`crate::trace`]). Trace
    /// events are forwarded regardless of [`SinkMode`] so analyses see
    /// the complete access history.
    trace: Option<&'a mut TraceSink>,
}

impl<'a> TrafficSink<'a> {
    /// Creates a sink bound to device memory and the L2 model.
    #[must_use]
    pub fn new(mem: &'a GlobalMem, l2: &'a mut Cache, sector_bytes: u32, num_banks: u32) -> Self {
        Self {
            counters: Counters::default(),
            mem,
            l2: L2Backend::Live(l2),
            l1s: None,
            current_sm: 0,
            sector_bytes,
            num_banks,
            mode: SinkMode::Full,
            trace: None,
        }
    }

    /// Creates a **recording** sink: counters accumulate exactly as in
    /// a live sink, but L2 sector transactions are appended to an
    /// in-order [`L2Event`] log (drained with
    /// [`TrafficSink::take_recorded`]) instead of driving a cache.
    /// L1s, when attached, still filter loads live — only the sectors
    /// that would reach L2 are logged.
    #[must_use]
    pub fn new_recording(mem: &'a GlobalMem, sector_bytes: u32, num_banks: u32) -> Self {
        Self {
            counters: Counters::default(),
            mem,
            l2: L2Backend::Record(Vec::new()),
            l1s: None,
            current_sm: 0,
            sector_bytes,
            num_banks,
            mode: SinkMode::Full,
            trace: None,
        }
    }

    /// Drains the recorded L2 event log (recording sinks only; a live
    /// sink returns an empty vector).
    pub fn take_recorded(&mut self) -> Vec<L2Event> {
        match &mut self.l2 {
            L2Backend::Live(_) => Vec::new(),
            L2Backend::Record(log) => std::mem::take(log),
        }
    }

    /// Attaches per-SM L1 caches (global loads become L1-cached).
    pub fn set_l1s(&mut self, l1s: &'a mut [Cache]) {
        self.l1s = Some(l1s);
    }

    /// Attaches a trace recorder; every subsequent warp event is also
    /// forwarded to it (independent of the [`SinkMode`]).
    pub fn set_trace(&mut self, trace: &'a mut TraceSink) {
        self.trace = Some(trace);
    }

    /// Announces the start of a block: the round-robin CTA scheduler
    /// pins it to an SM, selecting which L1 its loads see.
    pub fn begin_block(&mut self, linear_block_idx: u64) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.begin_block(linear_block_idx);
        }
        if let Some(l1s) = &self.l1s {
            self.current_sm = (linear_block_idx % l1s.len() as u64) as usize;
        }
    }

    /// Announces the warp issuing subsequent events. Only meaningful
    /// for tracing; counters are warp-agnostic, so this never changes
    /// profiled numbers.
    pub fn begin_warp(&mut self, warp: u32) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.begin_warp(warp);
        }
    }

    /// Switches the recording mode.
    pub fn set_mode(&mut self, mode: SinkMode) {
        self.mode = mode;
    }

    /// Current recording mode.
    #[must_use]
    pub fn mode(&self) -> SinkMode {
        self.mode
    }

    #[inline]
    fn record_global(&self) -> bool {
        self.mode != SinkMode::LocalOnly
    }

    #[inline]
    fn record_local(&self) -> bool {
        self.mode != SinkMode::GlobalOnly
    }

    fn active(idx: &WarpIdx) -> u64 {
        idx.iter().filter(|l| l.is_some()).count() as u64
    }

    fn lane_byte_addrs(&self, buf: BufId, idx: &WarpIdx) -> [Option<u64>; 32] {
        std::array::from_fn(|l| idx[l].map(|i| self.mem.addr_of(buf, i)))
    }

    /// Warp global load of `vlen` consecutive words per lane
    /// (`vlen`=1: LDG.32, 4: LDG.128). One instruction; sectors are
    /// deduplicated then serviced by the L2.
    pub fn global_read(&mut self, buf: BufId, idx: &WarpIdx, vlen: u32) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.global(buf, idx, vlen, AccessDir::Read);
        }
        if !self.record_global() {
            return;
        }
        debug_assert!(matches!(vlen, 1 | 2 | 4));
        self.counters.global_load_insts += 1;
        self.counters.thread_insts += Self::active(idx);
        let addrs = self.lane_byte_addrs(buf, idx);
        let mut buf_sec = [0u64; coalesce::MAX_SECTORS_PER_WARP * 2];
        let sectors = coalesce::warp_sectors(&addrs, vlen * 4, self.sector_bytes, &mut buf_sec);
        if let Some(l1s) = self.l1s.as_deref_mut() {
            // Loads are filtered by the block's per-SM L1; only misses
            // travel to L2.
            let l1 = &mut l1s[self.current_sm];
            self.counters.l1_read_sectors += sectors.len() as u64;
            for &s in sectors {
                if l1.read(s) == crate::cache::Access::Hit {
                    self.counters.l1_read_hits += 1;
                } else {
                    self.counters.l2_read_sectors += 1;
                    self.l2.read(buf, s);
                }
            }
        } else {
            self.counters.l2_read_sectors += sectors.len() as u64;
            for &s in sectors {
                self.l2.read(buf, s);
            }
        }
    }

    /// Warp global store of `vlen` consecutive words per lane.
    pub fn global_write(&mut self, buf: BufId, idx: &WarpIdx, vlen: u32) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.global(buf, idx, vlen, AccessDir::Write);
        }
        if !self.record_global() {
            return;
        }
        debug_assert!(matches!(vlen, 1 | 2 | 4));
        self.counters.global_store_insts += 1;
        self.counters.thread_insts += Self::active(idx);
        let addrs = self.lane_byte_addrs(buf, idx);
        let mut buf_sec = [0u64; coalesce::MAX_SECTORS_PER_WARP * 2];
        let sectors = coalesce::warp_sectors(&addrs, vlen * 4, self.sector_bytes, &mut buf_sec);
        self.counters.l2_write_sectors += sectors.len() as u64;
        for &s in sectors {
            // Global stores are write-through/no-allocate with respect
            // to L1: invalidate any stale copy, then write to L2.
            if let Some(l1s) = self.l1s.as_deref_mut() {
                l1s[self.current_sm].invalidate_addr(s);
            }
            self.l2.write(buf, s);
        }
    }

    /// Warp global atomic (`atomicAdd` on one word per lane). Atomics
    /// are resolved by the L2 atomic unit on Maxwell: each touched
    /// sector performs a read-modify-write in L2.
    pub fn global_atomic(&mut self, buf: BufId, idx: &WarpIdx) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.global(buf, idx, 1, AccessDir::Atomic);
        }
        if !self.record_global() {
            return;
        }
        self.counters.atomic_insts += 1;
        self.counters.thread_insts += Self::active(idx);
        let addrs = self.lane_byte_addrs(buf, idx);
        let mut buf_sec = [0u64; coalesce::MAX_SECTORS_PER_WARP * 2];
        let sectors = coalesce::warp_sectors(&addrs, 4, self.sector_bytes, &mut buf_sec);
        self.counters.atomic_sectors += sectors.len() as u64;
        for &s in sectors {
            // Atomics resolve in L2 and must not leave stale L1 copies.
            if let Some(l1s) = self.l1s.as_deref_mut() {
                l1s[self.current_sm].invalidate_addr(s);
            }
            self.l2.read(buf, s); // fetch for the RMW
            self.l2.write(buf, s); // modified result stays dirty in L2
        }
        // The adds themselves are FLOPs performed by the L2 ROP units.
        self.counters.flops += Self::active(idx);
    }

    /// Warp shared load: lane `l` reads `vlen` consecutive words
    /// starting at word index `word[l]`. One instruction, `vlen`
    /// word-phases of bank-conflict analysis.
    pub fn shared_read(&mut self, word: &[Option<u32>; 32], vlen: u32) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.shared(word, vlen, AccessDir::Read);
        }
        if !self.record_local() {
            return;
        }
        self.counters.smem.load_instructions += 1;
        self.counters.thread_insts += word.iter().filter(|l| l.is_some()).count() as u64;
        for j in 0..vlen {
            let phase: [Option<u32>; 32] = std::array::from_fn(|l| word[l].map(|w| w + j));
            self.counters.smem.load_transactions +=
                smem::warp_transactions(&phase, self.num_banks) as u64;
        }
    }

    /// Warp shared store (see [`TrafficSink::shared_read`]).
    pub fn shared_write(&mut self, word: &[Option<u32>; 32], vlen: u32) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.shared(word, vlen, AccessDir::Write);
        }
        if !self.record_local() {
            return;
        }
        self.counters.smem.store_instructions += 1;
        self.counters.thread_insts += word.iter().filter(|l| l.is_some()).count() as u64;
        for j in 0..vlen {
            let phase: [Option<u32>; 32] = std::array::from_fn(|l| word[l].map(|w| w + j));
            self.counters.smem.store_transactions +=
                smem::warp_transactions(&phase, self.num_banks) as u64;
        }
    }

    /// `n` full-warp FFMA instructions (2 FLOPs per lane).
    pub fn ffma(&mut self, n: u64) {
        if !self.record_local() {
            return;
        }
        self.counters.ffma_insts += n;
        self.counters.thread_insts += 32 * n;
        self.counters.flops += 64 * n;
    }

    /// `n` full-warp FADD/FMUL instructions (1 FLOP per lane).
    pub fn falu(&mut self, n: u64) {
        if !self.record_local() {
            return;
        }
        self.counters.falu_insts += n;
        self.counters.thread_insts += 32 * n;
        self.counters.flops += 32 * n;
    }

    /// `n` full-warp integer/addressing/control instructions.
    pub fn alu(&mut self, n: u64) {
        if !self.record_local() {
            return;
        }
        self.counters.alu_insts += n;
        self.counters.thread_insts += 32 * n;
    }

    /// `n` full-warp special-function instructions (MUFU.EX2 …,
    /// 1 special FLOP per lane).
    pub fn sfu(&mut self, n: u64) {
        if !self.record_local() {
            return;
        }
        self.counters.sfu_insts += n;
        self.counters.thread_insts += 32 * n;
        self.counters.flops += 32 * n;
    }

    /// One `__syncthreads()` executed by `warps` warps of the block.
    pub fn syncthreads(&mut self, warps: u64) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.barrier(warps);
        }
        if !self.record_local() {
            return;
        }
        self.counters.sync_insts += warps;
        self.counters.thread_insts += 32 * warps;
    }
}

/// Helper to build a fully-active warp index from a lane mapping.
#[must_use]
pub fn full_warp_idx(f: impl Fn(usize) -> usize) -> WarpIdx {
    std::array::from_fn(|l| Some(f(l)))
}

/// Helper to build a fully-active shared-word index from a lane mapping.
#[must_use]
pub fn full_warp_words(f: impl Fn(usize) -> u32) -> [Option<u32>; 32] {
    std::array::from_fn(|l| Some(f(l)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (GlobalMem, Cache) {
        let mem = GlobalMem::new();
        let l2 = Cache::new(64 * 1024, 16, 32);
        (mem, l2)
    }

    #[test]
    fn coalesced_read_counts_four_sectors() {
        let (mut mem, mut l2) = fixture();
        let buf = mem.alloc(1024);
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        sink.global_read(buf, &full_warp_idx(|l| l), 1);
        assert_eq!(sink.counters.global_load_insts, 1);
        assert_eq!(sink.counters.l2_read_sectors, 4);
        assert_eq!(sink.counters.thread_insts, 32);
        assert_eq!(l2.stats().read_misses, 4);
    }

    #[test]
    fn second_read_hits_l2() {
        let (mut mem, mut l2) = fixture();
        let buf = mem.alloc(1024);
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        sink.global_read(buf, &full_warp_idx(|l| l), 1);
        sink.global_read(buf, &full_warp_idx(|l| l), 1);
        assert_eq!(l2.stats().read_hits, 4);
        assert_eq!(l2.stats().read_misses, 4);
    }

    #[test]
    fn float4_read_is_one_inst_sixteen_sectors() {
        let (mut mem, mut l2) = fixture();
        let buf = mem.alloc(1024);
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        sink.global_read(buf, &full_warp_idx(|l| l * 4), 4);
        assert_eq!(sink.counters.global_load_insts, 1);
        assert_eq!(sink.counters.l2_read_sectors, 16);
    }

    #[test]
    fn write_traffic_counts() {
        let (mut mem, mut l2) = fixture();
        let buf = mem.alloc(1024);
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        sink.global_write(buf, &full_warp_idx(|l| l), 1);
        assert_eq!(sink.counters.l2_write_sectors, 4);
        assert_eq!(l2.stats().write_misses, 4);
        assert_eq!(l2.flush_dirty(), 4);
    }

    #[test]
    fn atomics_do_rmw_in_l2() {
        let (mut mem, mut l2) = fixture();
        let buf = mem.alloc(64);
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        sink.global_atomic(buf, &full_warp_idx(|l| l));
        assert_eq!(sink.counters.atomic_insts, 1);
        assert_eq!(sink.counters.atomic_sectors, 4);
        assert_eq!(sink.counters.flops, 32);
        assert_eq!(l2.stats().read_misses, 4);
        assert_eq!(l2.stats().write_hits, 4);
    }

    #[test]
    fn shared_vector_read_has_vlen_phases() {
        let (mem, mut l2) = fixture();
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        // Conflict-free base: lane l -> word 4l; each phase unit-offset.
        sink.shared_read(&full_warp_words(|l| 4 * l as u32), 4);
        assert_eq!(sink.counters.smem.load_instructions, 1);
        // Phase j: addresses 4l + j -> 4-way conflict per phase? No:
        // words 4l+j for fixed j hit banks (4l+j) % 32 -> 8 distinct
        // banks, 4 words each -> 4 transactions per phase, 16 total.
        assert_eq!(sink.counters.smem.load_transactions, 16);
    }

    #[test]
    fn compute_counters() {
        let (mem, mut l2) = fixture();
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        sink.ffma(10);
        sink.falu(2);
        sink.sfu(1);
        sink.alu(5);
        sink.syncthreads(8);
        let c = &sink.counters;
        assert_eq!(c.flops, 640 + 64 + 32);
        assert_eq!(c.warp_insts(), 10 + 2 + 1 + 5 + 8);
        assert_eq!(c.thread_insts, 32 * 26);
    }

    #[test]
    fn recording_sink_matches_live_counters_and_replays_identically() {
        let (mut mem, mut l2) = fixture();
        let buf = mem.alloc(1024);
        let live_counters = {
            let mut live = TrafficSink::new(&mem, &mut l2, 32, 32);
            live.global_read(buf, &full_warp_idx(|l| l), 1);
            live.global_write(buf, &full_warp_idx(|l| l + 32), 1);
            live.global_atomic(buf, &full_warp_idx(|l| l));
            live.counters
        };
        let mut rec = TrafficSink::new_recording(&mem, 32, 32);
        rec.global_read(buf, &full_warp_idx(|l| l), 1);
        rec.global_write(buf, &full_warp_idx(|l| l + 32), 1);
        rec.global_atomic(buf, &full_warp_idx(|l| l));
        assert_eq!(rec.counters, live_counters);
        let events = rec.take_recorded();
        // 4 read sectors, 4 write sectors, 4 atomic sectors × RMW pair.
        assert_eq!(events.len(), 4 + 4 + 8);
        // Replaying the log in order against a fresh cache reproduces
        // the live cache's statistics exactly.
        let mut fresh = Cache::new(64 * 1024, 16, 32);
        for e in &events {
            if e.write {
                fresh.write(e.addr);
            } else {
                fresh.read(e.addr);
            }
        }
        assert_eq!(fresh.stats(), l2.stats());
        assert!(rec.take_recorded().is_empty(), "log drains once");
    }

    #[test]
    fn partially_active_warp_counts_active_lanes() {
        let (mut mem, mut l2) = fixture();
        let buf = mem.alloc(64);
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        let idx: WarpIdx = std::array::from_fn(|l| if l < 8 { Some(l) } else { None });
        sink.global_read(buf, &idx, 1);
        assert_eq!(sink.counters.thread_insts, 8);
        assert_eq!(sink.counters.l2_read_sectors, 1);
    }
}
