//! # ks-gpu-sim — Maxwell-class GPGPU simulator
//!
//! The hardware substrate for the kernel-summation reproduction. The
//! paper ran on an NVIDIA GTX970 (Maxwell, CC 5.2) and its results are
//! functions of that machine's memory system: shared-memory bank
//! conflicts, global-access coalescing, L2 hit rates, DRAM transaction
//! counts, occupancy, and an analytical execution-time model. This
//! crate reproduces each of those mechanisms:
//!
//! * [`config`] — device description (Table I of the paper).
//! * [`dim`] — grids, blocks, threads, warps.
//! * [`occupancy`](crate::occupancy()) — the CUDA occupancy
//!   calculator.
//! * [`smem`] — 32-bank shared memory with broadcast-aware conflict
//!   analysis.
//! * [`coalesce`] — global-access → 32-byte-sector transaction model.
//! * [`cache`] — set-associative write-back L2 model.
//! * [`buffer`] — device global memory (flat address space, f32 cells).
//! * [`kernel`] — the [`kernel::Kernel`] trait: every GPU kernel
//!   provides a *functional* block executor (numerics) and a *traffic*
//!   generator (pure access pattern, usable at paper-scale sizes
//!   without materialising data).
//! * [`traffic`] — the sink that turns warp-level accesses into
//!   transaction counts through the coalescer, bank model and L2.
//! * [`trace`] — warp-level access recording for the `ks-analyze`
//!   static checks (races, bank conflicts, barrier divergence).
//! * [`exec`] — functional block-synchronous execution engine.
//! * [`fault`] — deterministic, seeded soft-error injection (SMEM /
//!   register / DRAM bit flips, SM loss, watchdog kills).
//! * [`replay`] — deterministic parallel traffic replay: sharded
//!   counting, set-sharded L2 simulation and block-class memoization,
//!   bit-identical to the serial walk ([`replay::ReplayStrategy`]).
//! * [`device`] — [`device::GpuDevice`]: allocation, launch, profiling.
//! * [`profiler`] — nvprof-like counters ([`profiler::Counters`],
//!   [`profiler::KernelProfile`]).
//! * [`timing`] — analytical roofline-with-latency timing model with a
//!   CUDA-C-vs-vendor penalty model (paper §V-A).
//!
//! The simulator is calibrated against the GTX970 datasheet, not
//! against the paper's outputs; see `DESIGN.md` §4.
//!
//! ```
//! use ks_gpu_sim::{occupancy, DeviceConfig, KernelResources};
//!
//! // The paper's §III-A occupancy argument, reproduced:
//! let dev = DeviceConfig::gtx970();
//! let occ = occupancy(&dev, &KernelResources {
//!     threads_per_block: 256,   // 16×16 threads
//!     regs_per_thread: 128,     // 64 accumulators + operands
//!     smem_bytes_per_block: 16 * 1024, // double-buffered tiles
//! });
//! assert_eq!(occ.blocks_per_sm, 2);
//! ```

#![warn(missing_docs)]
// Warp-granular models index explicit lane loops on purpose: the code
// mirrors per-lane hardware behaviour.
#![allow(clippy::needless_range_loop)]

pub mod access;
pub mod buffer;
pub mod cache;
pub mod coalesce;
pub mod config;
pub mod device;
pub mod dim;
pub mod exec;
pub mod fault;
pub mod kernel;
pub mod occupancy;
pub mod profiler;
pub mod replay;
pub mod report;
pub mod smem;
pub mod timing;
pub mod trace;
pub mod traffic;

pub use access::{AccessSpec, BarrierSpec, GlobalPattern, LoopDim, SharedPattern};
pub use buffer::{BufId, GlobalMem};
pub use config::{DeviceConfig, Interconnect};
pub use device::GpuDevice;
pub use dim::{Dim3, LaunchConfig};
pub use exec::BlockCtx;
pub use fault::{
    DevicePhase, FaultCounters, FaultSpec, LifecycleSpec, LifecycleState, LinkDraw, LinkFaultSpec,
    LinkFaultState,
};
pub use kernel::{
    AnalysisBudget, BlockClass, BufferUse, ExecModel, Kernel, KernelResources, LaunchError,
    TimingHints, VecWidth,
};
pub use occupancy::{occupancy, Occupancy, OccupancyLimiter};
pub use profiler::{Counters, KernelProfile, PipelineProfile, TransferProfile};
pub use replay::ReplayStrategy;
pub use timing::{estimate_transfer, estimate_transfer_faulted, KernelTiming, TimingParams};
pub use trace::{AccessDir, BlockTrace, TraceSink};
pub use traffic::{L2Event, TrafficSink};
