//! Shared-memory bank-conflict model.
//!
//! Maxwell shared memory is organised as 32 banks of 4-byte words
//! (Table I). A warp's shared-memory instruction is serviced in one
//! transaction unless two or more lanes touch *different words that
//! map to the same bank*, in which case the instruction replays once
//! per extra conflicting word (paper §II-C). Lanes reading the *same*
//! word are satisfied by the broadcast network and never conflict —
//! including multi-casts to any subset of lanes (§III-B).
//!
//! Addresses here are **word indices** into the block's shared-memory
//! array (`byte address / 4`), which matches how the kernels in
//! `ks-gpu-kernels` address their `f32` shared arrays.

/// Number of transactions (1 = conflict-free, `n` = `n−1` replays)
/// needed to service one warp-wide shared-memory access.
///
/// `addrs[lane]` is the word index accessed by `lane`, or `None` if the
/// lane is inactive. An all-inactive warp costs zero transactions.
#[must_use]
pub fn warp_transactions(addrs: &[Option<u32>; 32], num_banks: u32) -> u32 {
    // For each bank, count the number of *distinct* words accessed.
    // The transaction count is the maximum over banks (banks are
    // serviced in parallel; replays re-issue the whole warp).
    let mut worst = 0u32;
    let mut seen: [heapless_set::WordSet; 32] = Default::default();
    // Validated in release builds too: `num_banks = 0` would divide by
    // zero below, and `num_banks > 32` would index past the 32-slot
    // per-bank sets.
    assert!(
        (1..=32).contains(&num_banks),
        "num_banks must be in 1..=32, got {num_banks}"
    );
    for addr in addrs.iter().flatten() {
        let bank = (addr % num_banks) as usize;
        if seen[bank].insert(*addr) {
            let n = seen[bank].len();
            worst = worst.max(n);
        }
    }
    worst
}

/// Degree of the worst bank conflict (0 = conflict-free or inactive).
#[must_use]
pub fn conflict_degree(addrs: &[Option<u32>; 32], num_banks: u32) -> u32 {
    warp_transactions(addrs, num_banks).saturating_sub(1)
}

/// Flips bit `bit & 31` of the IEEE-754 bit pattern of `v` — the
/// primitive single-event upset applied by the fault model
/// ([`crate::fault`]) to shared-memory words, accumulator registers
/// and DRAM cells.
#[must_use]
pub fn flip_bit(v: f32, bit: u8) -> f32 {
    f32::from_bits(v.to_bits() ^ (1u32 << (u32::from(bit) & 31)))
}

/// Tiny fixed-capacity set used by the conflict model: a warp has at
/// most 32 lanes, so each bank sees at most 32 distinct words.
mod heapless_set {
    /// Set of up to 32 `u32` values with linear-scan insert.
    #[derive(Default, Clone, Copy)]
    pub struct WordSet {
        items: [u32; 32],
        len: u8,
    }

    impl WordSet {
        /// Inserts `v`; returns `true` if it was not already present.
        pub fn insert(&mut self, v: u32) -> bool {
            for i in 0..self.len as usize {
                if self.items[i] == v {
                    return false;
                }
            }
            self.items[self.len as usize] = v;
            self.len += 1;
            true
        }

        /// Number of distinct values inserted.
        pub fn len(&self) -> u32 {
            self.len as u32
        }
    }
}

/// Aggregate shared-memory statistics for a kernel.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SmemStats {
    /// Warp-level shared load instructions issued.
    pub load_instructions: u64,
    /// Transactions needed for those loads (≥ instructions).
    pub load_transactions: u64,
    /// Warp-level shared store instructions issued.
    pub store_instructions: u64,
    /// Transactions needed for those stores.
    pub store_transactions: u64,
}

impl SmemStats {
    /// Replay overhead: `transactions / instructions` (1.0 = conflict-free).
    #[must_use]
    pub fn replay_factor(&self) -> f64 {
        let insts = self.load_instructions + self.store_instructions;
        if insts == 0 {
            return 1.0;
        }
        (self.load_transactions + self.store_transactions) as f64 / insts as f64
    }

    /// Accumulates another statistics block.
    pub fn merge(&mut self, other: &SmemStats) {
        self.load_instructions += other.load_instructions;
        self.load_transactions += other.load_transactions;
        self.store_instructions += other.store_instructions;
        self.store_transactions += other.store_transactions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_warp(f: impl Fn(u32) -> u32) -> [Option<u32>; 32] {
        std::array::from_fn(|lane| Some(f(lane as u32)))
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        let a = full_warp(|l| l);
        assert_eq!(warp_transactions(&a, 32), 1);
    }

    #[test]
    fn broadcast_same_word_is_one_transaction() {
        // §III-B: "if all 32 threads access the same four bytes in a
        // single bank, all requests can be serviced in a single cycle".
        let a = full_warp(|_| 7);
        assert_eq!(warp_transactions(&a, 32), 1);
    }

    #[test]
    fn multicast_subsets_are_one_transaction() {
        // Eight threads per value, four distinct words in four banks.
        let a = full_warp(|l| l / 8);
        assert_eq!(warp_transactions(&a, 32), 1);
    }

    #[test]
    fn stride_two_gives_two_way_conflict() {
        let a = full_warp(|l| l * 2);
        assert_eq!(warp_transactions(&a, 32), 2);
        assert_eq!(conflict_degree(&a, 32), 1);
    }

    #[test]
    fn stride_32_gives_32_way_conflict() {
        // The classic worst case: a column of a 32-wide row-major tile.
        let a = full_warp(|l| l * 32);
        assert_eq!(warp_transactions(&a, 32), 32);
    }

    #[test]
    fn stride_33_is_conflict_free() {
        // Padding trick: leading dimension 33 spreads a column over all banks.
        let a = full_warp(|l| l * 33);
        assert_eq!(warp_transactions(&a, 32), 1);
    }

    #[test]
    fn same_bank_distinct_words_conflict_even_with_broadcast_mix() {
        // Lanes 0..16 read word 0, lanes 16..32 read word 32 (same bank 0).
        let a = full_warp(|l| if l < 16 { 0 } else { 32 });
        assert_eq!(warp_transactions(&a, 32), 2);
    }

    #[test]
    fn inactive_lanes_do_not_count() {
        let mut a = [None; 32];
        a[3] = Some(64);
        a[9] = Some(96); // same bank (0) as 64, distinct word
        assert_eq!(warp_transactions(&a, 32), 2);
        let empty = [None; 32];
        assert_eq!(warp_transactions(&empty, 32), 0);
    }

    #[test]
    fn matches_brute_force_on_pseudorandom_patterns() {
        // Brute-force oracle: simulate replays directly.
        fn oracle(addrs: &[Option<u32>; 32], banks: u32) -> u32 {
            let mut pending: Vec<u32> = addrs.iter().flatten().copied().collect();
            let mut txns = 0;
            while !pending.is_empty() {
                txns += 1;
                // One transaction services, per bank, all lanes that
                // agree on a single word; pick the first word per bank.
                let mut chosen: [Option<u32>; 32] = [None; 32];
                for &w in &pending {
                    let b = (w % banks) as usize;
                    if chosen[b].is_none() {
                        chosen[b] = Some(w);
                    }
                }
                pending.retain(|&w| chosen[(w % banks) as usize] != Some(w));
            }
            txns
        }
        let mut state = 0x1234_5678_u64;
        for trial in 0..200 {
            let a: [Option<u32>; 32] = std::array::from_fn(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 60 == 0 {
                    None
                } else {
                    Some(((state >> 33) % 256) as u32)
                }
            });
            assert_eq!(
                warp_transactions(&a, 32),
                oracle(&a, 32),
                "trial {trial}: {a:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "num_banks must be in 1..=32")]
    fn zero_banks_is_rejected_in_release() {
        let a = full_warp(|l| l);
        let _ = warp_transactions(&a, 0);
    }

    #[test]
    #[should_panic(expected = "num_banks must be in 1..=32")]
    fn more_than_32_banks_is_rejected_in_release() {
        let a = full_warp(|l| l);
        let _ = warp_transactions(&a, 33);
    }

    #[test]
    fn smem_stats_replay_factor() {
        let s = SmemStats {
            load_instructions: 10,
            load_transactions: 25,
            store_instructions: 10,
            store_transactions: 15,
        };
        assert!((s.replay_factor() - 2.0).abs() < 1e-12);
        let mut t = SmemStats::default();
        assert_eq!(t.replay_factor(), 1.0);
        t.merge(&s);
        assert_eq!(t, s);
    }
}
