//! Device configuration — Table I of the paper plus the datasheet
//! parameters the timing and energy models need.

use serde::{Deserialize, Serialize};

use crate::fault::{FaultSpec, LinkFaultSpec};

/// Static description of the simulated GPU.
///
/// Defaults come from [`DeviceConfig::gtx970`], the machine the paper
/// evaluated on (NVIDIA GTX970, Maxwell GM204, compute capability 5.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors ("Number of Multiprocessors", Table I).
    pub num_sms: u32,
    /// Maximum threads per block (Table I).
    pub max_threads_per_block: u32,
    /// Warp size (Table I).
    pub warp_size: u32,
    /// Maximum resident threads per SM (Table I).
    pub max_threads_per_sm: u32,
    /// 32-bit registers per SM (Table I: 64K).
    pub regs_per_sm: u32,
    /// Maximum registers per thread (Table I: 255).
    pub max_regs_per_thread: u32,
    /// Register-file allocation granularity in registers (CC 5.2: 256,
    /// allocated per warp).
    pub reg_alloc_granularity: u32,
    /// Shared memory per SM in bytes (Table I: 96KB).
    pub smem_per_sm: u32,
    /// Maximum shared memory per block in bytes (CC 5.2: 48KB).
    pub max_smem_per_block: u32,
    /// Shared-memory allocation granularity in bytes (CC 5.2: 256).
    pub smem_alloc_granularity: u32,
    /// Shared memory banks (Table I: 32).
    pub smem_banks: u32,
    /// Bank width in bytes (Table I: 4).
    pub smem_bank_bytes: u32,
    /// Warp schedulers per SM (Table I: 4).
    pub warp_schedulers: u32,
    /// Maximum resident blocks per SM (CC 5.2: 32).
    pub max_blocks_per_sm: u32,
    /// CUDA cores (SP FMA lanes) per SM (GM204: 128).
    pub cuda_cores_per_sm: u32,
    /// Special-function units per SM (GM204: 32).
    pub sfu_per_sm: u32,
    /// Unified L2 size in bytes (Table I: 1.75MB).
    pub l2_bytes: u32,
    /// L2 associativity (modelled; 16-way).
    pub l2_assoc: u32,
    /// L2/DRAM sector (minimum transaction) size in bytes: 32.
    pub sector_bytes: u32,
    /// Core clock in GHz (GTX970 boost ≈ 1.178 GHz; base 1.05).
    pub core_clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s (GTX970: 196 GB/s usable —
    /// 224 GB/s nominal less the slow 0.5 GB partition).
    pub dram_bandwidth_gbps: f64,
    /// L2 bandwidth in bytes per core clock (GM204 ≈ 512 B/clk).
    pub l2_bytes_per_clk: f64,
    /// DRAM (L2-miss) latency in core clocks (Maxwell ≈ 368).
    pub dram_latency_clk: f64,
    /// L2-hit latency in core clocks (Maxwell ≈ 194).
    pub l2_latency_clk: f64,
    /// Kernel launch overhead in microseconds (driver + dispatch).
    pub launch_overhead_us: f64,
    /// Cache global loads in the per-SM unified L1/texture cache.
    /// Maxwell's default is **off** (§II-C: "the unified L1 and
    /// texture unit of the Maxwell architecture does not actually
    /// cache global loads"); the `-Xptxas -dlcm=ca` compiler flag the
    /// paper mentions turns it on.
    pub l1_cache_global_loads: bool,
    /// Per-SM L1 capacity available to global loads in bytes
    /// (GM204 unified L1/tex: 24KB usable per SM quadrant pair).
    pub l1_bytes: u32,
    /// L1 associativity (modelled).
    pub l1_assoc: u32,
    /// Soft-error fault injection, or `None` (the default) for a
    /// fault-free device. See [`crate::fault`].
    pub fault: Option<FaultSpec>,
}

impl DeviceConfig {
    /// The paper's test machine: NVIDIA GTX970 (Table I, CC 5.2).
    #[must_use]
    pub fn gtx970() -> Self {
        Self {
            name: "NVIDIA GTX970 (Maxwell GM204, CC 5.2)".to_string(),
            num_sms: 13,
            max_threads_per_block: 1024,
            warp_size: 32,
            max_threads_per_sm: 2048,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            reg_alloc_granularity: 256,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            smem_alloc_granularity: 256,
            smem_banks: 32,
            smem_bank_bytes: 4,
            warp_schedulers: 4,
            max_blocks_per_sm: 32,
            cuda_cores_per_sm: 128,
            sfu_per_sm: 32,
            l2_bytes: 1792 * 1024,
            l2_assoc: 16,
            sector_bytes: 32,
            core_clock_ghz: 1.178,
            dram_bandwidth_gbps: 196.0,
            l2_bytes_per_clk: 512.0,
            dram_latency_clk: 368.0,
            l2_latency_clk: 194.0,
            launch_overhead_us: 2.0,
            l1_cache_global_loads: false,
            l1_bytes: 24 * 1024,
            l1_assoc: 8,
            fault: None,
        }
    }

    /// The GTX970's full-die sibling (GM204, 16 SMs, 2MB L2,
    /// 224 GB/s): used by the device-generality study to check the
    /// paper's conclusions aren't GTX970-specific.
    #[must_use]
    pub fn gtx980() -> Self {
        Self {
            name: "NVIDIA GTX980 (Maxwell GM204, CC 5.2)".to_string(),
            num_sms: 16,
            l2_bytes: 2048 * 1024,
            core_clock_ghz: 1.216,
            dram_bandwidth_gbps: 224.0,
            ..Self::gtx970()
        }
    }

    /// Peak single-precision throughput in GFLOP/s
    /// (`cores × SMs × 2 flops/FMA × clock`).
    #[must_use]
    pub fn peak_sp_gflops(&self) -> f64 {
        self.cuda_cores_per_sm as f64 * self.num_sms as f64 * 2.0 * self.core_clock_ghz
    }

    /// Peak FFMA warp instructions per clock per SM
    /// (`cores / warp_size`).
    #[must_use]
    pub fn ffma_warps_per_clk_per_sm(&self) -> f64 {
        self.cuda_cores_per_sm as f64 / self.warp_size as f64
    }

    /// Peak SFU warp instructions per clock per SM.
    #[must_use]
    pub fn sfu_warps_per_clk_per_sm(&self) -> f64 {
        self.sfu_per_sm as f64 / self.warp_size as f64
    }

    /// DRAM bandwidth in bytes per core clock (whole device).
    #[must_use]
    pub fn dram_bytes_per_clk(&self) -> f64 {
        self.dram_bandwidth_gbps / self.core_clock_ghz
    }

    /// Maximum resident warps per SM.
    #[must_use]
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Core clock in Hz.
    #[must_use]
    pub fn clock_hz(&self) -> f64 {
        self.core_clock_ghz * 1e9
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::gtx970()
    }
}

/// Host↔device interconnect description: a latency+bandwidth ("alpha
/// beta") cost model for staging shards onto a device in a multi-GPU
/// pool.
///
/// Kept separate from [`DeviceConfig`] on purpose: the interconnect is
/// a property of the *slot* a device sits in (PCIe lane allocation,
/// NVLink bridge), not of the die, and `DeviceConfig`'s serialized
/// schema stays untouched for existing golden documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    /// Human-readable link name.
    pub name: String,
    /// Sustained host↔device bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Fixed per-transfer latency in microseconds (DMA setup, driver).
    pub latency_us: f64,
    /// Link-fault injection (per-transfer corruption/timeout), or
    /// `None` (the default constructors) for a fault-free link. See
    /// [`crate::fault::LinkFaultSpec`].
    pub fault: Option<LinkFaultSpec>,
}

// Hand-written serde, same contract as the profiler schemas: `fault`
// is omitted when `None` and defaulted when absent, so fault-free
// links serialize byte-identically to the pre-link-fault schema and
// old golden documents still deserialize.
impl Serialize for Interconnect {
    fn to_value(&self) -> serde::value::Value {
        let mut obj: Vec<(String, serde::value::Value)> = vec![
            ("name".to_string(), self.name.to_value()),
            ("bandwidth_gbps".to_string(), self.bandwidth_gbps.to_value()),
            ("latency_us".to_string(), self.latency_us.to_value()),
        ];
        if let Some(f) = &self.fault {
            obj.push(("fault".to_string(), f.to_value()));
        }
        serde::value::Value::Object(obj)
    }
}

impl Deserialize for Interconnect {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        Ok(Self {
            name: serde::de::field(v, "name")?,
            bandwidth_gbps: serde::de::field(v, "bandwidth_gbps")?,
            latency_us: serde::de::field(v, "latency_us")?,
            fault: match v.get("fault") {
                Some(f) => Some(LinkFaultSpec::from_value(f).map_err(|e| e.context("fault"))?),
                None => None,
            },
        })
    }
}

impl Interconnect {
    /// PCIe 3.0 x16: ~12 GB/s sustained (of 15.75 GB/s raw), ~5 µs
    /// per-transfer setup — the link a GTX970-class card sits on.
    #[must_use]
    pub fn pcie3_x16() -> Self {
        Self {
            name: "PCIe 3.0 x16".to_string(),
            bandwidth_gbps: 12.0,
            latency_us: 5.0,
            fault: None,
        }
    }

    /// First-generation NVLink-class link: ~45 GB/s sustained, ~2 µs
    /// setup. Used by pool experiments as the "fast fabric" contrast.
    #[must_use]
    pub fn nvlink() -> Self {
        Self {
            name: "NVLink".to_string(),
            bandwidth_gbps: 45.0,
            latency_us: 2.0,
            fault: None,
        }
    }

    /// Time in seconds to move `bytes` over this link:
    /// `latency + bytes / bandwidth`. A zero-byte transfer costs
    /// nothing (no DMA is issued).
    #[must_use]
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_us * 1e-6 + bytes as f64 / (self.bandwidth_gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx970_matches_table_1() {
        let d = DeviceConfig::gtx970();
        assert_eq!(d.num_sms, 13);
        assert_eq!(d.max_threads_per_block, 1024);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.max_threads_per_sm, 2048);
        assert_eq!(d.regs_per_sm, 64 * 1024);
        assert_eq!(d.max_regs_per_thread, 255);
        assert_eq!(d.smem_per_sm, 96 * 1024);
        assert_eq!(d.smem_banks, 32);
        assert_eq!(d.smem_bank_bytes, 4);
        assert_eq!(d.warp_schedulers, 4);
        assert_eq!(d.l2_bytes, 1792 * 1024); // 1.75 MB
    }

    #[test]
    fn peak_flops_is_about_3_9_tflops() {
        // 13 SMs × 128 cores × 2 × 1.178 GHz ≈ 3920 GFLOP/s.
        let g = DeviceConfig::gtx970().peak_sp_gflops();
        assert!((3800.0..4050.0).contains(&g), "peak {g}");
    }

    #[test]
    fn derived_rates() {
        let d = DeviceConfig::gtx970();
        assert_eq!(d.ffma_warps_per_clk_per_sm(), 4.0);
        assert_eq!(d.sfu_warps_per_clk_per_sm(), 1.0);
        assert_eq!(d.max_warps_per_sm(), 64);
        assert!(d.dram_bytes_per_clk() > 100.0 && d.dram_bytes_per_clk() < 250.0);
    }

    #[test]
    fn clone_and_default_agree() {
        let d = DeviceConfig::default();
        assert_eq!(d, DeviceConfig::gtx970());
        assert_eq!(d, d.clone());
    }

    #[test]
    fn interconnect_alpha_beta_cost() {
        let ic = Interconnect::pcie3_x16();
        // Zero bytes: no DMA, no latency.
        assert_eq!(ic.transfer_time_s(0), 0.0);
        // 12 GB over a 12 GB/s link ≈ 1 s plus 5 µs setup.
        let t = ic.transfer_time_s(12_000_000_000);
        assert!((t - 1.0).abs() < 1e-4, "{t}");
        // Latency dominates tiny transfers.
        let tiny = ic.transfer_time_s(4);
        assert!(tiny > 4.9e-6 && tiny < 6e-6, "{tiny}");
        // NVLink beats PCIe on every non-empty transfer.
        let nv = Interconnect::nvlink();
        assert!(nv.transfer_time_s(1 << 20) < ic.transfer_time_s(1 << 20));
    }

    #[test]
    fn interconnect_round_trips_through_serde() {
        let ic = Interconnect::nvlink();
        let back = Interconnect::from_value(&ic.to_value()).unwrap();
        assert_eq!(ic, back);
    }

    #[test]
    fn fault_free_interconnect_serializes_without_fault_key() {
        use serde::value::Value;
        let ic = Interconnect::pcie3_x16();
        let Value::Object(fields) = ic.to_value() else {
            panic!("interconnect must serialize to an object");
        };
        assert!(
            fields.iter().all(|(k, _)| k != "fault"),
            "fault-free links must omit the fault key for golden stability"
        );
        // A faulted link round-trips its spec.
        let mut faulted = Interconnect::nvlink();
        faulted.fault = Some(LinkFaultSpec::parse("seed=3,corrupt=0.1").unwrap());
        let back = Interconnect::from_value(&faulted.to_value()).unwrap();
        assert_eq!(faulted, back);
    }
}
