//! Global-memory coalescing model.
//!
//! On Maxwell a warp's global load/store is broken into 32-byte
//! **sectors** at the L2 (the minimum L2/DRAM transaction size). A
//! fully coalesced 4-byte-per-lane access touches 4 sectors; a
//! degenerate scattered access touches up to 32. `float4` (16-byte)
//! vector accesses touch the same bytes with a quarter of the
//! instructions — which is why the paper's kernels use `float4`
//! loads wherever possible (§III-B).

/// Maximum sectors a single warp instruction can touch
/// (32 lanes × 16B vector / 32B sector = 16 … but scattered 4B lanes
/// can hit 32 distinct sectors).
pub const MAX_SECTORS_PER_WARP: usize = 32;

/// Computes the distinct 32-byte sectors touched by one warp-wide
/// global access. `byte_addrs[lane]` is the base byte address accessed
/// by the lane (each lane reads `access_bytes` contiguous bytes), or
/// `None` for inactive lanes.
///
/// Returns the sector base addresses (deduplicated, in first-touch
/// order) in `out`; the returned slice length is the transaction count.
///
/// # Panics
/// Panics if `access_bytes` is 0 or not a power of two ≤ 16.
pub fn warp_sectors<'a>(
    byte_addrs: &[Option<u64>; 32],
    access_bytes: u32,
    sector_bytes: u32,
    out: &'a mut [u64; MAX_SECTORS_PER_WARP * 2],
) -> &'a [u64] {
    assert!(
        access_bytes.is_power_of_two() && access_bytes <= 16 && access_bytes > 0,
        "access size must be 1/2/4/8/16 bytes, got {access_bytes}"
    );
    let mut n = 0usize;
    // Lane address patterns are overwhelmingly monotone (unit stride,
    // fixed stride, or broadcast). While the inserted sectors remain
    // ascending, a base above the last insert is certainly new and a
    // base equal to it is a repeat — both O(1). Only genuinely
    // irregular patterns fall back to the full dedup scan.
    let mut ascending = true;
    for addr in byte_addrs.iter().flatten() {
        let first = addr / sector_bytes as u64;
        let last = (addr + access_bytes as u64 - 1) / sector_bytes as u64;
        for s in first..=last {
            let base = s * sector_bytes as u64;
            if n == 0 {
                out[0] = base;
                n = 1;
            } else if base == out[n - 1] {
                // repeat of the previous sector
            } else if ascending && base > out[n - 1] {
                out[n] = base;
                n += 1;
            } else if !out[..n].contains(&base) {
                out[n] = base;
                n += 1;
                ascending = false;
            }
        }
    }
    &out[..n]
}

/// Number of 32-byte-sector transactions for a warp access (see
/// [`warp_sectors`]).
#[must_use]
pub fn warp_transaction_count(
    byte_addrs: &[Option<u64>; 32],
    access_bytes: u32,
    sector_bytes: u32,
) -> u32 {
    let mut buf = [0u64; MAX_SECTORS_PER_WARP * 2];
    warp_sectors(byte_addrs, access_bytes, sector_bytes, &mut buf).len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(f: impl Fn(u64) -> u64) -> [Option<u64>; 32] {
        std::array::from_fn(|l| Some(f(l as u64)))
    }

    #[test]
    fn coalesced_float_load_is_four_sectors() {
        // 32 lanes × 4B contiguous = 128B = 4 sectors.
        let a = full(|l| 0x1000 + l * 4);
        assert_eq!(warp_transaction_count(&a, 4, 32), 4);
    }

    #[test]
    fn coalesced_float4_load_is_sixteen_sectors() {
        // 32 lanes × 16B contiguous = 512B = 16 sectors.
        let a = full(|l| 0x2000 + l * 16);
        assert_eq!(warp_transaction_count(&a, 16, 32), 16);
    }

    #[test]
    fn strided_access_wastes_sectors() {
        // Stride 32B with 4B loads: every lane its own sector.
        let a = full(|l| l * 32);
        assert_eq!(warp_transaction_count(&a, 4, 32), 32);
    }

    #[test]
    fn broadcast_address_is_one_sector() {
        let a = full(|_| 0x40);
        assert_eq!(warp_transaction_count(&a, 4, 32), 1);
    }

    #[test]
    fn misaligned_access_straddles_sectors() {
        // A 16B access at offset 24 crosses a 32B boundary.
        let mut a = [None; 32];
        a[0] = Some(24);
        assert_eq!(warp_transaction_count(&a, 16, 32), 2);
    }

    #[test]
    fn inactive_warp_is_zero() {
        let a = [None; 32];
        assert_eq!(warp_transaction_count(&a, 4, 32), 0);
    }

    #[test]
    fn sector_bases_are_aligned_and_unique() {
        let a = full(|l| 100 + l * 8);
        let mut buf = [0u64; MAX_SECTORS_PER_WARP * 2];
        let sectors = warp_sectors(&a, 8, 32, &mut buf);
        for s in sectors {
            assert_eq!(s % 32, 0);
        }
        let mut sorted = sectors.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), sectors.len());
    }

    #[test]
    #[should_panic(expected = "access size")]
    fn rejects_bad_access_size() {
        let a = [None; 32];
        let _ = warp_transaction_count(&a, 3, 32);
    }

    #[test]
    fn unaligned_warp_adds_one_transaction() {
        // 128B contiguous starting at +4: spans 5 sectors.
        let a = full(|l| 4 + l * 4);
        assert_eq!(warp_transaction_count(&a, 4, 32), 5);
    }
}
