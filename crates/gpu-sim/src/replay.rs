//! Deterministic parallel traffic replay (DESIGN.md §10).
//!
//! [`crate::device::GpuDevice::launch`] profiles a kernel by replaying
//! every block's global-memory traffic through the shared L2. Serially
//! that is a single in-order walk of the grid. This module parallelises
//! the walk while keeping every counter **bit-identical** to the serial
//! replay:
//!
//! 1. **Sharded counting.** Per-block [`Counters`] are produced
//!    independently (blocks share no counter state) and merged in grid
//!    order, so the totals are independent of worker count and
//!    schedule.
//! 2. **Set-sharded L2 simulation.** Each block's L2 sector stream is
//!    *recorded* ([`TrafficSink::new_recording`]) instead of applied;
//!    the streams are then concatenated in grid order and partitioned
//!    by set index ([`Cache::shards`]). Cache sets share no state, and
//!    each shard sees its sets' accesses in the original global order,
//!    so the per-set LRU decisions — and therefore hits, misses and
//!    write-backs — are provably those of the serial replay.
//! 3. **Block-class memoization.** Tiled kernels declare a
//!    [`crate::kernel::BlockClass`]: blocks with the same key issue
//!    identical warp streams modulo a constant per-buffer address
//!    offset. Each class replays one representative; members reuse its
//!    counters and replay the representative's stream with a
//!    per-buffer byte translation applied on the fly — no member
//!    stream is ever materialised. A translation whose offset is not a
//!    whole number of sectors falls back to direct replay, and every
//!    class spot-checks one non-representative member against a direct
//!    recording before being trusted.
//!
//! When the device models per-SM L1s, blocks are partitioned by the
//! round-robin CTA→SM assignment instead: each SM's blocks replay in
//! grid order against that SM's private L1 (exactly the serial
//! interleaving an L1 observes), and the surviving L2 events are
//! reassembled in global block order before the set-sharded pass.
//!
//! Streams are processed in bounded *waves* so paper-scale grids never
//! hold the whole launch's event log in memory; the wave length adapts
//! to the observed events-per-block.

use std::collections::HashMap;

use rayon::prelude::*;

use crate::buffer::{BufId, GlobalMem};
use crate::cache::{Cache, CacheStats};
use crate::config::DeviceConfig;
use crate::dim::Dim3;
use crate::kernel::Kernel;
use crate::profiler::Counters;
use crate::traffic::{L2Event, SinkMode, TrafficSink};

/// How a launch replays traffic through the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStrategy {
    /// Block-by-block through the live L2 — the reference semantics.
    Serial,
    /// Record / set-shard / merge (see module docs). Produces counters
    /// and cache state bit-identical to [`ReplayStrategy::Serial`] for
    /// every thread count.
    Parallel {
        /// Replay translation-equivalent blocks once per class.
        memoize: bool,
        /// Worker / L2-shard count; `None` uses the ambient rayon
        /// thread count.
        threads: Option<usize>,
    },
}

impl Default for ReplayStrategy {
    fn default() -> Self {
        ReplayStrategy::Parallel {
            memoize: true,
            threads: None,
        }
    }
}

/// First-wave length before the events-per-block estimate exists.
const FIRST_WAVE_BLOCKS: usize = 64;
/// Wave length bounds once adaptive.
const MIN_WAVE_BLOCKS: usize = 64;
const MAX_WAVE_BLOCKS: usize = 4096;
/// Target in-memory L2 events per wave (~4M events ≈ 100 MB of logs).
const EVENT_BUDGET: usize = 4 << 20;

/// Replays `kernel`'s traffic per `strategy`, returning the merged
/// counters. The L2 (and any L1s) are updated exactly as a serial
/// in-order replay would.
pub(crate) fn replay(
    mem: &GlobalMem,
    l2: &mut Cache,
    l1s: &mut [Cache],
    cfg: &DeviceConfig,
    kernel: &dyn Kernel,
    strategy: ReplayStrategy,
) -> Counters {
    match strategy {
        ReplayStrategy::Serial => replay_serial(mem, l2, l1s, cfg, kernel),
        ReplayStrategy::Parallel { memoize, threads } => {
            let threads = threads.unwrap_or_else(rayon::current_num_threads).max(1);
            replay_parallel(mem, l2, l1s, cfg, kernel, memoize, threads)
        }
    }
}

/// Merges per-block counters in grid order (the launch's canonical
/// reduction — also used by the counted functional path so both
/// engines share one merge semantics).
pub(crate) fn merge_grid_order(per_block: &[Counters]) -> Counters {
    let mut total = Counters::default();
    for c in per_block {
        total.merge(c);
    }
    total
}

/// The reference serial replay: one live sink, blocks in grid order.
fn replay_serial(
    mem: &GlobalMem,
    l2: &mut Cache,
    l1s: &mut [Cache],
    cfg: &DeviceConfig,
    kernel: &dyn Kernel,
) -> Counters {
    let mut sink = TrafficSink::new(mem, l2, cfg.sector_bytes, cfg.smem_banks);
    if !l1s.is_empty() {
        sink.set_l1s(l1s);
    }
    let lc = kernel.launch_config();
    let blocks = lc.total_blocks();
    if kernel.traffic_homogeneous() && blocks > 1 {
        // Fast path: one block's compute/shared counters × grid size;
        // global traffic replayed per block through the L2.
        sink.set_mode(SinkMode::LocalOnly);
        let first = lc.grid.iter_indices().next().expect("non-empty grid");
        kernel.block_traffic(first, &mut sink);
        let mut local = sink.counters;
        local.scale(blocks);
        sink.counters = Counters::default();
        sink.set_mode(SinkMode::GlobalOnly);
        for (i, b) in lc.grid.iter_indices().enumerate() {
            sink.begin_block(i as u64);
            kernel.block_traffic(b, &mut sink);
        }
        let mut c = sink.counters;
        c.merge(&local);
        c
    } else {
        for (i, b) in lc.grid.iter_indices().enumerate() {
            sink.begin_block(i as u64);
            kernel.block_traffic(b, &mut sink);
        }
        sink.counters
    }
}

fn replay_parallel(
    mem: &GlobalMem,
    l2: &mut Cache,
    l1s: &mut [Cache],
    cfg: &DeviceConfig,
    kernel: &dyn Kernel,
    memoize: bool,
    threads: usize,
) -> Counters {
    let lc = kernel.launch_config();
    let blocks: Vec<Dim3> = lc.grid.iter_indices().collect();
    if blocks.is_empty() {
        return Counters::default();
    }
    let homogeneous = kernel.traffic_homogeneous() && blocks.len() > 1;

    // Compute/shared-memory counters are block-invariant for
    // homogeneous kernels: one LocalOnly replay of the first block,
    // scaled — exactly the serial fast path.
    let mut merged = Counters::default();
    if homogeneous {
        let mut sink = TrafficSink::new_recording(mem, cfg.sector_bytes, cfg.smem_banks);
        sink.set_mode(SinkMode::LocalOnly);
        kernel.block_traffic(blocks[0], &mut sink);
        merged = sink.counters;
        merged.scale(blocks.len() as u64);
    }
    let mode = if homogeneous {
        SinkMode::GlobalOnly
    } else {
        SinkMode::Full
    };

    // Memoization needs homogeneous traffic (class members must agree
    // on compute/shared counters) and no L1s (an L1 filters the L2
    // stream through history that differs per member).
    let plan = if memoize && homogeneous && l1s.is_empty() {
        MemoPlan::build(mem, cfg, kernel, &blocks)
    } else {
        None
    };

    let mut wave_len = FIRST_WAVE_BLOCKS.min(blocks.len());
    let mut start = 0;
    while start < blocks.len() {
        let end = (start + wave_len).min(blocks.len());
        let wave = &blocks[start..end];
        let generated: Vec<(Counters, BlockStream)> = if l1s.is_empty() {
            generate_wave(mem, cfg, kernel, wave, start, mode, plan.as_ref())
        } else {
            generate_wave_l1(mem, cfg, kernel, l1s, wave, start, mode)
        };
        let events_total: usize = generated.iter().map(|(_, s)| s.len(plan.as_ref())).sum();
        simulate_wave(l2, &generated, plan.as_ref(), threads);
        for (c, _) in &generated {
            merged.merge(c);
        }
        start = end;
        let per_block = (events_total / wave.len()).max(1);
        wave_len = (EVENT_BUDGET / per_block).clamp(MIN_WAVE_BLOCKS, MAX_WAVE_BLOCKS);
    }
    merged
}

/// One block's contribution to a wave's L2 traffic.
enum BlockStream {
    /// A directly recorded event log.
    Direct(Vec<L2Event>),
    /// A memoized member: replay the class representative's log,
    /// shifting each event by its buffer's byte delta on the fly
    /// (empty deltas = the representative itself).
    Memo {
        /// Index into [`MemoPlan::classes`].
        class: usize,
        /// Per-buffer byte deltas (only buffers with non-zero shift).
        deltas: Deltas,
    },
}

impl BlockStream {
    /// Number of L2 events this stream will produce.
    fn len(&self, plan: Option<&MemoPlan>) -> usize {
        match self {
            BlockStream::Direct(ev) => ev.len(),
            BlockStream::Memo { class, .. } => plan.expect("memo stream implies a plan").classes
                [*class]
                .events
                .len(),
        }
    }
}

/// Records one block's traffic into an event log.
fn record_block(
    mem: &GlobalMem,
    cfg: &DeviceConfig,
    kernel: &dyn Kernel,
    block: Dim3,
    linear_idx: usize,
    mode: SinkMode,
) -> (Counters, Vec<L2Event>) {
    let mut sink = TrafficSink::new_recording(mem, cfg.sector_bytes, cfg.smem_banks);
    sink.set_mode(mode);
    sink.begin_block(linear_idx as u64);
    kernel.block_traffic(block, &mut sink);
    let events = sink.take_recorded();
    (sink.counters, events)
}

/// Produces `(counters, stream)` for every block of a wave, in wave
/// order, spending a real replay only on blocks the memo plan cannot
/// serve by translation.
fn generate_wave(
    mem: &GlobalMem,
    cfg: &DeviceConfig,
    kernel: &dyn Kernel,
    wave: &[Dim3],
    base: usize,
    mode: SinkMode,
    plan: Option<&MemoPlan>,
) -> Vec<(Counters, BlockStream)> {
    (0..wave.len())
        .into_par_iter()
        .map(|i| {
            let gi = base + i;
            if let Some(p) = plan {
                if let Some((ci, anchors)) = &p.assignment[gi] {
                    let cl = &p.classes[*ci];
                    if cl.valid {
                        let deltas = if gi == cl.rep_idx {
                            Some(Vec::new())
                        } else {
                            compute_deltas(&cl.rep_anchors, anchors, u64::from(cfg.sector_bytes))
                        };
                        if let Some(deltas) = deltas {
                            return (cl.counters, BlockStream::Memo { class: *ci, deltas });
                        }
                    }
                }
            }
            let (c, ev) = record_block(mem, cfg, kernel, wave[i], gi, mode);
            (c, BlockStream::Direct(ev))
        })
        .collect()
}

/// Wave generation when per-SM L1s are live. Blocks are partitioned by
/// the round-robin CTA→SM assignment (`linear_idx % num_sms` — the
/// same rule [`TrafficSink::begin_block`] applies serially); each SM
/// worker replays its blocks in grid order against its private L1, so
/// every L1 observes exactly the serial access interleaving. The
/// recorded L2 streams are then reassembled in global block order.
fn generate_wave_l1(
    mem: &GlobalMem,
    cfg: &DeviceConfig,
    kernel: &dyn Kernel,
    l1s: &mut [Cache],
    wave: &[Dim3],
    base: usize,
    mode: SinkMode,
) -> Vec<(Counters, BlockStream)> {
    let num_sms = l1s.len();
    let mut per_sm: Vec<Vec<usize>> = vec![Vec::new(); num_sms];
    for i in 0..wave.len() {
        per_sm[(base + i) % num_sms].push(i);
    }
    let items: Vec<(&mut Cache, Vec<usize>)> = l1s.iter_mut().zip(per_sm).collect();
    let results: Vec<Vec<(usize, Counters, Vec<L2Event>)>> = items
        .into_par_iter()
        .map(|(l1, idxs)| {
            let mut out = Vec::with_capacity(idxs.len());
            let mut sink = TrafficSink::new_recording(mem, cfg.sector_bytes, cfg.smem_banks);
            sink.set_mode(mode);
            // A single attached L1 ⇒ `begin_block` pins `current_sm`
            // to 0; the partition above already realised the CTA→SM
            // mapping.
            sink.set_l1s(std::slice::from_mut(l1));
            for i in idxs {
                sink.counters = Counters::default();
                sink.begin_block((base + i) as u64);
                kernel.block_traffic(wave[i], &mut sink);
                let ev = sink.take_recorded();
                out.push((i, sink.counters, ev));
            }
            out
        })
        .collect();
    let mut wave_out: Vec<Option<(Counters, Vec<L2Event>)>> =
        (0..wave.len()).map(|_| None).collect();
    for sm in results {
        for (i, c, ev) in sm {
            wave_out[i] = Some((c, ev));
        }
    }
    wave_out
        .into_iter()
        .map(|o| {
            let (c, ev) = o.expect("every wave block recorded");
            (c, BlockStream::Direct(ev))
        })
        .collect()
}

/// Iterates a wave's L2 events in global block order, expanding
/// memoized streams from their class representative with the byte
/// translation applied on the fly.
fn for_each_event(
    streams: &[(Counters, BlockStream)],
    plan: Option<&MemoPlan>,
    mut f: impl FnMut(u64, bool),
) {
    for (_, s) in streams {
        match s {
            BlockStream::Direct(ev) => {
                for e in ev {
                    f(e.addr, e.write);
                }
            }
            BlockStream::Memo { class, deltas } => {
                let cl = &plan.expect("memo stream implies a plan").classes[*class];
                if deltas.is_empty() {
                    for e in &cl.events {
                        f(e.addr, e.write);
                    }
                } else {
                    // Dense per-buffer table: O(1) lookup on the hot
                    // path (buffer ids are small dense indices).
                    let max = deltas.iter().map(|(b, _)| b.0).max().unwrap_or(0);
                    let mut table = vec![0i64; max + 1];
                    for (b, d) in deltas {
                        table[b.0] = *d;
                    }
                    for e in &cl.events {
                        let d = table.get(e.buf.0).copied().unwrap_or(0);
                        f(e.addr.wrapping_add_signed(d), e.write);
                    }
                }
            }
        }
    }
}

/// Applies a wave's block-ordered event streams to the L2 through
/// disjoint set-range shards. Events are first bucketed by owning
/// shard — one in-order pass, so each bucket keeps its sets' accesses
/// in the original global order — then all shards replay concurrently.
fn simulate_wave(
    l2: &mut Cache,
    streams: &[(Counters, BlockStream)],
    plan: Option<&MemoPlan>,
    threads: usize,
) {
    if threads <= 1 {
        for_each_event(streams, plan, |addr, write| {
            if write {
                l2.write(addr);
            } else {
                l2.read(addr);
            }
        });
        return;
    }
    let sets = l2.num_sets();
    let n = threads.clamp(1, sets);
    // Mirror the shard geometry of `Cache::shards`: contiguous ranges
    // of ceil(sets/n) sets.
    let per = sets.div_ceil(n);
    let n_buckets = sets.div_ceil(per);
    // Pack (sector addr, dir) into one word; sectors are ≥32B-aligned
    // so bit 0 is free.
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); n_buckets];
    for_each_event(streams, plan, |addr, write| {
        let b = l2.set_index(addr) / per;
        buckets[b].push((addr << 1) | u64::from(write));
    });
    let shards = l2.shards(n);
    debug_assert_eq!(shards.len(), n_buckets);
    let work: Vec<_> = shards.into_iter().zip(buckets).collect();
    let stats: Vec<CacheStats> = work
        .into_par_iter()
        .map(|(mut shard, bucket)| {
            for w in bucket {
                let addr = w >> 1;
                if w & 1 == 1 {
                    shard.write(addr);
                } else {
                    shard.read(addr);
                }
            }
            shard.stats()
        })
        .collect();
    for s in &stats {
        l2.absorb_stats(s);
    }
}

/// One translation class: the representative's recorded replay plus
/// the anchors needed to derive members from it.
struct MemoClass {
    /// Linear grid index of the representative block.
    rep_idx: usize,
    rep_anchors: Vec<(BufId, usize)>,
    /// The representative's global counters (shared by every member of
    /// a homogeneous kernel).
    counters: Counters,
    /// The representative's L2 sector stream.
    events: Vec<L2Event>,
    /// Cleared when the spot-check finds a member whose direct replay
    /// disagrees with translation; members then replay directly.
    valid: bool,
}

/// A block's per-buffer anchor addresses (element offsets).
type Anchors = Vec<(BufId, usize)>;

/// Memoized-replay plan over the whole grid.
struct MemoPlan {
    /// Per block: `(class, member anchors)`, or `None` for direct
    /// replay.
    assignment: Vec<Option<(usize, Anchors)>>,
    classes: Vec<MemoClass>,
}

impl MemoPlan {
    /// Groups blocks by class key in first-encounter grid order,
    /// records each representative, and spot-checks one
    /// non-representative member per class. Returns `None` when no
    /// block declares a class (plain replay is cheaper then).
    fn build(
        mem: &GlobalMem,
        cfg: &DeviceConfig,
        kernel: &dyn Kernel,
        blocks: &[Dim3],
    ) -> Option<MemoPlan> {
        let mut assignment = Vec::with_capacity(blocks.len());
        let mut classes: Vec<MemoClass> = Vec::new();
        let mut spot: Vec<Option<usize>> = Vec::new();
        let mut by_key: HashMap<u64, usize> = HashMap::new();
        for (gi, &b) in blocks.iter().enumerate() {
            let Some(bc) = kernel.block_class(b) else {
                assignment.push(None);
                continue;
            };
            let ci = *by_key.entry(bc.key).or_insert_with(|| {
                let (counters, events) =
                    record_block(mem, cfg, kernel, b, gi, SinkMode::GlobalOnly);
                classes.push(MemoClass {
                    rep_idx: gi,
                    rep_anchors: bc.anchors.clone(),
                    counters,
                    events,
                    valid: true,
                });
                spot.push(None);
                classes.len() - 1
            });
            let cl = &classes[ci];
            let compatible = bc.anchors.len() == cl.rep_anchors.len()
                && bc
                    .anchors
                    .iter()
                    .zip(&cl.rep_anchors)
                    .all(|(a, r)| a.0 == r.0);
            if compatible {
                if gi != cl.rep_idx && spot[ci].is_none() {
                    spot[ci] = Some(gi);
                }
                assignment.push(Some((ci, bc.anchors)));
            } else {
                assignment.push(None);
            }
        }
        if classes.is_empty() {
            return None;
        }
        // Spot-check: one non-representative member per class must
        // reproduce, by direct recording, both the translated stream
        // and the representative's counters. A failure demotes the
        // whole class to direct replay.
        for (ci, s) in spot.iter().enumerate() {
            let Some(gi) = *s else { continue };
            let cl = &classes[ci];
            let Some((_, anchors)) = &assignment[gi] else {
                continue;
            };
            let ok = match compute_deltas(&cl.rep_anchors, anchors, u64::from(cfg.sector_bytes)) {
                None => false,
                Some(deltas) => {
                    let (direct_c, direct_e) =
                        record_block(mem, cfg, kernel, blocks[gi], gi, SinkMode::GlobalOnly);
                    direct_c == cl.counters
                        && direct_e.len() == cl.events.len()
                        && direct_e.iter().zip(&cl.events).all(|(d, r)| {
                            d.buf == r.buf
                                && d.write == r.write
                                && d.addr == translated_addr(r, &deltas)
                        })
                }
            };
            if !ok {
                classes[ci].valid = false;
            }
        }
        Some(MemoPlan {
            assignment,
            classes,
        })
    }
}

/// Per-buffer byte deltas translating a representative's stream to a
/// member's (only buffers with a non-zero shift are listed).
type Deltas = Vec<(BufId, i64)>;

/// Computes the member's per-buffer byte deltas from the paired
/// anchors (anchors are element offsets; cells are 4 bytes). Returns
/// `None` — caller replays directly — when any delta is not a whole
/// number of sectors, since a sub-sector shift would change how lane
/// footprints coalesce.
fn compute_deltas(
    rep_anchors: &[(BufId, usize)],
    member_anchors: &[(BufId, usize)],
    sector_bytes: u64,
) -> Option<Deltas> {
    let mut deltas: Deltas = Vec::with_capacity(rep_anchors.len());
    for (r, m) in rep_anchors.iter().zip(member_anchors) {
        debug_assert_eq!(r.0, m.0, "anchor buffers compared positionally");
        let d = (m.1 as i64 - r.1 as i64) * 4;
        if d.rem_euclid(sector_bytes as i64) != 0 {
            return None;
        }
        if d != 0 {
            deltas.push((r.0, d));
        }
    }
    Some(deltas)
}

/// The member's address for one representative event.
#[inline]
fn translated_addr(e: &L2Event, deltas: &Deltas) -> u64 {
    let d = deltas
        .iter()
        .find(|(b, _)| *b == e.buf)
        .map_or(0, |(_, d)| *d);
    e.addr.wrapping_add_signed(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_strategy_is_memoized_parallel() {
        assert_eq!(
            ReplayStrategy::default(),
            ReplayStrategy::Parallel {
                memoize: true,
                threads: None
            }
        );
    }

    #[test]
    fn translate_shifts_only_anchored_buffer() {
        let mut mem = GlobalMem::new();
        let a = mem.alloc(1024);
        let b = mem.alloc(1024);
        let events = [
            L2Event {
                addr: mem.addr_of(a, 0),
                buf: a,
                write: false,
            },
            L2Event {
                addr: mem.addr_of(b, 8),
                buf: b,
                write: true,
            },
        ];
        // Member anchored 64 elements (256 bytes) further into `a`.
        let deltas = compute_deltas(&[(a, 0), (b, 8)], &[(a, 64), (b, 8)], 32).unwrap();
        assert_eq!(translated_addr(&events[0], &deltas), mem.addr_of(a, 64));
        assert_eq!(translated_addr(&events[1], &deltas), events[1].addr);
    }

    #[test]
    fn translate_rejects_subsector_shift() {
        let mut mem = GlobalMem::new();
        let a = mem.alloc(64);
        // 3 elements = 12 bytes: not a whole 32B sector.
        assert!(compute_deltas(&[(a, 0)], &[(a, 3)], 32).is_none());
        // 8 elements = 32 bytes: exactly one sector.
        assert!(compute_deltas(&[(a, 0)], &[(a, 8)], 32).is_some());
    }

    #[test]
    fn merge_grid_order_sums_counters() {
        let a = Counters {
            flops: 3,
            ..Default::default()
        };
        let b = Counters {
            flops: 4,
            ..Default::default()
        };
        let m = merge_grid_order(&[a, b]);
        assert_eq!(m.flops, 7);
    }
}
