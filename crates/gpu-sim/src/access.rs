//! Symbolic access-pattern IR for zero-execution ("static") analysis.
//!
//! A kernel can declare its memory behaviour as a set of *affine
//! warp-level patterns* via [`crate::kernel::Kernel::access_spec`].
//! Each pattern fixes the 32 per-lane base indices of one static warp
//! instruction and says how that base shifts with the block
//! coordinates and any surrounding loops with known trip counts:
//!
//! ```text
//! idx(lane) = lanes[lane] + bx·bx_step + by·by_step + Σ_j i_j·loops[j].step
//! ```
//!
//! Warps and fixed-trip phases are enumerated *concretely* when a
//! spec is built (kernels here know their warp count statically), so
//! only the grid dimensions and problem-size loops stay symbolic.
//! Shared-memory patterns carry no block terms at all — every shipped
//! kernel addresses shared memory identically in all blocks — just an
//! `issues` multiplier for how often the instruction repeats per
//! block. (Double-buffer parity shifts the tile base by multiples of
//! 1024 words; with 32 banks that is bank-invariant, so one canonical
//! pattern stands for both parities.)
//!
//! The IR deliberately models *memory and barrier* behaviour only:
//! arithmetic instruction counts remain the trace replay's job. A
//! pattern whose index is not affine in the symbols above (e.g. a
//! data-dependent or modular gather) sets [`GlobalPattern::indirect`];
//! the analyzer then downgrades the kernel to the dynamic
//! (trace-based) lint instead of guessing — it never silently passes.

use crate::buffer::BufId;
use crate::kernel::VecWidth;
use crate::trace::AccessDir;

/// One symbolic loop dimension surrounding an access: `trip`
/// iterations advancing the per-lane index by `step` words each.
///
/// A pure repetition (same addresses every iteration) is `step: 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopDim {
    /// Number of iterations (≥ 1).
    pub trip: u64,
    /// Index advance per iteration, in buffer words.
    pub step: i64,
}

/// Affine pattern of one static warp-level global-memory instruction.
#[derive(Debug, Clone)]
pub struct GlobalPattern {
    /// Buffer the instruction touches.
    pub buf: BufId,
    /// Human-readable operand label (matches `BufferUse::label`).
    pub label: &'static str,
    /// Read, write, or atomic read-modify-write.
    pub dir: AccessDir,
    /// Words accessed per lane. Atomics are always V1.
    pub vlen: VecWidth,
    /// Per-lane base index (words) at `bx = by = i_j = 0`; `None`
    /// lanes are predicated off.
    pub lanes: [Option<i64>; 32],
    /// Index shift per block-x increment, in words.
    pub bx_step: i64,
    /// Index shift per block-y increment, in words.
    pub by_step: i64,
    /// Surrounding loops with known trip counts.
    pub loops: Vec<LoopDim>,
    /// True when the real index is *not* affine in the declared
    /// symbols; the analyzer must not trust `lanes`/steps and falls
    /// back to the dynamic lint for this kernel.
    pub indirect: bool,
}

impl GlobalPattern {
    /// New pattern with no block or loop terms.
    #[must_use]
    pub fn new(
        buf: BufId,
        label: &'static str,
        dir: AccessDir,
        vlen: VecWidth,
        lanes: [Option<i64>; 32],
    ) -> Self {
        Self {
            buf,
            label,
            dir,
            vlen,
            lanes,
            bx_step: 0,
            by_step: 0,
            loops: Vec::new(),
            indirect: false,
        }
    }

    /// Sets the per-`bx` index shift.
    #[must_use]
    pub fn with_bx(mut self, step: i64) -> Self {
        self.bx_step = step;
        self
    }

    /// Sets the per-`by` index shift.
    #[must_use]
    pub fn with_by(mut self, step: i64) -> Self {
        self.by_step = step;
        self
    }

    /// Appends a surrounding loop dimension.
    ///
    /// # Panics
    /// Panics if `trip` is zero — a zero-trip loop means the access
    /// never issues and must simply be omitted from the spec.
    #[must_use]
    pub fn with_loop(mut self, trip: u64, step: i64) -> Self {
        assert!(trip > 0, "zero-trip loop on {}", self.label);
        self.loops.push(LoopDim { trip, step });
        self
    }

    /// Marks the pattern as non-affine (see [`Self::indirect`]).
    #[must_use]
    pub fn into_indirect(mut self) -> Self {
        self.indirect = true;
        self
    }

    /// Warp instructions this pattern issues per block (product of
    /// loop trips).
    #[must_use]
    pub fn issues_per_block(&self) -> u64 {
        self.loops.iter().map(|l| l.trip).product()
    }

    /// Warp instructions this pattern issues over the whole launch.
    #[must_use]
    pub fn issues_per_launch(&self, grid_x: u64, grid_y: u64) -> u64 {
        self.issues_per_block() * grid_x * grid_y
    }

    /// Inclusive range of the per-lane *base* index over every lane,
    /// block, and loop iteration — `None` when all lanes are
    /// predicated off. The last word touched is `max + vlen.words() - 1`.
    #[must_use]
    pub fn index_range(&self, grid_x: u64, grid_y: u64) -> Option<(i64, i64)> {
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for idx in self.lanes.iter().flatten() {
            lo = lo.min(*idx);
            hi = hi.max(*idx);
        }
        if lo > hi {
            return None;
        }
        let dims = [
            LoopDim {
                trip: grid_x,
                step: self.bx_step,
            },
            LoopDim {
                trip: grid_y,
                step: self.by_step,
            },
        ];
        for d in dims.iter().chain(self.loops.iter()) {
            let span = d.step * (d.trip.max(1) as i64 - 1);
            lo += span.min(0);
            hi += span.max(0);
        }
        Some((lo, hi))
    }
}

/// Pattern of one static warp-level shared-memory instruction.
///
/// Shared addressing in every shipped kernel is block-invariant, so
/// the pattern is just the 32 lane word addresses plus a repetition
/// count. Bank behaviour is shift-invariant modulo the bank count, so
/// patterns whose base toggles by a multiple of the bank count (e.g.
/// double-buffer parity, 1024-word tiles on 32 banks) collapse into
/// one canonical pattern with a larger `issues`.
#[derive(Debug, Clone)]
pub struct SharedPattern {
    /// Per-lane word address; `None` lanes are predicated off.
    pub lanes: [Option<u32>; 32],
    /// Words accessed per lane.
    pub vlen: VecWidth,
    /// Read or write.
    pub dir: AccessDir,
    /// Times this instruction issues per block.
    pub issues: u64,
}

impl SharedPattern {
    /// New single-issue pattern.
    #[must_use]
    pub fn new(lanes: [Option<u32>; 32], vlen: VecWidth, dir: AccessDir) -> Self {
        Self {
            lanes,
            vlen,
            dir,
            issues: 1,
        }
    }

    /// Sets the per-block issue count.
    #[must_use]
    pub fn times(mut self, issues: u64) -> Self {
        self.issues = issues;
        self
    }
}

/// Barrier behaviour of one block: `count` barriers, each executed by
/// all `warps` warps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierSpec {
    /// `__syncthreads()` executions per block.
    pub count: u64,
    /// Warps arriving at every barrier.
    pub warps: u64,
}

/// The full declared memory behaviour of a kernel launch.
#[derive(Debug, Clone, Default)]
pub struct AccessSpec {
    /// Global-memory patterns (one per static warp instruction,
    /// warps and fixed phases enumerated concretely).
    pub global: Vec<GlobalPattern>,
    /// Shared-memory patterns.
    pub shared: Vec<SharedPattern>,
    /// Barrier behaviour; `None` declares a barrier-free kernel.
    pub barriers: Option<BarrierSpec>,
}

impl AccessSpec {
    /// True when every global pattern is affine — the precondition
    /// for trusting any static verdict about this kernel.
    #[must_use]
    pub fn is_affine(&self) -> bool {
        !self.global.iter().any(|g| g.indirect)
    }
}

/// Builds a full-warp lane array from a per-lane index function.
#[must_use]
pub fn affine_lanes(f: impl Fn(usize) -> i64) -> [Option<i64>; 32] {
    std::array::from_fn(|l| Some(f(l)))
}

/// Builds a lane array with predication from a per-lane function.
#[must_use]
pub fn masked_lanes(f: impl Fn(usize) -> Option<i64>) -> [Option<i64>; 32] {
    std::array::from_fn(f)
}

/// Distribution of `i·step mod modulus` over `i ∈ 0..trip`, as a
/// count per residue class. This is the kernel of the static DRAM
/// sector prediction: sector footprints are invariant under shifts by
/// whole sectors, so a loop's contribution to a warp's footprint is
/// fully described by how its index lands in `Z/modulus`.
///
/// # Panics
/// Panics if `modulus` is zero.
#[must_use]
pub fn residue_histogram(trip: u64, step: i64, modulus: usize) -> Vec<u64> {
    assert!(modulus > 0, "modulus must be positive");
    let m = modulus as i64;
    let s = ((step % m) + m) % m; // canonical non-negative residue
    let mut hist = vec![0u64; modulus];
    // i·s mod m cycles with period m / gcd(s, m); each residue in the
    // cycle appears ⌊trip/period⌋ times, the first (trip mod period)
    // cycle entries once more.
    let period = {
        let mut a = s as u64;
        let mut b = modulus as u64;
        while a != 0 {
            let t = b % a;
            b = a;
            a = t;
        }
        modulus as u64 / b // m / gcd(s, m)
    };
    let (full, extra) = (trip / period, trip % period);
    for i in 0..period {
        let r = ((i as i64 * s) % m) as usize;
        hist[r] += full + u64::from(i < extra);
    }
    hist
}

/// Convolution of two residue histograms over `Z/modulus`: the
/// distribution of the *sum* of two independent index contributions.
#[must_use]
pub fn convolve_residues(a: &[u64], b: &[u64]) -> Vec<u64> {
    let m = a.len();
    assert_eq!(m, b.len(), "mismatched moduli");
    let mut out = vec![0u64; m];
    for (i, &ca) in a.iter().enumerate() {
        if ca == 0 {
            continue;
        }
        for (j, &cb) in b.iter().enumerate() {
            out[(i + j) % m] += ca * cb;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::GlobalMem;

    #[test]
    fn residue_histogram_unit_step() {
        assert_eq!(residue_histogram(8, 1, 8), vec![1; 8]);
        assert_eq!(residue_histogram(10, 1, 8), vec![2, 2, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn residue_histogram_stride_and_zero() {
        // step 4 on Z/8 alternates 0,4.
        assert_eq!(residue_histogram(5, 4, 8), vec![3, 0, 0, 0, 2, 0, 0, 0]);
        // step 0 concentrates at 0 (pure repetition).
        assert_eq!(residue_histogram(7, 0, 8), vec![7, 0, 0, 0, 0, 0, 0, 0]);
        // negative steps wrap.
        assert_eq!(residue_histogram(2, -1, 8), vec![1, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn convolution_counts_all_pairs() {
        let a = residue_histogram(3, 2, 8);
        let b = residue_histogram(5, 3, 8);
        let c = convolve_residues(&a, &b);
        assert_eq!(c.iter().sum::<u64>(), 15);
        // brute force
        let mut want = vec![0u64; 8];
        for i in 0..3i64 {
            for j in 0..5i64 {
                want[((i * 2 + j * 3) % 8) as usize] += 1;
            }
        }
        assert_eq!(c, want);
    }

    #[test]
    fn index_range_covers_lanes_blocks_and_loops() {
        let mut mem = GlobalMem::new();
        let buf = mem.upload(&[0.0f32; 4]);
        let p = GlobalPattern::new(
            buf,
            "t",
            AccessDir::Read,
            VecWidth::V1,
            affine_lanes(|l| l as i64),
        )
        .with_bx(128)
        .with_loop(4, -8);
        // grid 3×1: bx ∈ {0,1,2}, loop ∈ {0,-8,-16,-24}.
        assert_eq!(p.index_range(3, 1), Some((-24, 31 + 2 * 128)));
        assert_eq!(p.issues_per_block(), 4);
        assert_eq!(p.issues_per_launch(3, 1), 12);
    }

    #[test]
    fn masked_range_and_empty() {
        let mut mem = GlobalMem::new();
        let buf = mem.upload(&[0.0f32; 4]);
        let lane0 = GlobalPattern::new(
            buf,
            "t",
            AccessDir::Atomic,
            VecWidth::V1,
            masked_lanes(|l| (l == 0).then_some(7)),
        );
        assert_eq!(lane0.index_range(1, 1), Some((7, 7)));
        let none = GlobalPattern::new(
            buf,
            "t",
            AccessDir::Read,
            VecWidth::V1,
            masked_lanes(|_| None),
        );
        assert_eq!(none.index_range(4, 4), None);
    }
}
