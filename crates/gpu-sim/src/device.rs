//! The simulated GPU device: memory, L2 state, launches, profiles.
//!
//! [`GpuDevice`] ties the pieces together. A *launch* walks the grid
//! in CUDA block-enumeration order (x fastest — the CTA scheduler's
//! dispatch order), replays each block's traffic through the coalescer,
//! bank model and the persistent L2, then runs the timing model on the
//! harvested counters. Dirty L2 lines are flushed (and charged as DRAM
//! writes) at the kernel boundary, so every kernel's DRAM write count
//! reflects the data it actually produced.

use crate::buffer::{BufId, GlobalMem};
use crate::cache::Cache;
use crate::config::DeviceConfig;
use crate::exec;
use crate::fault::{FaultCounters, FaultState, LaunchFault, LaunchFaultPlan};
use crate::kernel::{validate_launch, Kernel, LaunchError};
use crate::occupancy::occupancy;
use crate::profiler::{KernelProfile, MemTraffic};
use crate::replay::{self, ReplayStrategy};
use crate::smem::flip_bit;
use crate::timing::{self, TimingParams};
use crate::traffic::TrafficSink;

/// A simulated GPU: configuration, global memory and L2 state.
pub struct GpuDevice {
    cfg: DeviceConfig,
    mem: GlobalMem,
    l2: Cache,
    /// Per-SM L1s (only when `cfg.l1_cache_global_loads`).
    l1s: Vec<Cache>,
    timing_params: TimingParams,
    replay: ReplayStrategy,
    /// Fault generator (only when `cfg.fault` is set).
    faults: Option<FaultState>,
    /// Applied injections since the last [`GpuDevice::take_fault_counters`].
    fault_counters: FaultCounters,
}

impl GpuDevice {
    /// Creates a device from a configuration.
    #[must_use]
    pub fn new(cfg: DeviceConfig) -> Self {
        let l2 = Cache::new(cfg.l2_bytes as u64, cfg.l2_assoc, cfg.sector_bytes);
        let l1s = if cfg.l1_cache_global_loads {
            (0..cfg.num_sms)
                .map(|_| Cache::new_hashed(cfg.l1_bytes as u64, cfg.l1_assoc, cfg.sector_bytes))
                .collect()
        } else {
            Vec::new()
        };
        let faults = cfg.fault.map(FaultState::new);
        Self {
            cfg,
            mem: GlobalMem::new(),
            l2,
            l1s,
            timing_params: TimingParams::default(),
            replay: ReplayStrategy::default(),
            faults,
            fault_counters: FaultCounters::default(),
        }
    }

    /// A GTX970 device (the paper's machine).
    #[must_use]
    pub fn gtx970() -> Self {
        Self::new(DeviceConfig::gtx970())
    }

    /// Device configuration.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Replaces the timing-model constants (ablation studies).
    pub fn set_timing_params(&mut self, p: TimingParams) {
        self.timing_params = p;
    }

    /// Current timing-model constants.
    #[must_use]
    pub fn timing_params(&self) -> &TimingParams {
        &self.timing_params
    }

    /// Selects how launches replay traffic (see
    /// [`ReplayStrategy`]). Every strategy produces bit-identical
    /// counters and cache state; only wall-clock differs.
    pub fn set_replay_strategy(&mut self, s: ReplayStrategy) {
        self.replay = s;
    }

    /// Current replay strategy.
    #[must_use]
    pub fn replay_strategy(&self) -> ReplayStrategy {
        self.replay
    }

    /// Read access to global memory.
    #[must_use]
    pub fn mem(&self) -> &GlobalMem {
        &self.mem
    }

    /// Allocates `len` zeroed `f32` cells.
    pub fn alloc(&mut self, len: usize) -> BufId {
        self.mem.alloc(len)
    }

    /// Reserves address space with no backing data (traffic-only
    /// profiling of paper-scale problems).
    pub fn alloc_virtual(&mut self, len: usize) -> BufId {
        self.mem.alloc_virtual(len)
    }

    /// Allocates and uploads host data.
    pub fn upload(&mut self, src: &[f32]) -> BufId {
        self.mem.upload(src)
    }

    /// Downloads a buffer to the host.
    #[must_use]
    pub fn download(&self, id: BufId) -> Vec<f32> {
        self.mem.download(id)
    }

    /// Zeroes a buffer (like `cudaMemset`).
    pub fn memset_zero(&self, id: BufId) {
        self.mem.fill(id, 0.0);
    }

    /// Invalidates L2 contents (cold-cache start) without touching
    /// statistics.
    pub fn invalidate_l2(&mut self) {
        self.l2.invalidate();
        for l1 in &mut self.l1s {
            l1.invalidate();
        }
    }

    /// Injected-fault counters accumulated since the last call,
    /// resetting them. Includes launch-level faults (which surface as
    /// [`LaunchError`]s and therefore never appear on a profile).
    pub fn take_fault_counters(&mut self) -> FaultCounters {
        std::mem::take(&mut self.fault_counters)
    }

    /// Draws the next launch's fault schedule, charging a launch-level
    /// fault as an error. `None` means the device is fault-free.
    fn draw_faults(&mut self, kernel: &dyn Kernel) -> Result<Option<LaunchFaultPlan>, LaunchError> {
        let Some(state) = self.faults.as_mut() else {
            return Ok(None);
        };
        let total_blocks = kernel.launch_config().total_blocks();
        let draw = state.next_draw(total_blocks, self.cfg.num_sms);
        if let Some(lf) = draw.launch_fault {
            self.fault_counters.launch_faults += 1;
            return Err(match lf {
                LaunchFault::SmLost { sm } => LaunchError::SmLost { sm },
                LaunchFault::Watchdog { limit_ms } => LaunchError::WatchdogTimeout { limit_ms },
            });
        }
        Ok(Some(draw.plan))
    }

    /// Applies the plan's DRAM word flips over the kernel's declared
    /// writable, materialised buffers (a kernel that declares no
    /// [`crate::kernel::BufferUse`] extents cannot be hit). Returns
    /// the number of flips applied.
    fn apply_dram_faults(&self, kernel: &dyn Kernel, plan: &LaunchFaultPlan) -> u64 {
        if plan.dram.is_empty() {
            return 0;
        }
        let targets: Vec<(BufId, u64)> = kernel
            .analysis_budget()
            .buffers
            .iter()
            .filter(|b| b.writes && !self.mem.is_virtual(b.buf))
            .map(|b| (b.buf, b.len.min(self.mem.len(b.buf)) as u64))
            .filter(|&(_, len)| len > 0)
            .collect();
        let total: u64 = targets.iter().map(|&(_, len)| len).sum();
        if total == 0 {
            return 0;
        }
        let mut applied = 0u64;
        for &(word_pick, bit) in &plan.dram {
            let mut idx = word_pick % total;
            for &(buf, len) in &targets {
                if idx < len {
                    let v = self.mem.load(buf, idx as usize);
                    self.mem.store(buf, idx as usize, flip_bit(v, bit));
                    applied += 1;
                    break;
                }
                idx -= len;
            }
        }
        applied
    }

    /// Profiles a kernel: replays its traffic (no numerics) through
    /// the memory system and runs the timing model.
    ///
    /// # Errors
    /// Returns a [`LaunchError`] if the launch violates device limits.
    pub fn launch(&mut self, kernel: &dyn Kernel) -> Result<KernelProfile, LaunchError> {
        validate_launch(&self.cfg, kernel)?;
        // Launch-level faults can kill a profiling launch too; the
        // bit-flip schedule is irrelevant here (replay touches no
        // functional data) but the draw still advances the epoch so
        // profiling and functional runs stay in lockstep.
        let _plan = self.draw_faults(kernel)?;
        let before = self.l2.stats();
        // L1s are not coherent across kernels: invalidate at launch.
        for l1 in &mut self.l1s {
            l1.invalidate();
        }
        let counters = replay::replay(
            &self.mem,
            &mut self.l2,
            &mut self.l1s,
            &self.cfg,
            kernel,
            self.replay,
        );
        self.l2.flush_dirty();
        let after = self.l2.stats();
        Ok(self.finish_profile(kernel, counters, before, after))
    }

    /// Runs a kernel functionally (parallel over blocks, no counters).
    ///
    /// # Errors
    /// Returns a [`LaunchError`] if the launch violates device limits.
    pub fn run(&mut self, kernel: &dyn Kernel) -> Result<(), LaunchError> {
        validate_launch(&self.cfg, kernel)?;
        let plan = self.draw_faults(kernel)?;
        let smem_words = kernel.resources().smem_bytes_per_block as usize / 4;
        match plan {
            None => exec::run_functional(&self.mem, kernel, smem_words),
            Some(plan) => {
                exec::run_functional_with_faults(&self.mem, kernel, smem_words, &plan);
                self.fault_counters.merge(&FaultCounters {
                    smem_flips: plan.applied_smem(),
                    reg_flips: plan.applied_reg(),
                    dram_flips: self.apply_dram_faults(kernel, &plan),
                    launch_faults: 0,
                });
            }
        }
        Ok(())
    }

    /// Runs a kernel functionally **and** profiles it — used to
    /// validate that `block_traffic` replays exactly what
    /// `execute_block` does.
    ///
    /// Functional counting always walks blocks **sequentially**
    /// regardless of the device's [`ReplayStrategy`]: the numerics
    /// mutate shared global memory, so blocks must observe each
    /// other's writes in launch order. The per-block counters are
    /// still harvested individually and folded through the same
    /// grid-order merge the traffic replay engine uses, so the totals
    /// agree with [`GpuDevice::launch`] by construction.
    ///
    /// # Errors
    /// Returns a [`LaunchError`] if the launch violates device limits.
    pub fn run_counted(&mut self, kernel: &dyn Kernel) -> Result<KernelProfile, LaunchError> {
        validate_launch(&self.cfg, kernel)?;
        let plan = self.draw_faults(kernel)?;
        let smem_words = kernel.resources().smem_bytes_per_block as usize / 4;
        let before = self.l2.stats();
        for l1 in &mut self.l1s {
            l1.invalidate();
        }
        let mut sink = TrafficSink::new(
            &self.mem,
            &mut self.l2,
            self.cfg.sector_bytes,
            self.cfg.smem_banks,
        );
        if !self.l1s.is_empty() {
            sink.set_l1s(&mut self.l1s);
        }
        let per_block = match plan.as_ref() {
            None => {
                exec::run_functional_counted_per_block(&self.mem, kernel, smem_words, &mut sink)
            }
            Some(plan) => exec::run_functional_counted_per_block_with_faults(
                &self.mem, kernel, smem_words, &mut sink, plan,
            ),
        };
        let counters = replay::merge_grid_order(&per_block);
        self.l2.flush_dirty();
        let after = self.l2.stats();
        let mut prof = self.finish_profile(kernel, counters, before, after);
        if let Some(plan) = plan {
            prof.faults = FaultCounters {
                smem_flips: plan.applied_smem(),
                reg_flips: plan.applied_reg(),
                dram_flips: self.apply_dram_faults(kernel, &plan),
                launch_faults: 0,
            };
            self.fault_counters.merge(&prof.faults);
        }
        Ok(prof)
    }

    fn finish_profile(
        &self,
        kernel: &dyn Kernel,
        counters: crate::profiler::Counters,
        before: crate::cache::CacheStats,
        after: crate::cache::CacheStats,
    ) -> KernelProfile {
        let mem = MemTraffic::from_delta(&before, &after);
        let res = kernel.resources();
        let occ = occupancy(&self.cfg, &res);
        let lc = kernel.launch_config();
        let hints = kernel.timing_hints();
        let timing = timing::estimate(
            &self.cfg,
            &self.timing_params,
            &hints,
            &counters,
            &mem,
            &occ,
            lc.total_blocks(),
        );
        KernelProfile {
            name: kernel.name(),
            launch: lc,
            resources: res,
            occupancy: occ,
            counters,
            mem,
            timing,
            faults: FaultCounters::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{Dim3, LaunchConfig};
    use crate::exec::BlockCtx;
    use crate::kernel::KernelResources;
    use crate::traffic::full_warp_idx;

    /// Streams `n` words: read x, write y, one warp per block.
    struct Streamer {
        x: BufId,
        y: BufId,
        n: usize,
    }

    impl Kernel for Streamer {
        fn name(&self) -> String {
            "streamer".into()
        }
        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::new_1d((self.n as u32).div_ceil(32)), 32u32)
        }
        fn resources(&self) -> KernelResources {
            KernelResources {
                threads_per_block: 32,
                regs_per_thread: 16,
                smem_bytes_per_block: 0,
            }
        }
        fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
            let base = block.x as usize * 32;
            let idx = full_warp_idx(|l| base + l);
            let v = ctx.warp_ld_global(self.x, &idx);
            ctx.warp_st_global(self.y, &idx, &v);
        }
        fn block_traffic(&self, block: Dim3, sink: &mut crate::traffic::TrafficSink) {
            let base = block.x as usize * 32;
            let idx = full_warp_idx(|l| base + l);
            sink.global_read(self.x, &idx, 1);
            sink.global_write(self.y, &idx, 1);
        }
    }

    #[test]
    fn launch_counts_cold_misses_and_writebacks() {
        let mut dev = GpuDevice::gtx970();
        let n = 32 * 1024;
        let x = dev.alloc(n);
        let y = dev.alloc(n);
        let p = dev.launch(&Streamer { x, y, n }).unwrap();
        // 4KB... n*4 bytes = 128KB each; sectors = n*4/32 = 4096.
        assert_eq!(p.mem.dram_reads(), 4096);
        assert_eq!(
            p.mem.dram_writes, 4096,
            "flush at kernel boundary charges the writes"
        );
        assert_eq!(p.counters.global_load_insts, 1024);
        assert!(p.timing.time_s > 0.0);
    }

    #[test]
    fn l2_persists_across_launches() {
        let mut dev = GpuDevice::gtx970();
        let n = 8 * 1024; // 32KB < L2
        let x = dev.alloc(n);
        let y = dev.alloc(n);
        let k = Streamer { x, y, n };
        let p1 = dev.launch(&k).unwrap();
        let p2 = dev.launch(&k).unwrap();
        assert!(
            p2.mem.dram_reads() < p1.mem.dram_reads() / 10,
            "second pass should hit residual L2 lines: {} vs {}",
            p2.mem.dram_reads(),
            p1.mem.dram_reads()
        );
    }

    #[test]
    fn invalidate_l2_restores_cold_behaviour() {
        let mut dev = GpuDevice::gtx970();
        let n = 8 * 1024;
        let x = dev.alloc(n);
        let y = dev.alloc(n);
        let k = Streamer { x, y, n };
        let p1 = dev.launch(&k).unwrap();
        dev.invalidate_l2();
        let p2 = dev.launch(&k).unwrap();
        assert_eq!(p1.mem.dram_reads(), p2.mem.dram_reads());
    }

    #[test]
    fn run_counted_agrees_with_launch_on_memory_counters() {
        let n = 4096;
        let mk = |dev: &mut GpuDevice| {
            let x = dev.upload(&vec![1.0; n]);
            let y = dev.alloc(n);
            Streamer { x, y, n }
        };
        let mut d1 = GpuDevice::gtx970();
        let k1 = mk(&mut d1);
        let p1 = d1.launch(&k1).unwrap();
        let mut d2 = GpuDevice::gtx970();
        let k2 = mk(&mut d2);
        let p2 = d2.run_counted(&k2).unwrap();
        assert_eq!(p1.counters, p2.counters);
        assert_eq!(p1.mem, p2.mem);
        // And the functional path actually moved the data.
        assert_eq!(d2.download(k2.y), vec![1.0; n]);
    }

    /// Homogeneous tiled kernel declaring a block class: every block
    /// reads/writes a 32-element tile at `block.x * stride`.
    struct Tiled {
        x: BufId,
        y: BufId,
        blocks: u32,
        /// Element stride between consecutive block tiles. 32 keeps
        /// translations sector-aligned; 3 forces the sub-sector
        /// fallback.
        stride: usize,
    }

    impl Kernel for Tiled {
        fn name(&self) -> String {
            "tiled".into()
        }
        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::new_1d(self.blocks), 32u32)
        }
        fn resources(&self) -> KernelResources {
            KernelResources {
                threads_per_block: 32,
                regs_per_thread: 16,
                smem_bytes_per_block: 0,
            }
        }
        fn traffic_homogeneous(&self) -> bool {
            true
        }
        fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
            let base = block.x as usize * self.stride;
            let idx = full_warp_idx(|l| base + l);
            let v = ctx.warp_ld_global(self.x, &idx);
            ctx.warp_st_global(self.y, &idx, &v);
        }
        fn block_traffic(&self, block: Dim3, sink: &mut crate::traffic::TrafficSink) {
            let base = block.x as usize * self.stride;
            let idx = full_warp_idx(|l| base + l);
            sink.global_read(self.x, &idx, 1);
            sink.ffma(1);
            sink.global_write(self.y, &idx, 1);
        }
        fn block_class(&self, block: Dim3) -> Option<crate::kernel::BlockClass> {
            let base = block.x as usize * self.stride;
            Some(crate::kernel::BlockClass {
                key: 0,
                anchors: vec![(self.x, base), (self.y, base)],
            })
        }
    }

    fn profile_with(strategy: ReplayStrategy, stride: usize) -> KernelProfile {
        let mut dev = GpuDevice::gtx970();
        dev.set_replay_strategy(strategy);
        let x = dev.alloc(64 * 64);
        let y = dev.alloc(64 * 64);
        dev.launch(&Tiled {
            x,
            y,
            blocks: 64,
            stride,
        })
        .unwrap()
    }

    #[test]
    fn parallel_replay_matches_serial_on_homogeneous_kernel() {
        for stride in [32usize, 3] {
            let serial = profile_with(ReplayStrategy::Serial, stride);
            for threads in [1, 2, 7, 16] {
                for memoize in [false, true] {
                    let par = profile_with(
                        ReplayStrategy::Parallel {
                            memoize,
                            threads: Some(threads),
                        },
                        stride,
                    );
                    assert_eq!(
                        serial.counters, par.counters,
                        "stride {stride}, {threads} threads, memoize {memoize}"
                    );
                    assert_eq!(serial.mem, par.mem, "stride {stride}, {threads} threads");
                }
            }
        }
    }

    #[test]
    fn parallel_replay_matches_serial_on_heterogeneous_kernel() {
        let n = 32 * 1024;
        let run = |strategy: ReplayStrategy| {
            let mut dev = GpuDevice::gtx970();
            dev.set_replay_strategy(strategy);
            let x = dev.alloc(n);
            let y = dev.alloc(n);
            dev.launch(&Streamer { x, y, n }).unwrap()
        };
        let serial = run(ReplayStrategy::Serial);
        let par = run(ReplayStrategy::Parallel {
            memoize: true,
            threads: Some(5),
        });
        assert_eq!(serial.counters, par.counters);
        assert_eq!(serial.mem, par.mem);
    }

    #[test]
    fn parallel_replay_matches_serial_with_l1s() {
        let mut cfg = crate::config::DeviceConfig::gtx970();
        cfg.l1_cache_global_loads = true;
        let n = 16 * 1024;
        let run = |strategy: ReplayStrategy| {
            let mut dev = GpuDevice::new(cfg.clone());
            dev.set_replay_strategy(strategy);
            let x = dev.alloc(n);
            let y = dev.alloc(n);
            dev.launch(&Streamer { x, y, n }).unwrap()
        };
        let serial = run(ReplayStrategy::Serial);
        for threads in [1, 4] {
            let par = run(ReplayStrategy::Parallel {
                memoize: true,
                threads: Some(threads),
            });
            assert_eq!(serial.counters, par.counters, "{threads} threads");
            assert_eq!(serial.mem, par.mem, "{threads} threads");
        }
    }

    /// A kernel that mis-declares its class (all blocks claim the
    /// same key and anchors, but block 1 actually strides
    /// differently): the per-class spot-check must catch it and fall
    /// back to direct replay, keeping parallel == serial.
    struct Liar {
        x: BufId,
    }

    impl Kernel for Liar {
        fn name(&self) -> String {
            "liar".into()
        }
        fn launch_config(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::new_1d(4), 32u32)
        }
        fn resources(&self) -> KernelResources {
            KernelResources {
                threads_per_block: 32,
                regs_per_thread: 16,
                smem_bytes_per_block: 0,
            }
        }
        fn traffic_homogeneous(&self) -> bool {
            true
        }
        fn execute_block(&self, _: Dim3, _: &mut BlockCtx) {}
        fn block_traffic(&self, block: Dim3, sink: &mut crate::traffic::TrafficSink) {
            // Block 1 secretly reads with a gather the others don't.
            let mul = if block.x == 1 { 2 } else { 1 };
            let idx = full_warp_idx(|l| l * mul);
            sink.global_read(self.x, &idx, 1);
        }
        fn block_class(&self, _: Dim3) -> Option<crate::kernel::BlockClass> {
            Some(crate::kernel::BlockClass {
                key: 7,
                anchors: vec![(self.x, 0)],
            })
        }
    }

    #[test]
    fn memo_spot_check_catches_mis_declared_class() {
        let run = |strategy: ReplayStrategy| {
            let mut dev = GpuDevice::gtx970();
            dev.set_replay_strategy(strategy);
            let x = dev.alloc(256);
            dev.launch(&Liar { x }).unwrap()
        };
        let serial = run(ReplayStrategy::Serial);
        let par = run(ReplayStrategy::Parallel {
            memoize: true,
            threads: Some(4),
        });
        assert_eq!(serial.counters, par.counters);
        assert_eq!(serial.mem, par.mem);
    }

    #[test]
    fn launch_rejects_invalid_kernel() {
        struct Bad;
        impl Kernel for Bad {
            fn name(&self) -> String {
                "bad".into()
            }
            fn launch_config(&self) -> LaunchConfig {
                LaunchConfig::new(1u32, 2048u32)
            }
            fn resources(&self) -> KernelResources {
                KernelResources {
                    threads_per_block: 2048,
                    regs_per_thread: 8,
                    smem_bytes_per_block: 0,
                }
            }
            fn execute_block(&self, _: Dim3, _: &mut BlockCtx) {}
            fn block_traffic(&self, _: Dim3, _: &mut crate::traffic::TrafficSink) {}
        }
        let mut dev = GpuDevice::gtx970();
        assert!(matches!(
            dev.launch(&Bad),
            Err(LaunchError::TooManyThreads { .. })
        ));
    }

    #[test]
    fn profile_carries_occupancy() {
        let mut dev = GpuDevice::gtx970();
        let x = dev.alloc(32);
        let y = dev.alloc(32);
        let p = dev.launch(&Streamer { x, y, n: 32 }).unwrap();
        assert_eq!(p.occupancy.blocks_per_sm, 32); // tiny kernel, block-limited
    }
}
