//! The [`Kernel`] trait — what a GPU kernel looks like to the simulator.
//!
//! Each kernel supplies:
//!
//! * its launch geometry and static resource usage (registers/thread,
//!   shared memory/block) — the inputs to the occupancy calculator;
//! * `execute_block` — the **functional** implementation, run against
//!   real device buffers to validate numerics;
//! * `block_traffic` — the **traffic** implementation, which replays
//!   exactly the same warp-level access pattern into a
//!   [`crate::traffic::TrafficSink`] without touching data, so
//!   paper-scale problems (`M = 524288`) can be profiled without
//!   materialising the `M×N` intermediate.
//!
//! The two implementations share their address-mapping helpers in
//! `ks-gpu-kernels`; consistency between them is enforced by tests
//! that run both on small problems and compare every counter.

use crate::buffer::BufId;
use crate::config::DeviceConfig;
use crate::dim::{Dim3, LaunchConfig};
use crate::exec::BlockCtx;
use crate::occupancy::OccupancyLimiter;
use crate::traffic::TrafficSink;

/// Static per-kernel resource usage (occupancy inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct KernelResources {
    /// Threads per block (product of the block dims).
    pub threads_per_block: u32,
    /// Registers per thread, as the compiler would allocate.
    pub regs_per_thread: u32,
    /// Static shared memory per block in bytes.
    pub smem_bytes_per_block: u32,
}

/// Which instruction-scheduling model the timing estimator applies.
///
/// The paper attributes its 1.5–2.0× GEMM gap vs cuBLAS to CUDA-C
/// limitations (§V-A): no control over register-bank conflicts, only
/// heavyweight `__syncthreads()`, no hand-scheduled dual issue. The
/// `Vendor` model removes those penalties — it is how we model the
/// closed-source cuBLAS kernel (see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecModel {
    /// Compiler-scheduled CUDA-C code (penalties on).
    #[default]
    CudaC,
    /// Hand-scheduled assembly, cuBLAS-class (penalties off).
    Vendor,
}

/// Per-kernel hints consumed by the timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingHints {
    /// Instruction scheduling model.
    pub exec_model: ExecModel,
    /// Memory-level parallelism: outstanding global loads a single
    /// warp sustains (double buffering with `float4` loads ⇒ ~8).
    pub mlp: f64,
}

impl Default for TimingHints {
    fn default() -> Self {
        Self {
            exec_model: ExecModel::CudaC,
            mlp: 4.0,
        }
    }
}

/// One global buffer a kernel touches, declared for bounds checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferUse {
    /// The buffer.
    pub buf: BufId,
    /// Declared extent in elements; accesses at or past this index are
    /// out of bounds.
    pub len: usize,
    /// Whether the kernel writes (or atomically updates) the buffer.
    pub writes: bool,
    /// Human-readable role for findings ("a", "partials", …).
    pub label: &'static str,
}

/// Budgets and expectations a kernel declares for static analysis
/// (`ks-analyze`); every field has a permissive default so ordinary
/// kernels need not opt in.
#[derive(Debug, Clone, Default)]
pub struct AnalysisBudget {
    /// Worst tolerated shared-memory conflict degree per warp access
    /// phase (0 = every access must be conflict-free, the Fig. 5
    /// guarantee).
    pub smem_conflict_budget: u32,
    /// Expected blocks per SM on the reference device (`None` = not
    /// checked). The fused kernel pins this to 2 per §III-A.
    pub expected_blocks_per_sm: Option<u32>,
    /// Expected occupancy limiter (`None` = not checked).
    pub expected_limiter: Option<OccupancyLimiter>,
    /// Global buffers the kernel may touch, with extents. Empty list =
    /// bounds checking skipped (nothing declared).
    pub buffers: Vec<BufferUse>,
}

/// Declares which translation class a block's global traffic belongs
/// to, enabling block-class memoization during parallel replay (see
/// `crate::replay`).
///
/// Two blocks with the same `key` must issue **identical** warp-level
/// instruction streams whose global accesses differ only by a
/// constant per-buffer element offset — the `anchors`. For such a
/// pair, every sector address of one block equals the corresponding
/// sector address of the other shifted by `Δanchor × 4` bytes,
/// provided the byte delta is a multiple of the sector size (the
/// replay engine verifies this at runtime and falls back to direct
/// replay otherwise). Buffers absent from `anchors` are accessed at
/// block-independent addresses (delta 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockClass {
    /// Class discriminant; blocks sharing a key are
    /// translation-equivalent.
    pub key: u64,
    /// `(buffer, element offset)` anchors of this block's accesses.
    pub anchors: Vec<(BufId, usize)>,
}

/// A simulated GPU kernel. See the module docs.
pub trait Kernel: Sync {
    /// Kernel name (appears in profiles, like nvprof's kernel column).
    fn name(&self) -> String;

    /// Grid/block geometry.
    fn launch_config(&self) -> LaunchConfig;

    /// Registers and shared memory consumed.
    fn resources(&self) -> KernelResources;

    /// Timing-model hints (exec model, MLP).
    fn timing_hints(&self) -> TimingHints {
        TimingHints::default()
    }

    /// Functional execution of one thread block (numerics + optional
    /// tracing through the [`BlockCtx`]).
    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx);

    /// Pure access-pattern replay of one thread block.
    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink);

    /// True if every block issues the identical compute and
    /// shared-memory instruction stream (global addresses may differ).
    /// Enables the fast profiling path: one block's local counters are
    /// scaled by the grid size and only global traffic is replayed
    /// per block. All kernels in this workspace are homogeneous
    /// because the tilings require exact divisibility.
    fn traffic_homogeneous(&self) -> bool {
        false
    }

    /// Budgets and expectations for static analysis (`ks-analyze`).
    /// The default declares nothing: conflict budget 0, no occupancy
    /// expectation, no buffer extents (bounds checking skipped).
    fn analysis_budget(&self) -> AnalysisBudget {
        AnalysisBudget::default()
    }

    /// The kernel's declared symbolic access pattern for the static
    /// (zero-execution) lint, or `None` (the default) when the kernel
    /// makes no declaration — the analyzer then falls back to the
    /// dynamic trace-based lint. Specs are *claims*: the differential
    /// validator in `ks-analyze` cross-checks every declared pattern
    /// against recorded traces and simulator counters.
    fn access_spec(&self) -> Option<crate::access::AccessSpec> {
        None
    }

    /// The block's translation class for memoized replay, or `None`
    /// (the default) when the block's traffic is not known to be a
    /// pure translation of some class representative — every block is
    /// then replayed directly. Kernels whose per-block addressing is
    /// affine in the block coordinates (all the tiled kernels in this
    /// workspace) override this with their per-buffer anchors.
    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        let _ = block;
        None
    }
}

/// Vector width of a warp memory operation, in 32-bit words per lane.
///
/// Memory operations are typed on this enum so an unsupported width
/// surfaces as [`LaunchError::UnsupportedVectorWidth`] where the width
/// is chosen, rather than as a panic deep inside a kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum VecWidth {
    /// Scalar `float` access.
    V1,
    /// `float2` access.
    V2,
    /// `float4` access.
    V4,
}

impl VecWidth {
    /// Words per lane.
    #[must_use]
    pub fn words(self) -> u32 {
        match self {
            VecWidth::V1 => 1,
            VecWidth::V2 => 2,
            VecWidth::V4 => 4,
        }
    }
}

impl TryFrom<u32> for VecWidth {
    type Error = LaunchError;

    fn try_from(vlen: u32) -> Result<Self, LaunchError> {
        match vlen {
            1 => Ok(VecWidth::V1),
            2 => Ok(VecWidth::V2),
            4 => Ok(VecWidth::V4),
            _ => Err(LaunchError::UnsupportedVectorWidth { vlen }),
        }
    }
}

/// Why a launch was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Block has zero threads or grid has zero blocks.
    EmptyLaunch,
    /// Threads per block exceeds the device maximum.
    TooManyThreads {
        /// Requested threads per block.
        requested: u32,
        /// Device limit.
        limit: u32,
    },
    /// Registers per thread exceeds the device maximum.
    TooManyRegisters {
        /// Requested registers per thread.
        requested: u32,
        /// Device limit.
        limit: u32,
    },
    /// Shared memory per block exceeds the device maximum.
    TooMuchSharedMemory {
        /// Requested bytes per block.
        requested: u32,
        /// Device limit.
        limit: u32,
    },
    /// Declared `threads_per_block` disagrees with the block dims.
    InconsistentResources {
        /// Threads from the launch config.
        from_launch: u64,
        /// Threads from the resource declaration.
        from_resources: u32,
    },
    /// A memory operation requested a vector width the hardware model
    /// does not support (only 1, 2 and 4 words per lane exist).
    UnsupportedVectorWidth {
        /// Requested words per lane.
        vlen: u32,
    },
    /// An injected launch-level fault: an SM dropped off the bus
    /// mid-launch (see [`crate::fault`]).
    SmLost {
        /// Which SM was lost.
        sm: u32,
    },
    /// An injected launch-level fault: the driver watchdog killed the
    /// launch (see [`crate::fault`]).
    WatchdogTimeout {
        /// The watchdog limit that was exceeded, in milliseconds.
        limit_ms: u32,
    },
}

impl LaunchError {
    /// True for errors produced by the fault-injection subsystem
    /// rather than an invalid launch configuration — the cases a
    /// resilient caller may retry.
    #[must_use]
    pub fn is_injected_fault(&self) -> bool {
        matches!(
            self,
            LaunchError::SmLost { .. } | LaunchError::WatchdogTimeout { .. }
        )
    }
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::EmptyLaunch => write!(f, "empty grid or block"),
            LaunchError::TooManyThreads { requested, limit } => {
                write!(
                    f,
                    "{requested} threads per block exceeds device limit {limit}"
                )
            }
            LaunchError::TooManyRegisters { requested, limit } => {
                write!(
                    f,
                    "{requested} registers per thread exceeds device limit {limit}"
                )
            }
            LaunchError::TooMuchSharedMemory { requested, limit } => {
                write!(
                    f,
                    "{requested} bytes of shared memory exceeds device limit {limit}"
                )
            }
            LaunchError::InconsistentResources {
                from_launch,
                from_resources,
            } => {
                write!(f, "launch config has {from_launch} threads but resources declare {from_resources}")
            }
            LaunchError::UnsupportedVectorWidth { vlen } => {
                write!(f, "unsupported vector width {vlen} (expected 1, 2 or 4)")
            }
            LaunchError::SmLost { sm } => {
                write!(f, "injected fault: SM {sm} lost during launch")
            }
            LaunchError::WatchdogTimeout { limit_ms } => {
                write!(
                    f,
                    "injected fault: watchdog killed launch after {limit_ms} ms"
                )
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Validates a kernel's launch against device limits — the simulator's
/// `cudaErrorInvalidConfiguration` check.
///
/// # Errors
/// Returns the first violated limit.
pub fn validate_launch(dev: &DeviceConfig, kernel: &dyn Kernel) -> Result<(), LaunchError> {
    let lc = kernel.launch_config();
    let res = kernel.resources();
    if lc.total_blocks() == 0 || lc.threads_per_block() == 0 {
        return Err(LaunchError::EmptyLaunch);
    }
    if lc.threads_per_block() != res.threads_per_block as u64 {
        return Err(LaunchError::InconsistentResources {
            from_launch: lc.threads_per_block(),
            from_resources: res.threads_per_block,
        });
    }
    if res.threads_per_block > dev.max_threads_per_block {
        return Err(LaunchError::TooManyThreads {
            requested: res.threads_per_block,
            limit: dev.max_threads_per_block,
        });
    }
    if res.regs_per_thread > dev.max_regs_per_thread {
        return Err(LaunchError::TooManyRegisters {
            requested: res.regs_per_thread,
            limit: dev.max_regs_per_thread,
        });
    }
    if res.smem_bytes_per_block > dev.max_smem_per_block {
        return Err(LaunchError::TooMuchSharedMemory {
            requested: res.smem_bytes_per_block,
            limit: dev.max_smem_per_block,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        lc: LaunchConfig,
        res: KernelResources,
    }

    impl Kernel for Dummy {
        fn name(&self) -> String {
            "dummy".into()
        }
        fn launch_config(&self) -> LaunchConfig {
            self.lc
        }
        fn resources(&self) -> KernelResources {
            self.res
        }
        fn execute_block(&self, _: Dim3, _: &mut BlockCtx) {}
        fn block_traffic(&self, _: Dim3, _: &mut TrafficSink) {}
    }

    fn dummy(threads: u32, regs: u32, smem: u32) -> Dummy {
        Dummy {
            lc: LaunchConfig::new(4u32, threads),
            res: KernelResources {
                threads_per_block: threads,
                regs_per_thread: regs,
                smem_bytes_per_block: smem,
            },
        }
    }

    #[test]
    fn valid_launch_passes() {
        let dev = DeviceConfig::gtx970();
        assert!(validate_launch(&dev, &dummy(256, 128, 16384)).is_ok());
    }

    #[test]
    fn rejects_too_many_threads() {
        let dev = DeviceConfig::gtx970();
        let e = validate_launch(&dev, &dummy(1056, 32, 0)).unwrap_err();
        assert!(matches!(
            e,
            LaunchError::TooManyThreads {
                requested: 1056,
                ..
            }
        ));
        assert!(e.to_string().contains("1056"));
    }

    #[test]
    fn rejects_too_much_smem() {
        let dev = DeviceConfig::gtx970();
        let e = validate_launch(&dev, &dummy(256, 32, 49 * 1024)).unwrap_err();
        assert!(matches!(e, LaunchError::TooMuchSharedMemory { .. }));
    }

    #[test]
    fn rejects_inconsistent_thread_declaration() {
        let dev = DeviceConfig::gtx970();
        let k = Dummy {
            lc: LaunchConfig::new(1u32, 128u32),
            res: KernelResources {
                threads_per_block: 256,
                regs_per_thread: 32,
                smem_bytes_per_block: 0,
            },
        };
        assert!(matches!(
            validate_launch(&dev, &k).unwrap_err(),
            LaunchError::InconsistentResources { .. }
        ));
    }

    #[test]
    fn rejects_empty_grid() {
        let dev = DeviceConfig::gtx970();
        let k = Dummy {
            lc: LaunchConfig::new(0u32, 128u32),
            res: KernelResources {
                threads_per_block: 128,
                regs_per_thread: 32,
                smem_bytes_per_block: 0,
            },
        };
        assert_eq!(
            validate_launch(&dev, &k).unwrap_err(),
            LaunchError::EmptyLaunch
        );
    }

    #[test]
    fn default_hints() {
        let h = TimingHints::default();
        assert_eq!(h.exec_model, ExecModel::CudaC);
        assert!(h.mlp > 0.0);
    }
}
