//! Human-readable profile rendering (nvprof-style).

use std::fmt;

use crate::profiler::{KernelProfile, PipelineProfile};

impl fmt::Display for KernelProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<30} {:>9.3}ms  occ {:>4.0}%  {:>14} flops  l2 {:>12}  dram {:>12}  {:?}-bound",
            self.name,
            self.timing.time_s * 1e3,
            self.occupancy.fraction * 100.0,
            self.counters.flops,
            self.mem.l2_transactions(),
            self.mem.dram_transactions(),
            self.timing.bound,
        )
    }
}

impl fmt::Display for PipelineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline {:<16} total {:.3}ms, {} kernels",
            self.name,
            self.total_time_s() * 1e3,
            self.kernels.len()
        )?;
        for k in &self.kernels {
            writeln!(f, "  {k}")?;
        }
        Ok(())
    }
}

/// One-line summary of a pipeline (for logs and examples).
#[must_use]
pub fn summary(p: &PipelineProfile, peak_gflops: f64) -> String {
    let mem = p.total_mem();
    format!(
        "{}: {:.3}ms, {:.1}% FLOP efficiency, {} L2 / {} DRAM transactions",
        p.name,
        p.total_time_s() * 1e3,
        p.flop_efficiency(peak_gflops) * 100.0,
        mem.l2_transactions(),
        mem.dram_transactions()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::LaunchConfig;
    use crate::kernel::KernelResources;
    use crate::occupancy::occupancy;
    use crate::profiler::{Counters, MemTraffic};
    use crate::timing::{estimate, TimingParams};
    use crate::DeviceConfig;

    fn fake_profile() -> KernelProfile {
        let dev = DeviceConfig::gtx970();
        let res = KernelResources {
            threads_per_block: 256,
            regs_per_thread: 64,
            smem_bytes_per_block: 0,
        };
        let occ = occupancy(&dev, &res);
        let counters = Counters {
            ffma_insts: 1000,
            thread_insts: 32000,
            flops: 64000,
            ..Default::default()
        };
        let mem = MemTraffic::default();
        let timing = estimate(
            &dev,
            &TimingParams::default(),
            &Default::default(),
            &counters,
            &mem,
            &occ,
            10,
        );
        KernelProfile {
            name: "demo_kernel".into(),
            launch: LaunchConfig::new(10u32, 256u32),
            resources: res,
            occupancy: occ,
            counters,
            mem,
            timing,
        }
    }

    #[test]
    fn kernel_display_mentions_name_and_bound() {
        let s = fake_profile().to_string();
        assert!(s.contains("demo_kernel"));
        assert!(s.contains("bound"));
        assert!(s.contains("flops"));
    }

    #[test]
    fn pipeline_display_lists_kernels() {
        let mut p = PipelineProfile::new("Demo");
        p.kernels.push(fake_profile());
        p.kernels.push(fake_profile());
        let s = p.to_string();
        assert!(s.contains("pipeline Demo"));
        assert_eq!(s.matches("demo_kernel").count(), 2);
    }

    #[test]
    fn summary_contains_efficiency() {
        let mut p = PipelineProfile::new("Demo");
        p.kernels.push(fake_profile());
        let s = summary(&p, 3920.0);
        assert!(s.contains("FLOP efficiency"));
        assert!(s.contains("Demo"));
    }
}
