//! Profile rendering: human-readable text (nvprof-style) plus the
//! machine-readable CSV/JSON metric sink used by the bench harness and
//! the perf-regression tests.

use std::fmt;

use crate::profiler::{KernelProfile, PipelineProfile};

impl fmt::Display for KernelProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<30} {:>9.3}ms  occ {:>4.0}%  {:>14} flops  l2 {:>12}  dram {:>12}  {:?}-bound",
            self.name,
            self.timing.time_s * 1e3,
            self.occupancy.fraction * 100.0,
            self.counters.flops,
            self.mem.l2_transactions(),
            self.mem.dram_transactions(),
            self.timing.bound,
        )
    }
}

impl fmt::Display for PipelineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline {:<16} total {:.3}ms, {} kernels",
            self.name,
            self.total_time_s() * 1e3,
            self.kernels.len()
        )?;
        for k in &self.kernels {
            writeln!(f, "  {k}")?;
        }
        Ok(())
    }
}

/// One-line summary of a pipeline (for logs and examples).
#[must_use]
pub fn summary(p: &PipelineProfile, peak_gflops: f64) -> String {
    let mem = p.total_mem();
    format!(
        "{}: {:.3}ms, {:.1}% FLOP efficiency, {} L2 / {} DRAM transactions",
        p.name,
        p.total_time_s() * 1e3,
        p.flop_efficiency(peak_gflops) * 100.0,
        mem.l2_transactions(),
        mem.dram_transactions()
    )
}

/// Column names of the metrics CSV, one row per kernel launch.
/// Counter columns follow nvprof's event names where one exists.
pub const CSV_COLUMNS: &[&str] = &[
    "pipeline",
    "kernel",
    "grid",
    "block",
    "regs_per_thread",
    "smem_bytes_per_block",
    "achieved_occupancy",
    "occupancy_limiter",
    "blocks_per_sm",
    "inst_ffma",
    "inst_falu",
    "inst_alu",
    "inst_sfu",
    "inst_global_load",
    "inst_global_store",
    "inst_atomic",
    "inst_sync",
    "inst_executed",
    "thread_inst_executed",
    "flop_count_sp",
    "shared_load",
    "shared_load_transactions",
    "shared_store",
    "shared_store_transactions",
    "l2_read_sectors",
    "l2_write_sectors",
    "atomic_sectors",
    "l1_read_sectors",
    "l1_read_hits",
    "l2_read_transactions",
    "l2_read_hits",
    "l2_read_misses",
    "l2_write_transactions",
    "l2_write_hits",
    "l2_write_misses",
    "dram_read_transactions",
    "dram_write_transactions",
    "cycles",
    "time_s",
    "bound",
    "injected_smem_flips",
    "injected_reg_flips",
    "injected_dram_flips",
    "injected_launch_faults",
];

/// The CSV header line for [`kernel_csv_row`] rows.
#[must_use]
pub fn csv_header() -> String {
    CSV_COLUMNS.join(",")
}

/// One CSV row of every metric of one kernel launch, in
/// [`CSV_COLUMNS`] order. `pipeline` labels which pipeline the launch
/// belongs to.
#[must_use]
pub fn kernel_csv_row(pipeline: &str, k: &KernelProfile) -> String {
    let c = &k.counters;
    let m = &k.mem;
    let cells: Vec<String> = vec![
        pipeline.to_string(),
        k.name.clone(),
        format!(
            "{}x{}x{}",
            k.launch.grid.x, k.launch.grid.y, k.launch.grid.z
        ),
        format!(
            "{}x{}x{}",
            k.launch.block.x, k.launch.block.y, k.launch.block.z
        ),
        k.resources.regs_per_thread.to_string(),
        k.resources.smem_bytes_per_block.to_string(),
        format!("{:?}", k.occupancy.fraction),
        format!("{:?}", k.occupancy.limiter),
        k.occupancy.blocks_per_sm.to_string(),
        c.ffma_insts.to_string(),
        c.falu_insts.to_string(),
        c.alu_insts.to_string(),
        c.sfu_insts.to_string(),
        c.global_load_insts.to_string(),
        c.global_store_insts.to_string(),
        c.atomic_insts.to_string(),
        c.sync_insts.to_string(),
        c.warp_insts().to_string(),
        c.thread_insts.to_string(),
        c.flops.to_string(),
        c.smem.load_instructions.to_string(),
        c.smem.load_transactions.to_string(),
        c.smem.store_instructions.to_string(),
        c.smem.store_transactions.to_string(),
        c.l2_read_sectors.to_string(),
        c.l2_write_sectors.to_string(),
        c.atomic_sectors.to_string(),
        c.l1_read_sectors.to_string(),
        c.l1_read_hits.to_string(),
        m.l2_reads.to_string(),
        m.l2_read_hits.to_string(),
        m.l2_read_misses.to_string(),
        m.l2_writes.to_string(),
        m.l2_write_hits.to_string(),
        m.l2_write_misses.to_string(),
        m.dram_reads().to_string(),
        m.dram_writes.to_string(),
        format!("{:?}", k.timing.cycles),
        format!("{:?}", k.timing.time_s),
        format!("{:?}", k.timing.bound),
        k.faults.smem_flips.to_string(),
        k.faults.reg_flips.to_string(),
        k.faults.dram_flips.to_string(),
        k.faults.launch_faults.to_string(),
    ];
    debug_assert_eq!(cells.len(), CSV_COLUMNS.len());
    cells.join(",")
}

/// Renders pipelines as a complete nvprof-style CSV document (header
/// plus one row per kernel launch).
#[must_use]
pub fn pipelines_to_csv<'a>(pipelines: impl IntoIterator<Item = &'a PipelineProfile>) -> String {
    let mut out = csv_header();
    out.push('\n');
    for p in pipelines {
        for k in &p.kernels {
            out.push_str(&kernel_csv_row(&p.name, k));
            out.push('\n');
        }
    }
    out
}

/// Serialises pipelines to a pretty-printed JSON array. The schema is
/// the serde data model of [`PipelineProfile`] — every counter,
/// traffic, occupancy and timing field is present.
#[must_use]
pub fn pipelines_to_json<'a>(pipelines: impl IntoIterator<Item = &'a PipelineProfile>) -> String {
    let v: Vec<&PipelineProfile> = pipelines.into_iter().collect();
    serde_json::to_string_pretty(&v).expect("profiles serialise")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::LaunchConfig;
    use crate::kernel::KernelResources;
    use crate::occupancy::occupancy;
    use crate::profiler::{Counters, MemTraffic};
    use crate::timing::{estimate, TimingParams};
    use crate::DeviceConfig;

    fn fake_profile() -> KernelProfile {
        let dev = DeviceConfig::gtx970();
        let res = KernelResources {
            threads_per_block: 256,
            regs_per_thread: 64,
            smem_bytes_per_block: 0,
        };
        let occ = occupancy(&dev, &res);
        let counters = Counters {
            ffma_insts: 1000,
            thread_insts: 32000,
            flops: 64000,
            ..Default::default()
        };
        let mem = MemTraffic::default();
        let timing = estimate(
            &dev,
            &TimingParams::default(),
            &Default::default(),
            &counters,
            &mem,
            &occ,
            10,
        );
        KernelProfile {
            name: "demo_kernel".into(),
            launch: LaunchConfig::new(10u32, 256u32),
            resources: res,
            occupancy: occ,
            counters,
            mem,
            timing,
            faults: Default::default(),
        }
    }

    #[test]
    fn kernel_display_mentions_name_and_bound() {
        let s = fake_profile().to_string();
        assert!(s.contains("demo_kernel"));
        assert!(s.contains("bound"));
        assert!(s.contains("flops"));
    }

    #[test]
    fn pipeline_display_lists_kernels() {
        let mut p = PipelineProfile::new("Demo");
        p.kernels.push(fake_profile());
        p.kernels.push(fake_profile());
        let s = p.to_string();
        assert!(s.contains("pipeline Demo"));
        assert_eq!(s.matches("demo_kernel").count(), 2);
    }

    #[test]
    fn summary_contains_efficiency() {
        let mut p = PipelineProfile::new("Demo");
        p.kernels.push(fake_profile());
        let s = summary(&p, 3920.0);
        assert!(s.contains("FLOP efficiency"));
        assert!(s.contains("Demo"));
    }

    #[test]
    fn csv_rows_match_header_width() {
        let k = fake_profile();
        let header = csv_header();
        let row = kernel_csv_row("Demo", &k);
        assert_eq!(header.split(',').count(), CSV_COLUMNS.len());
        assert_eq!(row.split(',').count(), CSV_COLUMNS.len());
        assert!(row.starts_with("Demo,demo_kernel,"));
    }

    #[test]
    fn csv_document_has_one_row_per_kernel() {
        let mut p = PipelineProfile::new("Demo");
        p.kernels.push(fake_profile());
        p.kernels.push(fake_profile());
        let doc = pipelines_to_csv([&p]);
        assert_eq!(doc.lines().count(), 3, "header + 2 kernel rows");
        assert_eq!(doc.lines().next().unwrap(), csv_header());
    }

    #[test]
    fn json_round_trips_every_counter() {
        let mut p = PipelineProfile::new("Demo");
        p.kernels.push(fake_profile());
        let json = pipelines_to_json([&p]);
        let back: Vec<PipelineProfile> = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], p, "profile must survive a JSON round trip");
    }
}
