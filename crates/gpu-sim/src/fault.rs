//! Deterministic soft-error fault model.
//!
//! Real GPUs suffer transient bit-flips (SEUs) in SRAM cells, register
//! files and DRAM, plus coarser launch-level failures (a lost SM, a
//! driver watchdog kill). Because the fused kernel keeps its `M×N`
//! intermediate entirely on-chip, such an upset leaves **no
//! DRAM-visible trace** — which is exactly the failure mode the ABFT
//! checksum layer in `ks-gpu-kernels` exists to catch. This module
//! models those upsets reproducibly:
//!
//! * [`FaultSpec`] — per-launch fault rates plus a seed, configured on
//!   [`crate::DeviceConfig::fault`] or via `ksum --faults SPEC`;
//! * [`FaultState`] — the device-resident generator: each launch
//!   (traffic or functional) advances an epoch counter and derives an
//!   independent ChaCha8 stream from `seed ⊕ f(epoch)`, so a fault
//!   schedule is a pure function of `(spec, launch ordinal)` and
//!   replays bit-identically across runs and thread counts;
//! * [`LaunchFaultPlan`] — the per-launch schedule: shared-memory word
//!   flips (applied at a chosen `__syncthreads()` boundary inside the
//!   victim block), accumulator-register flips (drained by kernels
//!   that expose accumulators through
//!   [`crate::exec::BlockCtx::take_accumulator_faults`]), and DRAM
//!   word flips (applied to the kernel's declared writable buffers
//!   after the launch completes);
//! * [`FaultCounters`] — how many upsets were actually applied,
//!   surfaced on [`crate::KernelProfile`] and the CSV report schema.
//!
//! Faults corrupt **functional data only** — never instruction or
//! transaction counters — so profiles of a faulted run stay
//! bit-identical to a clean run and the golden-counter suite is
//! unaffected by this subsystem.
//!
//! Scheduled events can miss their target: an SMEM flip aimed at sync
//! index 7 of a kernel with 3 barriers never fires, register flips
//! aimed at kernels with no accumulator hook are dropped, and DRAM
//! flips aimed at kernels that declare no writable buffers are
//! dropped. Counters tally *applied* upsets, not scheduled ones.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Simulated driver watchdog limit reported by
/// [`crate::LaunchError::WatchdogTimeout`].
pub const WATCHDOG_LIMIT_MS: u32 = 2000;

/// Upper bound on the `__syncthreads()` ordinal an SMEM flip can
/// target. Events drawn past a block's actual barrier count never
/// fire (see the module docs).
pub const MAX_SYNC_TARGET: u32 = 8;

/// Seeded per-launch fault rates. Rates `smem`/`reg`/`dram` are
/// *expected event counts per launch* (may exceed 1); `sm` and
/// `watchdog` are *probabilities per launch* in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Base seed of the fault stream.
    pub seed: u64,
    /// Expected shared-memory word flips per launch.
    pub smem_rate: f64,
    /// Expected accumulator-register flips per launch.
    pub reg_rate: f64,
    /// Expected DRAM word flips per launch.
    pub dram_rate: f64,
    /// Probability a launch dies losing an SM.
    pub sm_loss_rate: f64,
    /// Probability a launch is killed by the watchdog.
    pub watchdog_rate: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            smem_rate: 0.0,
            reg_rate: 0.0,
            dram_rate: 0.0,
            sm_loss_rate: 0.0,
            watchdog_rate: 0.0,
        }
    }
}

impl FaultSpec {
    /// Parses a `key=value` comma list, e.g.
    /// `"seed=7,smem=0.5,reg=1,dram=0.25,sm=0.01,watchdog=0.001"`.
    /// Unknown keys, malformed values, negative rates, and `sm`/
    /// `watchdog` probabilities above 1 are rejected.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{part}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let rate = |what: &str| -> Result<f64, String> {
                let r: f64 = value
                    .parse()
                    .map_err(|_| format!("invalid {what} value `{value}`"))?;
                if !r.is_finite() || r < 0.0 {
                    return Err(format!("{what} must be a finite non-negative number"));
                }
                Ok(r)
            };
            match key {
                "seed" => {
                    out.seed = value
                        .parse()
                        .map_err(|_| format!("invalid seed value `{value}`"))?;
                }
                "smem" => out.smem_rate = rate("smem rate")?,
                "reg" => out.reg_rate = rate("reg rate")?,
                "dram" => out.dram_rate = rate("dram rate")?,
                "sm" => {
                    out.sm_loss_rate = rate("sm probability")?;
                    if out.sm_loss_rate > 1.0 {
                        return Err("sm probability must be <= 1".into());
                    }
                }
                "watchdog" => {
                    out.watchdog_rate = rate("watchdog probability")?;
                    if out.watchdog_rate > 1.0 {
                        return Err("watchdog probability must be <= 1".into());
                    }
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(out)
    }

    /// True if no fault can ever fire under this spec.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.smem_rate == 0.0
            && self.reg_rate == 0.0
            && self.dram_rate == 0.0
            && self.sm_loss_rate == 0.0
            && self.watchdog_rate == 0.0
    }
}

/// Counts of *applied* fault injections.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Shared-memory word flips applied at barriers.
    pub smem_flips: u64,
    /// Accumulator-register flips drained by kernels.
    pub reg_flips: u64,
    /// DRAM word flips applied to writable buffers post-launch.
    pub dram_flips: u64,
    /// Launches killed by SM loss or the watchdog.
    pub launch_faults: u64,
}

impl FaultCounters {
    /// True when no fault was applied (the serialized profile then
    /// omits the `faults` key, keeping fault-free JSON byte-identical
    /// to the pre-fault-model schema).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Accumulates another counter block.
    pub fn merge(&mut self, o: &FaultCounters) {
        self.smem_flips += o.smem_flips;
        self.reg_flips += o.reg_flips;
        self.dram_flips += o.dram_flips;
        self.launch_faults += o.launch_faults;
    }
}

/// One scheduled shared-memory bit flip inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmemFlip {
    /// Which `__syncthreads()` ordinal (0-based) the flip lands on.
    pub sync_idx: u32,
    /// Raw word draw; reduced modulo the block's shared size at
    /// application time.
    pub word_pick: u64,
    /// Bit position `0..32`.
    pub bit: u8,
}

/// One scheduled accumulator-register bit flip inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFlip {
    /// Raw element draw; the kernel maps it onto its accumulator
    /// layout modulo the accumulator count.
    pub elem_pick: u64,
    /// Bit position `0..32`.
    pub bit: u8,
}

/// Launch-level failure drawn for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchFault {
    /// An SM dropped off the bus mid-launch.
    SmLost {
        /// Which SM was lost.
        sm: u32,
    },
    /// The driver watchdog killed the launch.
    Watchdog {
        /// The watchdog limit that was exceeded.
        limit_ms: u32,
    },
}

/// Shared tally of faults applied by concurrently-executing blocks.
#[derive(Debug, Default)]
pub struct FaultTally {
    smem: AtomicU64,
    reg: AtomicU64,
}

impl FaultTally {
    /// Records `n` applied shared-memory flips.
    pub fn add_smem(&self, n: u64) {
        self.smem.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` applied register flips.
    pub fn add_reg(&self, n: u64) {
        self.reg.fetch_add(n, Ordering::Relaxed);
    }

    /// Applied shared-memory flips so far.
    #[must_use]
    pub fn smem(&self) -> u64 {
        self.smem.load(Ordering::Relaxed)
    }

    /// Applied register flips so far.
    #[must_use]
    pub fn reg(&self) -> u64 {
        self.reg.load(Ordering::Relaxed)
    }
}

/// The faults scheduled against one specific block of a launch.
#[derive(Debug, Clone)]
pub struct BlockFaults {
    /// Shared-memory flips, keyed by barrier ordinal.
    pub(crate) smem: Vec<SmemFlip>,
    /// Accumulator flips, drained on first request.
    pub(crate) reg: Vec<RegFlip>,
    /// Where applied flips are tallied.
    pub(crate) tally: Arc<FaultTally>,
}

/// The complete fault schedule of one launch.
#[derive(Debug, Clone, Default)]
pub struct LaunchFaultPlan {
    smem: HashMap<u64, Vec<SmemFlip>>,
    reg: HashMap<u64, Vec<RegFlip>>,
    /// `(word draw, bit)` DRAM flips, applied by the device after the
    /// launch over the kernel's declared writable buffers.
    pub(crate) dram: Vec<(u64, u8)>,
    tally: Arc<FaultTally>,
}

impl LaunchFaultPlan {
    /// The faults aimed at block `linear` (launch-order index), if any.
    #[must_use]
    pub fn block_faults(&self, linear: u64) -> Option<BlockFaults> {
        let smem = self.smem.get(&linear).cloned().unwrap_or_default();
        let reg = self.reg.get(&linear).cloned().unwrap_or_default();
        if smem.is_empty() && reg.is_empty() {
            return None;
        }
        Some(BlockFaults {
            smem,
            reg,
            tally: Arc::clone(&self.tally),
        })
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.smem.is_empty() && self.reg.is_empty() && self.dram.is_empty()
    }

    /// Applied shared-memory flips so far.
    #[must_use]
    pub fn applied_smem(&self) -> u64 {
        self.tally.smem()
    }

    /// Applied register flips so far.
    #[must_use]
    pub fn applied_reg(&self) -> u64 {
        self.tally.reg()
    }
}

/// Everything drawn for one launch: an optional fatal launch fault
/// plus the in-flight bit-flip schedule.
#[derive(Debug, Clone)]
pub struct LaunchDraw {
    /// Fatal failure of the whole launch, if drawn.
    pub launch_fault: Option<LaunchFault>,
    /// Bit-flip schedule (empty when a launch fault fires — the launch
    /// never completes).
    pub plan: LaunchFaultPlan,
}

/// Device-resident fault generator: the spec plus a launch epoch.
#[derive(Debug, Clone)]
pub struct FaultState {
    spec: FaultSpec,
    epoch: u64,
}

/// Expected-count draw: `floor(rate)` events plus one more with
/// probability `frac(rate)`.
fn draw_count(rate: f64, rng: &mut ChaCha8Rng) -> u64 {
    let base = rate.floor();
    let frac = rate - base;
    base as u64 + u64::from(rng.gen_bool(frac))
}

impl FaultState {
    /// New state at epoch 0.
    #[must_use]
    pub fn new(spec: FaultSpec) -> Self {
        Self { spec, epoch: 0 }
    }

    /// The configured spec.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Launches drawn so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Draws the fault schedule of the next launch and advances the
    /// epoch. The draw sequence is fixed (launch faults, then SMEM,
    /// register and DRAM events) and always fully consumed, so a
    /// schedule depends only on `(spec, epoch, total_blocks, num_sms)`.
    pub fn next_draw(&mut self, total_blocks: u64, num_sms: u32) -> LaunchDraw {
        let epoch = self.epoch;
        self.epoch += 1;
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.spec.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let sm_lost = rng.gen_bool(self.spec.sm_loss_rate);
        let sm = rng.gen_range(0..num_sms.max(1));
        let watchdog = rng.gen_bool(self.spec.watchdog_rate);

        let mut plan = LaunchFaultPlan::default();
        let blocks = total_blocks.max(1);
        for _ in 0..draw_count(self.spec.smem_rate, &mut rng) {
            let block = rng.gen_range(0..blocks);
            let flip = SmemFlip {
                sync_idx: rng.gen_range(0..MAX_SYNC_TARGET),
                word_pick: rng.gen::<u64>(),
                bit: rng.gen_range(0..32u8),
            };
            plan.smem.entry(block).or_default().push(flip);
        }
        for _ in 0..draw_count(self.spec.reg_rate, &mut rng) {
            let block = rng.gen_range(0..blocks);
            let flip = RegFlip {
                elem_pick: rng.gen::<u64>(),
                bit: rng.gen_range(0..32u8),
            };
            plan.reg.entry(block).or_default().push(flip);
        }
        for _ in 0..draw_count(self.spec.dram_rate, &mut rng) {
            // Exponent/sign bits only: flips large enough to clear the
            // FP checksum noise floor (see DESIGN.md §11), modelling
            // the detectable end of the DRAM upset spectrum.
            plan.dram.push((rng.gen::<u64>(), rng.gen_range(23..32u8)));
        }

        let launch_fault = if sm_lost {
            Some(LaunchFault::SmLost { sm })
        } else if watchdog {
            Some(LaunchFault::Watchdog {
                limit_ms: WATCHDOG_LIMIT_MS,
            })
        } else {
            None
        };
        LaunchDraw { launch_fault, plan }
    }
}

/// Phase of a device's lifecycle, drawn per pool batch by
/// [`LifecycleState::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevicePhase {
    /// Fully operational: launches run normally.
    Healthy,
    /// Transiently hung (driver stall, thermal throttle-to-zero):
    /// every launch fails until a recovery is drawn.
    Hung,
    /// Permanently lost (fell off the bus): never serves again.
    Lost,
}

impl DevicePhase {
    /// True when the device can execute launches.
    #[must_use]
    pub fn is_healthy(self) -> bool {
        matches!(self, DevicePhase::Healthy)
    }
}

/// Seeded device-lifecycle fault rates: per-epoch probabilities of a
/// transient hang, a permanent loss, and — while hung — a recovery.
/// All three are probabilities in `[0, 1]`; an epoch corresponds to
/// one pool batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifecycleSpec {
    /// Base seed of the lifecycle stream.
    pub seed: u64,
    /// Probability a healthy device hangs this epoch.
    pub hang_rate: f64,
    /// Probability a healthy device is permanently lost this epoch.
    pub loss_rate: f64,
    /// Probability a hung device recovers this epoch (flapping).
    pub recover_rate: f64,
}

impl Default for LifecycleSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            hang_rate: 0.0,
            loss_rate: 0.0,
            recover_rate: 0.0,
        }
    }
}

impl LifecycleSpec {
    /// Parses a `key=value` comma list, e.g.
    /// `"seed=7,hang=0.1,loss=0.01,recover=0.5"`. Unknown keys,
    /// malformed values, and probabilities outside `[0, 1]` are
    /// rejected.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("lifecycle spec entry `{part}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let prob = |what: &str| -> Result<f64, String> {
                let r: f64 = value
                    .parse()
                    .map_err(|_| format!("invalid {what} value `{value}`"))?;
                if !r.is_finite() || r < 0.0 {
                    return Err(format!("{what} must be a finite non-negative number"));
                }
                if r > 1.0 {
                    return Err(format!("{what} must be <= 1"));
                }
                Ok(r)
            };
            match key {
                "seed" => {
                    out.seed = value
                        .parse()
                        .map_err(|_| format!("invalid seed value `{value}`"))?;
                }
                "hang" => out.hang_rate = prob("hang probability")?,
                "loss" => out.loss_rate = prob("loss probability")?,
                "recover" => out.recover_rate = prob("recover probability")?,
                other => return Err(format!("unknown lifecycle spec key `{other}`")),
            }
        }
        Ok(out)
    }

    /// True if the device can never leave [`DevicePhase::Healthy`]
    /// under this spec.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.hang_rate == 0.0 && self.loss_rate == 0.0
    }
}

/// Device-resident lifecycle generator: the spec, an epoch counter,
/// and the current [`DevicePhase`]. Like [`FaultState`], every epoch
/// derives an independent ChaCha8 stream from `seed ⊕ f(epoch)` and
/// the draw order is fixed and always fully consumed, so the phase
/// trajectory is a pure function of `(spec, epoch)`.
#[derive(Debug, Clone)]
pub struct LifecycleState {
    spec: LifecycleSpec,
    epoch: u64,
    phase: DevicePhase,
}

impl LifecycleState {
    /// New state: healthy at epoch 0.
    #[must_use]
    pub fn new(spec: LifecycleSpec) -> Self {
        Self {
            spec,
            epoch: 0,
            phase: DevicePhase::Healthy,
        }
    }

    /// The configured spec.
    #[must_use]
    pub fn spec(&self) -> &LifecycleSpec {
        &self.spec
    }

    /// Current phase (after the last [`advance`](Self::advance)).
    #[must_use]
    pub fn phase(&self) -> DevicePhase {
        self.phase
    }

    /// Epochs drawn so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances one epoch and returns the new phase. Loss, hang and
    /// recovery are drawn in that fixed order (all three always
    /// consumed); `Lost` is absorbing, a `Hung` device returns to
    /// `Healthy` when a recovery is drawn, and a `Healthy` device
    /// prefers loss over hang when both fire.
    pub fn advance(&mut self) -> DevicePhase {
        let epoch = self.epoch;
        self.epoch += 1;
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.spec.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let loss = rng.gen_bool(self.spec.loss_rate);
        let hang = rng.gen_bool(self.spec.hang_rate);
        let recover = rng.gen_bool(self.spec.recover_rate);
        self.phase = match self.phase {
            DevicePhase::Lost => DevicePhase::Lost,
            DevicePhase::Hung => {
                if recover {
                    DevicePhase::Healthy
                } else {
                    DevicePhase::Hung
                }
            }
            DevicePhase::Healthy => {
                if loss {
                    DevicePhase::Lost
                } else if hang {
                    DevicePhase::Hung
                } else {
                    DevicePhase::Healthy
                }
            }
        };
        self.phase
    }
}

/// Seeded per-transfer interconnect fault rates: probabilities that a
/// host↔device transfer is corrupted in flight (caught by the CRC
/// check and retransmitted) or times out (the transfer — and with it
/// the shard attempt — fails).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultSpec {
    /// Base seed of the link-fault stream.
    pub seed: u64,
    /// Probability a transfer is corrupted (CRC-detected, retransmit).
    pub corrupt_rate: f64,
    /// Probability a transfer times out (attempt fails).
    pub timeout_rate: f64,
}

impl Default for LinkFaultSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            corrupt_rate: 0.0,
            timeout_rate: 0.0,
        }
    }
}

impl LinkFaultSpec {
    /// Parses a `key=value` comma list, e.g.
    /// `"seed=3,corrupt=0.05,timeout=0.01"`. Unknown keys, malformed
    /// values, and probabilities outside `[0, 1]` are rejected.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("link spec entry `{part}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let prob = |what: &str| -> Result<f64, String> {
                let r: f64 = value
                    .parse()
                    .map_err(|_| format!("invalid {what} value `{value}`"))?;
                if !r.is_finite() || r < 0.0 {
                    return Err(format!("{what} must be a finite non-negative number"));
                }
                if r > 1.0 {
                    return Err(format!("{what} must be <= 1"));
                }
                Ok(r)
            };
            match key {
                "seed" => {
                    out.seed = value
                        .parse()
                        .map_err(|_| format!("invalid seed value `{value}`"))?;
                }
                "corrupt" => out.corrupt_rate = prob("corrupt probability")?,
                "timeout" => out.timeout_rate = prob("timeout probability")?,
                other => return Err(format!("unknown link spec key `{other}`")),
            }
        }
        Ok(out)
    }

    /// True if no transfer fault can ever fire under this spec.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.corrupt_rate == 0.0 && self.timeout_rate == 0.0
    }
}

/// The fault outcome drawn for one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkDraw {
    /// Transfer was corrupted in flight; the CRC check catches it and
    /// a retransmit recovers the payload (time doubles).
    pub corrupt: bool,
    /// Transfer timed out; the shard attempt fails.
    pub timeout: bool,
}

impl LinkDraw {
    /// True when the transfer completed cleanly first try.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.corrupt && !self.timeout
    }
}

/// Per-task link-fault generator: the spec plus a transfer epoch.
/// Deliberately *task-scoped*, not device-resident — work stealing
/// lets two shards of one owner execute concurrently, so the pool
/// coordinator binds a fresh state (seed decorrelated by batch and
/// slot) into each task and transfers advance it task-locally. A
/// draw sequence is then a pure function of `(spec, batch, slot,
/// transfer ordinal)` regardless of which host thread runs the task.
#[derive(Debug, Clone)]
pub struct LinkFaultState {
    spec: LinkFaultSpec,
    epoch: u64,
}

impl LinkFaultState {
    /// New state at transfer epoch 0.
    #[must_use]
    pub fn new(spec: LinkFaultSpec) -> Self {
        Self { spec, epoch: 0 }
    }

    /// The configured spec.
    #[must_use]
    pub fn spec(&self) -> &LinkFaultSpec {
        &self.spec
    }

    /// Draws the fault outcome of the next transfer and advances the
    /// epoch. Both draws are always consumed; a timeout preempts a
    /// simultaneous corruption (the transfer never finishes, so there
    /// is nothing for the CRC to catch).
    pub fn next_draw(&mut self) -> LinkDraw {
        let epoch = self.epoch;
        self.epoch += 1;
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.spec.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let corrupt = rng.gen_bool(self.spec.corrupt_rate);
        let timeout = rng.gen_bool(self.spec.timeout_rate);
        LinkDraw {
            corrupt: corrupt && !timeout,
            timeout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> FaultSpec {
        FaultSpec::parse(s).expect("valid spec")
    }

    #[test]
    fn parse_full_spec() {
        let s = spec("seed=7,smem=0.5,reg=1,dram=0.25,sm=0.01,watchdog=0.001");
        assert_eq!(s.seed, 7);
        assert_eq!(s.smem_rate, 0.5);
        assert_eq!(s.reg_rate, 1.0);
        assert_eq!(s.dram_rate, 0.25);
        assert_eq!(s.sm_loss_rate, 0.01);
        assert_eq!(s.watchdog_rate, 0.001);
        assert!(!s.is_quiet());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("smem").is_err());
        assert!(FaultSpec::parse("smem=-1").is_err());
        assert!(FaultSpec::parse("sm=1.5").is_err());
        assert!(FaultSpec::parse("watchdog=2").is_err());
        assert!(FaultSpec::parse("seed=abc").is_err());
        assert!(FaultSpec::parse("smem=nan").is_err());
    }

    #[test]
    fn empty_spec_is_quiet() {
        assert!(spec("").is_quiet());
        assert!(spec("seed=9").is_quiet());
    }

    #[test]
    fn draws_are_deterministic_per_epoch() {
        let s = spec("seed=42,smem=3,reg=2,dram=1.5");
        let mut a = FaultState::new(s);
        let mut b = FaultState::new(s);
        for _ in 0..4 {
            let da = a.next_draw(64, 13);
            let db = b.next_draw(64, 13);
            assert_eq!(da.launch_fault, db.launch_fault);
            assert_eq!(da.plan.smem, db.plan.smem);
            assert_eq!(da.plan.reg, db.plan.reg);
            assert_eq!(da.plan.dram, db.plan.dram);
        }
    }

    #[test]
    fn epochs_draw_different_schedules() {
        let mut st = FaultState::new(spec("seed=1,smem=4,dram=4"));
        let d0 = st.next_draw(1024, 13);
        let d1 = st.next_draw(1024, 13);
        assert_eq!(st.epoch(), 2);
        assert!(
            d0.plan.smem != d1.plan.smem || d0.plan.dram != d1.plan.dram,
            "consecutive epochs should not repeat the schedule"
        );
    }

    #[test]
    fn integer_rates_guarantee_event_counts() {
        let mut st = FaultState::new(spec("seed=5,smem=3"));
        let d = st.next_draw(16, 13);
        let total: usize = d.plan.smem.values().map(Vec::len).sum();
        assert_eq!(total, 3, "rate 3.0 must schedule exactly 3 events");
        assert!(d.plan.reg.is_empty() && d.plan.dram.is_empty());
    }

    #[test]
    fn quiet_spec_never_faults() {
        let mut st = FaultState::new(FaultSpec::default());
        for _ in 0..32 {
            let d = st.next_draw(64, 13);
            assert!(d.launch_fault.is_none());
            assert!(d.plan.is_empty());
        }
    }

    #[test]
    fn certain_sm_loss_kills_every_launch() {
        let mut st = FaultState::new(spec("sm=1"));
        for _ in 0..8 {
            let d = st.next_draw(64, 13);
            match d.launch_fault {
                Some(LaunchFault::SmLost { sm }) => assert!(sm < 13),
                other => panic!("expected SmLost, got {other:?}"),
            }
        }
    }

    #[test]
    fn block_faults_groups_by_block() {
        let mut st = FaultState::new(spec("seed=3,smem=8,reg=8"));
        let d = st.next_draw(4, 13);
        let mut seen = 0usize;
        for b in 0..4u64 {
            if let Some(f) = d.plan.block_faults(b) {
                seen += f.smem.len() + f.reg.len();
            }
        }
        assert_eq!(seen, 16, "every scheduled event belongs to some block");
        assert!(d.plan.block_faults(99).is_none());
    }

    #[test]
    fn counters_merge_and_emptiness() {
        let mut c = FaultCounters::default();
        assert!(c.is_empty());
        c.merge(&FaultCounters {
            smem_flips: 1,
            reg_flips: 2,
            dram_flips: 3,
            launch_faults: 4,
        });
        assert!(!c.is_empty());
        assert_eq!(
            c.smem_flips + c.reg_flips + c.dram_flips + c.launch_faults,
            10
        );
    }

    #[test]
    fn spec_serde_round_trips() {
        use serde::{Deserialize, Serialize};
        let s = spec("seed=11,smem=0.25,sm=0.5");
        let back = FaultSpec::from_value(&s.to_value()).expect("round trip");
        assert_eq!(s, back);
    }

    fn lifecycle(s: &str) -> LifecycleSpec {
        LifecycleSpec::parse(s).expect("valid lifecycle spec")
    }

    #[test]
    fn lifecycle_parse_full_spec() {
        let s = lifecycle("seed=7,hang=0.1,loss=0.01,recover=0.5");
        assert_eq!(s.seed, 7);
        assert_eq!(s.hang_rate, 0.1);
        assert_eq!(s.loss_rate, 0.01);
        assert_eq!(s.recover_rate, 0.5);
        assert!(!s.is_quiet());
    }

    #[test]
    fn lifecycle_parse_rejects_garbage() {
        assert!(LifecycleSpec::parse("bogus=1").is_err());
        assert!(LifecycleSpec::parse("hang").is_err());
        assert!(LifecycleSpec::parse("hang=-1").is_err());
        assert!(LifecycleSpec::parse("hang=1.5").is_err());
        assert!(LifecycleSpec::parse("loss=2").is_err());
        assert!(LifecycleSpec::parse("recover=nan").is_err());
        assert!(LifecycleSpec::parse("seed=abc").is_err());
    }

    #[test]
    fn lifecycle_empty_and_recover_only_specs_are_quiet() {
        assert!(lifecycle("").is_quiet());
        assert!(lifecycle("seed=9,recover=1").is_quiet());
        assert!(!lifecycle("hang=0.1").is_quiet());
        assert!(!lifecycle("loss=0.1").is_quiet());
    }

    #[test]
    fn quiet_lifecycle_stays_healthy_forever() {
        let mut st = LifecycleState::new(LifecycleSpec::default());
        for _ in 0..64 {
            assert_eq!(st.advance(), DevicePhase::Healthy);
        }
        assert_eq!(st.epoch(), 64);
    }

    #[test]
    fn lifecycle_trajectory_is_deterministic() {
        let s = lifecycle("seed=42,hang=0.3,loss=0.05,recover=0.4");
        let mut a = LifecycleState::new(s);
        let mut b = LifecycleState::new(s);
        for _ in 0..64 {
            assert_eq!(a.advance(), b.advance());
        }
    }

    #[test]
    fn certain_hang_and_recover_flap() {
        // hang=1, recover=1: the device alternates Hung/Healthy every
        // epoch — the flapping pattern the health monitor must ride.
        let mut st = LifecycleState::new(lifecycle("hang=1,recover=1"));
        assert_eq!(st.advance(), DevicePhase::Hung);
        assert_eq!(st.advance(), DevicePhase::Healthy);
        assert_eq!(st.advance(), DevicePhase::Hung);
        assert_eq!(st.advance(), DevicePhase::Healthy);
    }

    #[test]
    fn loss_is_absorbing_even_with_certain_recovery() {
        let mut st = LifecycleState::new(lifecycle("loss=1,recover=1"));
        for _ in 0..8 {
            assert_eq!(st.advance(), DevicePhase::Lost);
        }
        assert!(!DevicePhase::Lost.is_healthy());
        assert!(!DevicePhase::Hung.is_healthy());
        assert!(DevicePhase::Healthy.is_healthy());
    }

    #[test]
    fn lifecycle_spec_serde_round_trips() {
        use serde::{Deserialize, Serialize};
        let s = lifecycle("seed=11,hang=0.25,loss=0.5");
        let back = LifecycleSpec::from_value(&s.to_value()).expect("round trip");
        assert_eq!(s, back);
    }

    fn link(s: &str) -> LinkFaultSpec {
        LinkFaultSpec::parse(s).expect("valid link spec")
    }

    #[test]
    fn link_parse_full_spec() {
        let s = link("seed=3,corrupt=0.05,timeout=0.01");
        assert_eq!(s.seed, 3);
        assert_eq!(s.corrupt_rate, 0.05);
        assert_eq!(s.timeout_rate, 0.01);
        assert!(!s.is_quiet());
    }

    #[test]
    fn link_parse_rejects_garbage() {
        assert!(LinkFaultSpec::parse("bogus=1").is_err());
        assert!(LinkFaultSpec::parse("corrupt").is_err());
        assert!(LinkFaultSpec::parse("corrupt=-1").is_err());
        assert!(LinkFaultSpec::parse("corrupt=1.5").is_err());
        assert!(LinkFaultSpec::parse("timeout=2").is_err());
        assert!(LinkFaultSpec::parse("seed=abc").is_err());
    }

    #[test]
    fn quiet_link_spec_never_faults() {
        assert!(link("").is_quiet());
        assert!(link("seed=5").is_quiet());
        let mut st = LinkFaultState::new(LinkFaultSpec::default());
        for _ in 0..64 {
            assert!(st.next_draw().is_clean());
        }
    }

    #[test]
    fn link_draws_are_deterministic_and_vary_by_epoch() {
        let s = link("seed=9,corrupt=0.5,timeout=0.25");
        let mut a = LinkFaultState::new(s);
        let mut b = LinkFaultState::new(s);
        let da: Vec<LinkDraw> = (0..64).map(|_| a.next_draw()).collect();
        let db: Vec<LinkDraw> = (0..64).map(|_| b.next_draw()).collect();
        assert_eq!(da, db);
        assert!(
            da.iter().any(|d| d.corrupt) && da.iter().any(|d| d.is_clean()),
            "a 50% corrupt stream must mix clean and corrupt draws"
        );
    }

    #[test]
    fn link_timeout_preempts_corruption() {
        let mut st = LinkFaultState::new(link("corrupt=1,timeout=1"));
        for _ in 0..8 {
            let d = st.next_draw();
            assert!(d.timeout && !d.corrupt, "timeout wins over corruption");
        }
    }

    #[test]
    fn link_spec_serde_round_trips() {
        use serde::{Deserialize, Serialize};
        let s = link("seed=4,corrupt=0.125,timeout=0.0625");
        let back = LinkFaultSpec::from_value(&s.to_value()).expect("round trip");
        assert_eq!(s, back);
    }
}
