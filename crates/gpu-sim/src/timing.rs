//! Analytical timing model: roofline-with-latency plus a CUDA-C
//! penalty model.
//!
//! The simulator does not execute cycle-by-cycle; it derives a kernel's
//! execution time from its *measured* event counts (the same counters
//! nvprof reports) and the device's documented throughputs:
//!
//! ```text
//! cycles = max( issue, core, sfu, lsu, l2, dram, exposed-latency )
//!          + barrier cost + launch overhead
//! ```
//!
//! * **issue** — warp instructions / (schedulers × SMs × dual-issue).
//! * **core** — FFMA + FADD/FMUL + integer instructions / (4 warp
//!   issues per clock per SM on GM204's 128 cores).
//! * **sfu** — special-function instructions / (1 per clock per SM).
//! * **lsu** — load/store instructions + shared-memory transaction
//!   replays / (1 per clock per SM).
//! * **l2 / dram** — sector bytes over the respective bandwidths.
//! * **exposed latency** — Little's-law residue: if the resident warps
//!   × per-warp memory-level parallelism cannot cover the average
//!   memory latency, the remainder shows up as stall cycles.
//!
//! The **CUDA-C penalty model** applies the three mechanisms the paper
//! blames for its 1.5–2.0× GEMM gap against cuBLAS (§V-A): (1) no
//! control over register-bank conflicts ⇒ FFMA replay factor; (2) no
//! dual issue from compiler-scheduled code; (3) `__syncthreads()` is
//! the only synchronisation primitive and is far costlier than the
//! fine-grained barriers hand-written SASS uses. The `Vendor` model
//! (our stand-in for cuBLAS, see DESIGN.md §2) turns all three off.

use serde::{Deserialize, Serialize};

use crate::config::DeviceConfig;
use crate::kernel::{ExecModel, TimingHints};
use crate::occupancy::Occupancy;
use crate::profiler::{Counters, MemTraffic};

/// Tunable constants of the timing model. Every field is documented
/// with its provenance; none is fitted to the paper's output numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Register-file bank-conflict replay factor on FFMAs for
    /// compiler-scheduled CUDA-C (maxas documentation measures ~25–40%
    /// replay on unscheduled operand patterns; we take the middle).
    pub cudac_ffma_replay: f64,
    /// Scheduler efficiency of compiler-scheduled code (stall slots the
    /// compiler fails to fill; CUDA C Best Practices puts typical
    /// achieved issue at 75–85% for tight ALU loops).
    pub cudac_issue_efficiency: f64,
    /// Dual-issue factor available to hand-scheduled SASS (Maxwell
    /// schedulers can dual-issue one ALU + one LSU/SFU per clock;
    /// maxas GEMM sustains ~1.5 effective issue).
    pub vendor_dual_issue: f64,
    /// Fraction of load/store-pipe work hand-scheduled SASS hides by
    /// dual-issuing LDS/LDG with FFMAs (maxas interleaves them
    /// explicitly; the CUDA-C compiler does not).
    pub vendor_lsu_overlap: f64,
    /// Cycles for a `__syncthreads()` barrier to drain and refill the
    /// pipeline (Maxwell microbenchmarks: 30–60 clocks; we use 40).
    pub syncthreads_cycles: f64,
    /// Fraction of the barrier cost hidden by the *other* resident
    /// blocks on the SM (a second CTA keeps the pipes busy while the
    /// first waits — §III-A's motivation for 2 blocks/SM).
    pub barrier_overlap_per_extra_block: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self {
            cudac_ffma_replay: 1.35,
            cudac_issue_efficiency: 0.70,
            vendor_dual_issue: 1.50,
            vendor_lsu_overlap: 0.5,
            syncthreads_cycles: 40.0,
            barrier_overlap_per_extra_block: 0.5,
        }
    }
}

/// Output of the timing model for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Estimated execution cycles (core clock).
    pub cycles: f64,
    /// Estimated execution time in seconds.
    pub time_s: f64,
    /// Throughput term: instruction issue.
    pub issue_cycles: f64,
    /// Throughput term: FP32/integer core pipe.
    pub core_cycles: f64,
    /// Throughput term: special-function pipe.
    pub sfu_cycles: f64,
    /// Throughput term: load/store pipe incl. shared-memory replays.
    pub lsu_cycles: f64,
    /// Throughput term: L2 bandwidth.
    pub l2_cycles: f64,
    /// Throughput term: DRAM bandwidth.
    pub dram_cycles: f64,
    /// Latency not hidden by warp parallelism.
    pub exposed_latency_cycles: f64,
    /// Serialised `__syncthreads()` cost (CUDA-C only).
    pub barrier_cycles: f64,
    /// Which term bound the kernel.
    pub bound: Bound,
}

/// The binding resource of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Instruction issue.
    Issue,
    /// FP32 core pipe.
    Core,
    /// Special-function pipe.
    Sfu,
    /// Load/store pipe (incl. bank-conflict replays).
    Lsu,
    /// L2 bandwidth.
    L2,
    /// DRAM bandwidth.
    Dram,
    /// Exposed memory latency.
    Latency,
}

/// Estimates the execution time of a kernel from its counters.
///
/// `occ` must be the occupancy of the launch, `blocks` the total grid
/// size; `mem` the L2/DRAM traffic attributed to the launch.
#[must_use]
pub fn estimate(
    dev: &DeviceConfig,
    params: &TimingParams,
    hints: &TimingHints,
    counters: &Counters,
    mem: &MemTraffic,
    occ: &Occupancy,
    blocks: u64,
) -> KernelTiming {
    let sms = dev.num_sms as f64;
    let c = counters;

    // --- Issue ---------------------------------------------------------
    let (issue_rate, ffma_replay) = match hints.exec_model {
        ExecModel::CudaC => (
            dev.warp_schedulers as f64 * params.cudac_issue_efficiency,
            params.cudac_ffma_replay,
        ),
        ExecModel::Vendor => (dev.warp_schedulers as f64 * params.vendor_dual_issue, 1.0),
    };
    let issue_cycles = c.warp_insts() as f64 / (sms * issue_rate);

    // --- Core (FP32 + integer share the 128 CUDA cores) ----------------
    let core_insts = c.ffma_insts as f64 * ffma_replay + c.falu_insts as f64 + c.alu_insts as f64;
    let core_cycles = core_insts / (sms * dev.ffma_warps_per_clk_per_sm());

    // --- SFU ------------------------------------------------------------
    let sfu_cycles = c.sfu_insts as f64 / (sms * dev.sfu_warps_per_clk_per_sm());

    // --- LSU: one warp ld/st instruction per clock per SM; shared
    //     replays occupy extra slots; atomics go through LSU too. ------
    let smem_replays = (c.smem.load_transactions + c.smem.store_transactions) as f64
        - (c.smem.load_instructions + c.smem.store_instructions) as f64;
    let lsu_insts = (c.global_load_insts
        + c.global_store_insts
        + c.atomic_insts
        + c.smem.load_instructions
        + c.smem.store_instructions) as f64
        + smem_replays.max(0.0);
    let lsu_cycles = match hints.exec_model {
        ExecModel::CudaC => lsu_insts / sms,
        ExecModel::Vendor => lsu_insts * (1.0 - params.vendor_lsu_overlap) / sms,
    };

    // --- L2 bandwidth ----------------------------------------------------
    let l2_bytes = (mem.l2_transactions() + c.atomic_sectors * 2) as f64 * dev.sector_bytes as f64;
    let l2_cycles = l2_bytes / dev.l2_bytes_per_clk;

    // --- DRAM bandwidth --------------------------------------------------
    let dram_bytes = mem.dram_transactions() as f64 * dev.sector_bytes as f64;
    let dram_cycles = dram_bytes / dev.dram_bytes_per_clk();

    // --- Exposed latency (Little's law residue) -------------------------
    // Average latency per global load: weighted by L2 hit rate.
    let loads = (c.global_load_insts + c.atomic_insts) as f64;
    let exposed_latency_cycles = if loads > 0.0 {
        let hit_rate = if mem.l2_reads > 0 {
            mem.l2_read_hits as f64 / mem.l2_reads as f64
        } else {
            1.0
        };
        let avg_lat = hit_rate * dev.l2_latency_clk + (1.0 - hit_rate) * dev.dram_latency_clk;
        // Concurrency: resident warps per SM, each with `mlp`
        // outstanding requests.
        let concurrency = (occ.warps_per_sm as f64 * hints.mlp).max(1.0);
        (loads / sms) * avg_lat / concurrency
    } else {
        0.0
    };

    // --- Barriers (serialised; partially hidden by co-resident CTAs) ---
    let barrier_cycles = if matches!(hints.exec_model, ExecModel::CudaC) {
        let barriers_total = if occ.warps_per_sm > 0 {
            // sync_insts counts per-warp executions; one barrier per
            // block-wide sync ⇒ divide by warps per block.
            c.sync_insts as f64 / (occ.warps_per_sm as f64 / occ.blocks_per_sm as f64).max(1.0)
        } else {
            0.0
        };
        let hide = 1.0
            - params.barrier_overlap_per_extra_block * (occ.blocks_per_sm as f64 - 1.0).min(1.0);
        let concurrency = sms * occ.blocks_per_sm as f64;
        barriers_total * params.syncthreads_cycles * hide.max(0.25) / concurrency.max(1.0)
    } else {
        0.0
    };

    // --- Tail effect: partial last wave -----------------------------------
    // Per-SM throughput terms assume all SMs stay busy; a grid smaller
    // than one full wave (or with a partial last wave) leaves SMs idle.
    // Scale per-SM terms by ceil(waves)/exact(waves) ≥ 1. Device-wide
    // resources (L2, DRAM) are unaffected.
    let blocks_per_wave = (occ.blocks_per_sm as u64 * dev.num_sms as u64).max(1);
    let exact_waves = blocks as f64 / blocks_per_wave as f64;
    let sm_scale = if exact_waves > 0.0 {
        blocks.div_ceil(blocks_per_wave) as f64 / exact_waves
    } else {
        1.0
    };

    let issue_cycles = issue_cycles * sm_scale;
    let core_cycles = core_cycles * sm_scale;
    let sfu_cycles = sfu_cycles * sm_scale;
    let lsu_cycles = lsu_cycles * sm_scale;

    let (bound, throughput) = [
        (Bound::Issue, issue_cycles),
        (Bound::Core, core_cycles),
        (Bound::Sfu, sfu_cycles),
        (Bound::Lsu, lsu_cycles),
        (Bound::L2, l2_cycles),
        (Bound::Dram, dram_cycles),
        (Bound::Latency, exposed_latency_cycles),
    ]
    .into_iter()
    .max_by(|a, b| a.1.total_cmp(&b.1))
    .expect("non-empty");

    let cycles = throughput + barrier_cycles + dev.launch_overhead_us * 1e-6 * dev.clock_hz();
    let time_s = cycles / dev.clock_hz();

    KernelTiming {
        cycles,
        time_s,
        issue_cycles,
        core_cycles,
        sfu_cycles,
        lsu_cycles,
        l2_cycles,
        dram_cycles,
        exposed_latency_cycles,
        barrier_cycles,
        bound,
    }
}

/// Costs one host↔device transfer over `link` and returns the profile
/// entry to attach to a [`crate::profiler::PipelineProfile`]. The
/// alpha-beta model lives on [`Interconnect::transfer_time_s`]; this
/// helper only packages the result with its provenance labels.
#[must_use]
pub fn estimate_transfer(
    link: &crate::config::Interconnect,
    label: impl Into<String>,
    bytes: u64,
) -> crate::profiler::TransferProfile {
    crate::profiler::TransferProfile {
        label: label.into(),
        link: link.name.clone(),
        bytes,
        time_s: link.transfer_time_s(bytes),
        crc_detected: 0,
        retransmits: 0,
        timed_out: false,
    }
}

/// Costs one transfer under a link-fault draw. A zero-byte transfer
/// issues no DMA and cannot fault. A timeout marks the entry
/// `timed_out` without charging extra time — the caller fails the
/// shard attempt and re-serves it, so the wasted wall clock is
/// charged by the retry path, not the ledger. A CRC-detected
/// corruption is recovered by one retransmit: payload bytes are
/// unchanged, time doubles, and the `crc_detected`/`retransmits`
/// counters record the event.
#[must_use]
pub fn estimate_transfer_faulted(
    link: &crate::config::Interconnect,
    label: impl Into<String>,
    bytes: u64,
    draw: crate::fault::LinkDraw,
) -> crate::profiler::TransferProfile {
    let mut t = estimate_transfer(link, label, bytes);
    if bytes == 0 {
        return t;
    }
    if draw.timeout {
        t.timed_out = true;
    } else if draw.corrupt {
        t.crc_detected = 1;
        t.retransmits = 1;
        t.time_s *= 2.0;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelResources;
    use crate::occupancy::occupancy;
    use crate::smem::SmemStats;

    fn dev() -> DeviceConfig {
        DeviceConfig::gtx970()
    }

    fn occ2() -> Occupancy {
        occupancy(
            &dev(),
            &KernelResources {
                threads_per_block: 256,
                regs_per_thread: 128,
                smem_bytes_per_block: 16384,
            },
        )
    }

    fn compute_heavy_counters() -> Counters {
        Counters {
            ffma_insts: 100_000_000,
            thread_insts: 3_200_000_000,
            flops: 6_400_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn compute_bound_kernel_is_core_bound() {
        let c = compute_heavy_counters();
        let m = MemTraffic::default();
        let t = estimate(
            &dev(),
            &TimingParams::default(),
            &TimingHints::default(),
            &c,
            &m,
            &occ2(),
            1000,
        );
        // A pure-FFMA CUDA-C kernel is bound by the compute side:
        // either the core pipe (with the replay penalty) or issue
        // (with the scheduler-efficiency penalty); the two are within
        // a few percent of each other by construction.
        assert!(
            matches!(t.bound, Bound::Core | Bound::Issue),
            "bound {:?}",
            t.bound
        );
        assert!(t.core_cycles > t.dram_cycles);
    }

    #[test]
    fn vendor_model_is_faster_on_the_same_counters() {
        let c = compute_heavy_counters();
        let m = MemTraffic::default();
        let p = TimingParams::default();
        let cudac = estimate(
            &dev(),
            &p,
            &TimingHints {
                exec_model: ExecModel::CudaC,
                mlp: 4.0,
            },
            &c,
            &m,
            &occ2(),
            1000,
        );
        let vendor = estimate(
            &dev(),
            &p,
            &TimingHints {
                exec_model: ExecModel::Vendor,
                mlp: 4.0,
            },
            &c,
            &m,
            &occ2(),
            1000,
        );
        assert!(vendor.time_s < cudac.time_s);
        let ratio = cudac.time_s / vendor.time_s;
        assert!(ratio > 1.1 && ratio < 2.5, "penalty ratio {ratio}");
    }

    #[test]
    fn dram_heavy_kernel_is_dram_bound() {
        let c = Counters {
            global_load_insts: 10_000_000,
            thread_insts: 320_000_000,
            ..Default::default()
        };
        let m = MemTraffic {
            l2_reads: 40_000_000,
            l2_read_hits: 0,
            l2_read_misses: 40_000_000,
            ..Default::default()
        };
        let t = estimate(
            &dev(),
            &TimingParams::default(),
            &TimingHints::default(),
            &c,
            &m,
            &occ2(),
            10_000,
        );
        assert_eq!(t.bound, Bound::Dram);
    }

    #[test]
    fn bank_conflicts_inflate_lsu_time() {
        let base = Counters {
            smem: SmemStats {
                load_instructions: 1_000_000,
                load_transactions: 1_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let conflicted = Counters {
            smem: SmemStats {
                load_instructions: 1_000_000,
                load_transactions: 8_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let m = MemTraffic::default();
        let p = TimingParams::default();
        let h = TimingHints::default();
        let t0 = estimate(&dev(), &p, &h, &base, &m, &occ2(), 100);
        let t1 = estimate(&dev(), &p, &h, &conflicted, &m, &occ2(), 100);
        assert!(t1.lsu_cycles > 6.0 * t0.lsu_cycles);
    }

    #[test]
    fn low_occupancy_exposes_latency() {
        let c = Counters {
            global_load_insts: 1_000_000,
            thread_insts: 32_000_000,
            ..Default::default()
        };
        let m = MemTraffic {
            l2_reads: 4_000_000,
            l2_read_misses: 4_000_000,
            ..Default::default()
        };
        let p = TimingParams::default();
        let occ_low = occupancy(
            &dev(),
            &KernelResources {
                threads_per_block: 32,
                regs_per_thread: 255,
                smem_bytes_per_block: 0,
            },
        );
        let occ_high = occ2();
        let h = TimingHints {
            exec_model: ExecModel::CudaC,
            mlp: 1.0,
        };
        let t_low = estimate(&dev(), &p, &h, &c, &m, &occ_low, 1000);
        let t_high = estimate(&dev(), &p, &h, &c, &m, &occ_high, 1000);
        assert!(t_low.exposed_latency_cycles > t_high.exposed_latency_cycles);
    }

    #[test]
    fn time_is_positive_and_monotone_in_work() {
        let m = MemTraffic::default();
        let p = TimingParams::default();
        let h = TimingHints::default();
        let mut last = 0.0;
        for scale in [1u64, 10, 100] {
            let c = Counters {
                ffma_insts: 1_000_000 * scale,
                ..Default::default()
            };
            let t = estimate(&dev(), &p, &h, &c, &m, &occ2(), 26 * scale);
            assert!(t.time_s > last);
            last = t.time_s;
        }
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let t = estimate(
            &dev(),
            &TimingParams::default(),
            &TimingHints::default(),
            &Counters::default(),
            &MemTraffic::default(),
            &occ2(),
            1,
        );
        let overhead_s = dev().launch_overhead_us * 1e-6;
        assert!((t.time_s - overhead_s).abs() / overhead_s < 0.01);
    }

    #[test]
    fn sfu_heavy_kernel_is_sfu_bound() {
        let c = Counters {
            sfu_insts: 50_000_000,
            thread_insts: 1_600_000_000,
            ..Default::default()
        };
        let t = estimate(
            &dev(),
            &TimingParams::default(),
            &TimingHints::default(),
            &c,
            &MemTraffic::default(),
            &occ2(),
            1000,
        );
        assert_eq!(t.bound, Bound::Sfu);
    }

    #[test]
    fn faulted_transfer_charges_retransmits_and_marks_timeouts() {
        use crate::config::Interconnect;
        use crate::fault::LinkDraw;
        let link = Interconnect::pcie3_x16();
        let clean = estimate_transfer(&link, "targets B", 1 << 20);

        // A clean draw is byte-identical to the fault-free estimate.
        let quiet = estimate_transfer_faulted(&link, "targets B", 1 << 20, LinkDraw::default());
        assert_eq!(quiet, clean);

        // CRC-detected corruption: one retransmit, double time, same
        // payload bytes.
        let corrupt = estimate_transfer_faulted(
            &link,
            "targets B",
            1 << 20,
            LinkDraw {
                corrupt: true,
                timeout: false,
            },
        );
        assert_eq!(corrupt.crc_detected, 1);
        assert_eq!(corrupt.retransmits, 1);
        assert!(!corrupt.timed_out);
        assert_eq!(corrupt.bytes, clean.bytes);
        assert!((corrupt.time_s - 2.0 * clean.time_s).abs() < 1e-15);

        // Timeout: marked, no extra time (the retry path pays).
        let lost = estimate_transfer_faulted(
            &link,
            "targets B",
            1 << 20,
            LinkDraw {
                corrupt: false,
                timeout: true,
            },
        );
        assert!(lost.timed_out);
        assert_eq!(lost.crc_detected, 0);
        assert_eq!(lost.time_s, clean.time_s);

        // Zero bytes: no DMA, no fault, regardless of the draw.
        let empty = estimate_transfer_faulted(
            &link,
            "shard A",
            0,
            LinkDraw {
                corrupt: true,
                timeout: true,
            },
        );
        assert!(!empty.timed_out && empty.crc_detected == 0);
        assert_eq!(empty.time_s, 0.0);
    }
}
