//! Warp-level access traces for static analysis.
//!
//! A [`TraceSink`] rides along with a [`crate::traffic::TrafficSink`]
//! and records every warp-level memory event — which warp issued it,
//! which shared words / global elements it touched, whether it read or
//! wrote, and in which *barrier epoch* it happened. The epoch is the
//! number of `__syncthreads()` barriers the block has executed so far;
//! two shared-memory accesses are ordered (happen-before) iff they lie
//! in different epochs or in the same warp. `ks-analyze` consumes the
//! recorded [`BlockTrace`]s to prove the invariants the paper only
//! asserts (§III-A/§III-B): race-freedom of the double-buffered tile
//! pipeline, conflict-freedom of the Fig. 5 swizzled layout, and
//! barrier convergence.
//!
//! Tracing moves no data: it piggybacks on the symbolic
//! `block_traffic` replay, so paper-scale geometry still traces in
//! microseconds per block.

use crate::buffer::BufId;
use crate::traffic::WarpIdx;

/// Direction of a recorded memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDir {
    /// Load.
    Read,
    /// Store.
    Write,
    /// Read-modify-write (global atomics). Orders like a write, but
    /// atomics to the same word never race with each other.
    Atomic,
}

impl AccessDir {
    /// Whether the access modifies memory.
    #[must_use]
    pub fn is_write(self) -> bool {
        !matches!(self, AccessDir::Read)
    }
}

/// One warp-wide shared-memory access.
#[derive(Debug, Clone)]
pub struct SharedAccess {
    /// Warp that issued the access (index within the block).
    pub warp: u32,
    /// Barrier epoch at issue time.
    pub epoch: u32,
    /// Base word index per lane (`None` = inactive lane).
    pub words: [Option<u32>; 32],
    /// Words per lane (1 = LDS.32, 2 = LDS.64, 4 = LDS.128).
    pub vlen: u32,
    /// Load or store.
    pub dir: AccessDir,
}

/// One warp-wide global-memory access.
#[derive(Debug, Clone)]
pub struct GlobalAccess {
    /// Warp that issued the access (index within the block).
    pub warp: u32,
    /// Barrier epoch at issue time.
    pub epoch: u32,
    /// Buffer the access targets.
    pub buf: BufId,
    /// Base element index per lane (`None` = inactive lane).
    pub idx: WarpIdx,
    /// Words per lane (1 = LDG.32, 2 = LDG.64, 4 = LDG.128).
    pub vlen: u32,
    /// Load, store, or atomic.
    pub dir: AccessDir,
}

/// One `__syncthreads()` barrier event.
#[derive(Debug, Clone, Copy)]
pub struct BarrierEvent {
    /// Number of warps that participated.
    pub warps: u64,
    /// Epoch the barrier *closed* (accesses with this epoch happened
    /// before the barrier).
    pub epoch: u32,
}

/// All events recorded while replaying one block.
#[derive(Debug, Clone, Default)]
pub struct BlockTrace {
    /// Linear block index (as passed to `begin_block`).
    pub block: u64,
    /// Shared-memory accesses in program order.
    pub shared: Vec<SharedAccess>,
    /// Global-memory accesses in program order.
    pub global: Vec<GlobalAccess>,
    /// Barriers in program order.
    pub barriers: Vec<BarrierEvent>,
}

impl BlockTrace {
    /// Number of barrier epochs in the block (`last epoch + 1`).
    #[must_use]
    pub fn epochs(&self) -> u32 {
        self.barriers.len() as u32 + 1
    }
}

/// Recorder for per-block warp-level access traces.
///
/// Attach with [`crate::traffic::TrafficSink::set_trace`]; kernels
/// announce the issuing warp via `begin_warp` on their machine
/// abstraction, and every subsequent event is tagged with that warp
/// and the running barrier-epoch counter.
#[derive(Debug, Default)]
pub struct TraceSink {
    blocks: Vec<BlockTrace>,
    warp: u32,
    epoch: u32,
}

impl TraceSink {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts recording a new block; resets the warp and epoch state.
    pub fn begin_block(&mut self, block: u64) {
        self.blocks.push(BlockTrace {
            block,
            ..BlockTrace::default()
        });
        self.warp = 0;
        self.epoch = 0;
    }

    /// Announces the warp issuing subsequent events.
    pub fn begin_warp(&mut self, warp: u32) {
        self.warp = warp;
    }

    /// Records a shared-memory access by the current warp.
    pub fn shared(&mut self, words: &[Option<u32>; 32], vlen: u32, dir: AccessDir) {
        if let Some(b) = self.blocks.last_mut() {
            b.shared.push(SharedAccess {
                warp: self.warp,
                epoch: self.epoch,
                words: *words,
                vlen,
                dir,
            });
        }
    }

    /// Records a global-memory access by the current warp.
    pub fn global(&mut self, buf: BufId, idx: &WarpIdx, vlen: u32, dir: AccessDir) {
        if let Some(b) = self.blocks.last_mut() {
            b.global.push(GlobalAccess {
                warp: self.warp,
                epoch: self.epoch,
                buf,
                idx: *idx,
                vlen,
                dir,
            });
        }
    }

    /// Records a barrier and advances to the next epoch.
    pub fn barrier(&mut self, warps: u64) {
        let epoch = self.epoch;
        if let Some(b) = self.blocks.last_mut() {
            b.barriers.push(BarrierEvent { warps, epoch });
        }
        self.epoch += 1;
    }

    /// Recorded traces, one per `begin_block` call.
    #[must_use]
    pub fn blocks(&self) -> &[BlockTrace] {
        &self.blocks
    }

    /// Consumes the recorder, returning the traces.
    #[must_use]
    pub fn into_blocks(self) -> Vec<BlockTrace> {
        self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::GlobalMem;

    #[test]
    fn records_epochs_and_warps() {
        let mut mem = GlobalMem::new();
        let buf = mem.alloc_virtual(128);
        let mut t = TraceSink::new();
        t.begin_block(0);
        t.begin_warp(0);
        t.shared(&[Some(0); 32], 1, AccessDir::Write);
        t.barrier(8);
        t.begin_warp(3);
        t.shared(&[Some(0); 32], 1, AccessDir::Read);
        t.global(buf, &[Some(5); 32], 4, AccessDir::Write);
        let blocks = t.into_blocks();
        assert_eq!(blocks.len(), 1);
        let b = &blocks[0];
        assert_eq!(b.epochs(), 2);
        assert_eq!(b.shared[0].epoch, 0);
        assert_eq!(b.shared[0].warp, 0);
        assert!(b.shared[0].dir.is_write());
        assert_eq!(b.shared[1].epoch, 1);
        assert_eq!(b.shared[1].warp, 3);
        assert_eq!(b.barriers[0].epoch, 0);
        assert_eq!(b.global[0].warp, 3);
        assert_eq!(b.global[0].vlen, 4);
    }

    #[test]
    fn begin_block_resets_state() {
        let mut t = TraceSink::new();
        t.begin_block(0);
        t.begin_warp(7);
        t.barrier(8);
        t.begin_block(1);
        t.shared(&[None; 32], 1, AccessDir::Read);
        let blocks = t.into_blocks();
        assert_eq!(blocks[1].shared[0].warp, 0);
        assert_eq!(blocks[1].shared[0].epoch, 0);
        assert_eq!(blocks[1].block, 1);
    }
}
