//! nvprof-like counters and per-kernel / per-pipeline profiles.
//!
//! The paper's evaluation is driven entirely by profiler counters
//! (§IV: "all the performance metrics and events in this work are
//! measured with the nvprof profiling tool"). This module defines the
//! same counter set for the simulator:
//!
//! * instruction counts by pipe (FFMA, other FP, integer/ALU, SFU,
//!   load/store) at warp and thread granularity;
//! * shared-memory instructions vs transactions (replays = conflicts);
//! * L2 read/write sector transactions, hits and misses;
//! * DRAM read/write transactions (L2 fills and write-backs);
//! * scalar FLOP count (`flop_count_sp` equivalent);
//! * derived metrics: FLOP efficiency, L2 MPKI.

use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;
use crate::dim::LaunchConfig;
use crate::fault::FaultCounters;
use crate::kernel::KernelResources;
use crate::occupancy::Occupancy;
use crate::smem::SmemStats;
use crate::timing::KernelTiming;

/// Raw event counters accumulated by a [`crate::traffic::TrafficSink`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Warp-level FFMA instructions.
    pub ffma_insts: u64,
    /// Warp-level non-FMA floating-point instructions (FADD/FMUL…).
    pub falu_insts: u64,
    /// Warp-level integer/addressing/control instructions.
    pub alu_insts: u64,
    /// Warp-level special-function (MUFU: exp, rcp…) instructions.
    pub sfu_insts: u64,
    /// Warp-level global load instructions.
    pub global_load_insts: u64,
    /// Warp-level global store instructions.
    pub global_store_insts: u64,
    /// Warp-level global atomic instructions.
    pub atomic_insts: u64,
    /// Warp-level `__syncthreads()` executions (per warp).
    pub sync_insts: u64,
    /// Thread-level executed instructions (active lanes summed).
    pub thread_insts: u64,
    /// Scalar single-precision FLOPs (FMA = 2, FADD/FMUL = 1,
    /// special = 1 per lane).
    pub flops: u64,
    /// Shared-memory statistics.
    pub smem: SmemStats,
    /// Global sectors requested at L2 by reads (pre-hit/miss).
    pub l2_read_sectors: u64,
    /// Global sectors requested at L2 by writes.
    pub l2_write_sectors: u64,
    /// Sectors touched by atomics (read-modify-write in L2).
    pub atomic_sectors: u64,
    /// L1 sector lookups for global loads (0 unless the device caches
    /// global loads in L1).
    pub l1_read_sectors: u64,
    /// L1 hits among those lookups.
    pub l1_read_hits: u64,
}

impl Counters {
    /// Total warp-level instructions (nvprof `inst_executed`).
    #[must_use]
    pub fn warp_insts(&self) -> u64 {
        self.ffma_insts
            + self.falu_insts
            + self.alu_insts
            + self.sfu_insts
            + self.global_load_insts
            + self.global_store_insts
            + self.atomic_insts
            + self.sync_insts
            + self.smem.load_instructions
            + self.smem.store_instructions
    }

    /// Multiplies every counter by `f` (used to extrapolate one
    /// block's compute/shared counters across a homogeneous grid).
    pub fn scale(&mut self, f: u64) {
        self.ffma_insts *= f;
        self.falu_insts *= f;
        self.alu_insts *= f;
        self.sfu_insts *= f;
        self.global_load_insts *= f;
        self.global_store_insts *= f;
        self.atomic_insts *= f;
        self.sync_insts *= f;
        self.thread_insts *= f;
        self.flops *= f;
        self.smem.load_instructions *= f;
        self.smem.load_transactions *= f;
        self.smem.store_instructions *= f;
        self.smem.store_transactions *= f;
        self.l2_read_sectors *= f;
        self.l2_write_sectors *= f;
        self.atomic_sectors *= f;
        self.l1_read_sectors *= f;
        self.l1_read_hits *= f;
    }

    /// Accumulates another counter block.
    pub fn merge(&mut self, o: &Counters) {
        self.ffma_insts += o.ffma_insts;
        self.falu_insts += o.falu_insts;
        self.alu_insts += o.alu_insts;
        self.sfu_insts += o.sfu_insts;
        self.global_load_insts += o.global_load_insts;
        self.global_store_insts += o.global_store_insts;
        self.atomic_insts += o.atomic_insts;
        self.sync_insts += o.sync_insts;
        self.thread_insts += o.thread_insts;
        self.flops += o.flops;
        self.smem.merge(&o.smem);
        self.l2_read_sectors += o.l2_read_sectors;
        self.l2_write_sectors += o.l2_write_sectors;
        self.atomic_sectors += o.atomic_sectors;
        self.l1_read_sectors += o.l1_read_sectors;
        self.l1_read_hits += o.l1_read_hits;
    }
}

/// L2/DRAM traffic attributed to one kernel launch (delta of the
/// device cache statistics across the launch, including the
/// kernel-boundary flush of dirty lines).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTraffic {
    /// L2 read sector accesses.
    pub l2_reads: u64,
    /// L2 read hits.
    pub l2_read_hits: u64,
    /// L2 read misses (= DRAM read transactions).
    pub l2_read_misses: u64,
    /// L2 write sector accesses.
    pub l2_writes: u64,
    /// L2 write hits.
    pub l2_write_hits: u64,
    /// L2 write misses (allocated without fill).
    pub l2_write_misses: u64,
    /// DRAM write transactions (dirty write-backs + flush).
    pub dram_writes: u64,
}

impl MemTraffic {
    /// Delta between two cache snapshots.
    #[must_use]
    pub fn from_delta(before: &CacheStats, after: &CacheStats) -> Self {
        Self {
            l2_reads: after.read_accesses - before.read_accesses,
            l2_read_hits: after.read_hits - before.read_hits,
            l2_read_misses: after.read_misses - before.read_misses,
            l2_writes: after.write_accesses - before.write_accesses,
            l2_write_hits: after.write_hits - before.write_hits,
            l2_write_misses: after.write_misses - before.write_misses,
            dram_writes: after.write_backs - before.write_backs,
        }
    }

    /// Total L2 sector transactions (reads + writes), the quantity of
    /// the paper's Fig 8a.
    #[must_use]
    pub fn l2_transactions(&self) -> u64 {
        self.l2_reads + self.l2_writes
    }

    /// DRAM read transactions (sector fills).
    #[must_use]
    pub fn dram_reads(&self) -> u64 {
        self.l2_read_misses
    }

    /// Total DRAM transactions (Fig 8b).
    #[must_use]
    pub fn dram_transactions(&self) -> u64 {
        self.dram_reads() + self.dram_writes
    }

    /// Accumulates another traffic block.
    pub fn merge(&mut self, o: &MemTraffic) {
        self.l2_reads += o.l2_reads;
        self.l2_read_hits += o.l2_read_hits;
        self.l2_read_misses += o.l2_read_misses;
        self.l2_writes += o.l2_writes;
        self.l2_write_hits += o.l2_write_hits;
        self.l2_write_misses += o.l2_write_misses;
        self.dram_writes += o.dram_writes;
    }
}

/// Complete profile of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Launch geometry.
    pub launch: LaunchConfig,
    /// Static resources.
    pub resources: KernelResources,
    /// Occupancy achieved.
    pub occupancy: Occupancy,
    /// Event counters.
    pub counters: Counters,
    /// L2/DRAM traffic.
    pub mem: MemTraffic,
    /// Timing-model output.
    pub timing: KernelTiming,
    /// Soft errors injected into this launch by the fault model
    /// (all-zero on a fault-free device).
    pub faults: FaultCounters,
}

// Hand-written serde impls (not derived) so the `faults` key is
// *omitted* when no fault was injected and *defaulted* when absent:
// fault-free profiles serialize byte-identically to the
// pre-fault-model schema, and pre-existing golden documents still
// deserialize. Field order matches the struct declaration, like the
// derive would emit.
impl Serialize for KernelProfile {
    fn to_value(&self) -> serde::value::Value {
        let mut obj: Vec<(String, serde::value::Value)> = vec![
            ("name".to_string(), self.name.to_value()),
            ("launch".to_string(), self.launch.to_value()),
            ("resources".to_string(), self.resources.to_value()),
            ("occupancy".to_string(), self.occupancy.to_value()),
            ("counters".to_string(), self.counters.to_value()),
            ("mem".to_string(), self.mem.to_value()),
            ("timing".to_string(), self.timing.to_value()),
        ];
        if !self.faults.is_empty() {
            obj.push(("faults".to_string(), self.faults.to_value()));
        }
        serde::value::Value::Object(obj)
    }
}

impl Deserialize for KernelProfile {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        Ok(Self {
            name: serde::de::field(v, "name")?,
            launch: serde::de::field(v, "launch")?,
            resources: serde::de::field(v, "resources")?,
            occupancy: serde::de::field(v, "occupancy")?,
            counters: serde::de::field(v, "counters")?,
            mem: serde::de::field(v, "mem")?,
            timing: serde::de::field(v, "timing")?,
            faults: match v.get("faults") {
                Some(f) => FaultCounters::from_value(f).map_err(|e| e.context("faults"))?,
                None => FaultCounters::default(),
            },
        })
    }
}

impl KernelProfile {
    /// L2 misses per thousand thread-level instructions — the metric
    /// of the paper's Fig 2 ("L2 MPKI").
    #[must_use]
    pub fn l2_mpki(&self) -> f64 {
        if self.counters.thread_insts == 0 {
            return 0.0;
        }
        (self.mem.l2_read_misses + self.mem.l2_write_misses) as f64 * 1000.0
            / self.counters.thread_insts as f64
    }

    /// Achieved fraction of peak single-precision FLOP throughput
    /// (Table II, "FLOP efficiency").
    #[must_use]
    pub fn flop_efficiency(&self, peak_gflops: f64) -> f64 {
        if self.timing.time_s <= 0.0 {
            return 0.0;
        }
        (self.counters.flops as f64 / self.timing.time_s) / (peak_gflops * 1e9)
    }
}

/// One modelled host↔device (or device↔device) transfer attributed to
/// a pipeline: shard upload, weight staging, result download. Costed
/// by [`crate::config::Interconnect::transfer_time_s`]; the CRC
/// ledger fields record what the link-fault model did to it (see
/// [`crate::fault::LinkFaultSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferProfile {
    /// What moved (`"shard A"`, `"weights"`, `"result V"`, …).
    pub label: String,
    /// Link the bytes moved over.
    pub link: String,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Modelled transfer time in seconds (includes retransmits).
    pub time_s: f64,
    /// In-flight corruptions the CRC check caught (each recovered by
    /// a retransmit, so the payload still arrived intact).
    pub crc_detected: u64,
    /// Retransmissions charged after CRC detection.
    pub retransmits: u64,
    /// True when the transfer timed out; the shard attempt that
    /// issued it fails and is re-served elsewhere.
    pub timed_out: bool,
}

// Hand-written serde, same contract as [`KernelProfile`]: the CRC
// ledger keys are omitted when quiet and defaulted when absent, so
// fault-free transfers serialize byte-identically to the pre-ledger
// schema and old golden documents still deserialize.
impl Serialize for TransferProfile {
    fn to_value(&self) -> serde::value::Value {
        let mut obj: Vec<(String, serde::value::Value)> = vec![
            ("label".to_string(), self.label.to_value()),
            ("link".to_string(), self.link.to_value()),
            ("bytes".to_string(), self.bytes.to_value()),
            ("time_s".to_string(), self.time_s.to_value()),
        ];
        if self.crc_detected != 0 {
            obj.push(("crc_detected".to_string(), self.crc_detected.to_value()));
        }
        if self.retransmits != 0 {
            obj.push(("retransmits".to_string(), self.retransmits.to_value()));
        }
        if self.timed_out {
            obj.push(("timed_out".to_string(), self.timed_out.to_value()));
        }
        serde::value::Value::Object(obj)
    }
}

impl Deserialize for TransferProfile {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        Ok(Self {
            label: serde::de::field(v, "label")?,
            link: serde::de::field(v, "link")?,
            bytes: serde::de::field(v, "bytes")?,
            time_s: serde::de::field(v, "time_s")?,
            crc_detected: match v.get("crc_detected") {
                Some(c) => u64::from_value(c).map_err(|e| e.context("crc_detected"))?,
                None => 0,
            },
            retransmits: match v.get("retransmits") {
                Some(r) => u64::from_value(r).map_err(|e| e.context("retransmits"))?,
                None => 0,
            },
            timed_out: match v.get("timed_out") {
                Some(t) => bool::from_value(t).map_err(|e| e.context("timed_out"))?,
                None => false,
            },
        })
    }
}

/// Profile of a multi-kernel pipeline (one end-to-end kernel-summation
/// implementation: e.g. `cuBLAS-Unfused` = norms + GEMM + exp + GEMV).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineProfile {
    /// Pipeline label (`Fused`, `CUDA-Unfused`, `cuBLAS-Unfused`).
    pub name: String,
    /// Per-kernel profiles in launch order.
    pub kernels: Vec<KernelProfile>,
    /// Host↔device transfers charged to this pipeline (empty for
    /// single-device pipelines, which assume resident data).
    pub transfers: Vec<TransferProfile>,
}

// Hand-written serde, same contract as [`KernelProfile`]: `transfers`
// is omitted when empty and defaulted when absent, so transfer-free
// profiles serialize byte-identically to the pre-pool schema and old
// golden documents still deserialize.
impl Serialize for PipelineProfile {
    fn to_value(&self) -> serde::value::Value {
        let mut obj: Vec<(String, serde::value::Value)> = vec![
            ("name".to_string(), self.name.to_value()),
            ("kernels".to_string(), self.kernels.to_value()),
        ];
        if !self.transfers.is_empty() {
            obj.push(("transfers".to_string(), self.transfers.to_value()));
        }
        serde::value::Value::Object(obj)
    }
}

impl Deserialize for PipelineProfile {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        Ok(Self {
            name: serde::de::field(v, "name")?,
            kernels: serde::de::field(v, "kernels")?,
            transfers: match v.get("transfers") {
                Some(t) => {
                    Vec::<TransferProfile>::from_value(t).map_err(|e| e.context("transfers"))?
                }
                None => Vec::new(),
            },
        })
    }
}

impl PipelineProfile {
    /// New, empty pipeline profile.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kernels: Vec::new(),
            transfers: Vec::new(),
        }
    }

    /// Total wall time in seconds: kernels serialised on one stream
    /// (as in the paper's pipelines) plus any modelled transfers,
    /// which a single stream also serialises with the kernels.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.kernels.iter().map(|k| k.timing.time_s).sum::<f64>() + self.transfer_time_s()
    }

    /// Summed modelled transfer time in seconds (0 when no transfers
    /// are charged).
    #[must_use]
    pub fn transfer_time_s(&self) -> f64 {
        self.transfers.iter().map(|t| t.time_s).sum()
    }

    /// Summed transfer payload bytes.
    #[must_use]
    pub fn transfer_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Summed counters.
    #[must_use]
    pub fn total_counters(&self) -> Counters {
        let mut c = Counters::default();
        for k in &self.kernels {
            c.merge(&k.counters);
        }
        c
    }

    /// Summed L2/DRAM traffic.
    #[must_use]
    pub fn total_mem(&self) -> MemTraffic {
        let mut m = MemTraffic::default();
        for k in &self.kernels {
            m.merge(&k.mem);
        }
        m
    }

    /// Summed injected-fault counters across the pipeline's launches.
    #[must_use]
    pub fn total_faults(&self) -> FaultCounters {
        let mut f = FaultCounters::default();
        for k in &self.kernels {
            f.merge(&k.faults);
        }
        f
    }

    /// Cycle-weighted FLOP efficiency, as the paper computes it for
    /// multi-kernel pipelines (Table II: "the efficiency of
    /// cuBLAS-Unfused kernel summation is a weighted sum … based on
    /// their total cycle count").
    #[must_use]
    pub fn flop_efficiency(&self, peak_gflops: f64) -> f64 {
        let t = self.total_time_s();
        if t <= 0.0 {
            return 0.0;
        }
        let flops: u64 = self.kernels.iter().map(|k| k.counters.flops).sum();
        (flops as f64 / t) / (peak_gflops * 1e9)
    }

    /// Pipeline-level MPKI (all kernels).
    #[must_use]
    pub fn l2_mpki(&self) -> f64 {
        let c = self.total_counters();
        let m = self.total_mem();
        if c.thread_insts == 0 {
            return 0.0;
        }
        (m.l2_read_misses + m.l2_write_misses) as f64 * 1000.0 / c.thread_insts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_and_total() {
        let mut a = Counters {
            ffma_insts: 10,
            alu_insts: 5,
            thread_insts: 480,
            flops: 640,
            ..Default::default()
        };
        let b = Counters {
            ffma_insts: 1,
            sfu_insts: 2,
            sync_insts: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.ffma_insts, 11);
        assert_eq!(a.warp_insts(), 11 + 5 + 2 + 3);
    }

    #[test]
    fn mem_traffic_delta() {
        let before = CacheStats {
            read_accesses: 10,
            read_hits: 4,
            read_misses: 6,
            write_accesses: 2,
            write_hits: 1,
            write_misses: 1,
            write_backs: 1,
        };
        let after = CacheStats {
            read_accesses: 110,
            read_hits: 44,
            read_misses: 66,
            write_accesses: 22,
            write_hits: 11,
            write_misses: 11,
            write_backs: 11,
        };
        let d = MemTraffic::from_delta(&before, &after);
        assert_eq!(d.l2_reads, 100);
        assert_eq!(d.l2_read_misses, 60);
        assert_eq!(d.dram_reads(), 60);
        assert_eq!(d.dram_writes, 10);
        assert_eq!(d.dram_transactions(), 70);
        assert_eq!(d.l2_transactions(), 120);
    }

    #[test]
    fn transfer_free_pipeline_serializes_without_transfers_key() {
        use serde::value::Value;
        let p = PipelineProfile::new("Fused");
        let Value::Object(fields) = p.to_value() else {
            panic!("pipeline must serialize to an object");
        };
        assert!(
            fields.iter().all(|(k, _)| k != "transfers"),
            "empty transfers must be omitted for golden stability"
        );
        // Absent key defaults to no transfers (old documents).
        let back = PipelineProfile::from_value(&Value::Object(fields)).unwrap();
        assert_eq!(back, p);
        // Non-empty transfers round-trip and extend total time.
        let mut q = PipelineProfile::new("Pooled");
        q.transfers.push(TransferProfile {
            label: "shard A".to_string(),
            link: "PCIe 3.0 x16".to_string(),
            bytes: 4096,
            time_s: 1.5e-6,
            crc_detected: 0,
            retransmits: 0,
            timed_out: false,
        });
        let rt = PipelineProfile::from_value(&q.to_value()).unwrap();
        assert_eq!(rt, q);
        assert_eq!(q.transfer_bytes(), 4096);
        assert!((q.total_time_s() - 1.5e-6).abs() < 1e-12);
    }

    #[test]
    fn clean_transfer_serializes_without_crc_ledger_keys() {
        use serde::value::Value;
        let clean = TransferProfile {
            label: "targets B".to_string(),
            link: "NVLink".to_string(),
            bytes: 1024,
            time_s: 2e-6,
            crc_detected: 0,
            retransmits: 0,
            timed_out: false,
        };
        let Value::Object(fields) = clean.to_value() else {
            panic!("transfer must serialize to an object");
        };
        assert!(
            fields
                .iter()
                .all(|(k, _)| !matches!(k.as_str(), "crc_detected" | "retransmits" | "timed_out")),
            "quiet ledger keys must be omitted for golden stability"
        );
        // Absent keys default to a clean transfer (old documents).
        let back = TransferProfile::from_value(&Value::Object(fields)).unwrap();
        assert_eq!(back, clean);
        // A faulted transfer round-trips its ledger.
        let faulted = TransferProfile {
            crc_detected: 1,
            retransmits: 1,
            timed_out: true,
            ..clean
        };
        let rt = TransferProfile::from_value(&faulted.to_value()).unwrap();
        assert_eq!(rt, faulted);
    }

    #[test]
    fn mem_traffic_merge() {
        let mut a = MemTraffic {
            l2_reads: 1,
            dram_writes: 2,
            ..Default::default()
        };
        a.merge(&MemTraffic {
            l2_reads: 9,
            l2_read_misses: 3,
            ..Default::default()
        });
        assert_eq!(a.l2_reads, 10);
        assert_eq!(a.dram_transactions(), 5);
    }
}
