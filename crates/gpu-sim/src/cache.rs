//! Set-associative write-back cache model (used for the unified L2).
//!
//! The L2 is modelled at **sector granularity** (32-byte lines): every
//! miss fill and every dirty write-back is exactly one DRAM
//! transaction, which matches how nvprof's `dram_read_transactions` /
//! `dram_write_transactions` counters relate to `l2_*_transactions`
//! on Maxwell. Replacement is true LRU within a set. Stores allocate
//! without a fill (GPU stores are write-validate: a full-sector store
//! does not need the old data), so a store miss costs a DRAM write
//! only when the victim line is dirty or at the final flush.

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; for reads this implies a fill from DRAM.
    Miss,
}

/// Running hit/miss/write-back statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses (sectors).
    pub read_accesses: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Read misses (⇒ DRAM read transactions).
    pub read_misses: u64,
    /// Write accesses (sectors).
    pub write_accesses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses (allocated without fill).
    pub write_misses: u64,
    /// Dirty lines written back to DRAM on eviction or flush
    /// (⇒ DRAM write transactions).
    pub write_backs: u64,
}

impl CacheStats {
    /// Read hit rate in [0, 1]; 1.0 when there were no reads.
    #[must_use]
    pub fn read_hit_rate(&self) -> f64 {
        if self.read_accesses == 0 {
            1.0
        } else {
            self.read_hits as f64 / self.read_accesses as f64
        }
    }
}

#[derive(Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotone timestamp of last touch (LRU).
    lru: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// A set-associative LRU cache over a flat byte address space.
pub struct Cache {
    lines: Vec<Line>,
    sets: usize,
    assoc: usize,
    line_bytes: u64,
    hashed_index: bool,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache of `capacity_bytes` with `assoc` ways and
    /// `line_bytes` lines. Non-power-of-two set counts are kept exact
    /// (index = modulo), matching how GM204 hashes addresses across its
    /// non-power-of-two L2 slice count — and preserving the full
    /// 1.75 MB capacity Table I specifies.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sizes, capacity
    /// smaller than one way of lines).
    #[must_use]
    pub fn new(capacity_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
        Self::build(capacity_bytes, assoc, line_bytes, false)
    }

    /// Like [`Cache::new`] but with an XOR-hashed set index, as GPU
    /// L1s use to break power-of-two stride pathologies (a warp of
    /// row-strided accesses would otherwise alias into a handful of
    /// sets).
    #[must_use]
    pub fn new_hashed(capacity_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
        Self::build(capacity_bytes, assoc, line_bytes, true)
    }

    fn build(capacity_bytes: u64, assoc: u32, line_bytes: u32, hashed_index: bool) -> Self {
        assert!(line_bytes > 0 && assoc > 0, "degenerate cache geometry");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let total_lines = capacity_bytes / line_bytes as u64;
        assert!(total_lines >= assoc as u64, "capacity below one set");
        let sets = (total_lines / assoc as u64) as usize;
        Self {
            lines: vec![INVALID; sets * assoc as usize],
            sets,
            assoc: assoc as usize,
            line_bytes: line_bytes as u64,
            hashed_index,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Effective capacity in bytes after set rounding.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.assoc as u64 * self.line_bytes
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(INVALID);
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_of(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.line_bytes;
        let key = if self.hashed_index {
            // Fold high line-address bits into the index so strided
            // streams spread across all sets.
            line_addr ^ (line_addr >> 7) ^ (line_addr >> 14)
        } else {
            line_addr
        };
        let set = (key % self.sets as u64) as usize;
        (set, line_addr)
    }

    /// Services a read of the sector containing `addr`. A miss fills
    /// the line (counts one DRAM read) and may write back a dirty
    /// victim (counts one DRAM write).
    pub fn read(&mut self, addr: u64) -> Access {
        self.clock += 1;
        self.stats.read_accesses += 1;
        let (set, tag) = self.set_of(addr);
        let ways = &mut self.lines[set * self.assoc..(set + 1) * self.assoc];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.clock;
            self.stats.read_hits += 1;
            return Access::Hit;
        }
        self.stats.read_misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("assoc > 0");
        if victim.valid && victim.dirty {
            self.stats.write_backs += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: false,
            lru: self.clock,
        };
        Access::Miss
    }

    /// Services a write of the sector containing `addr`. Write misses
    /// allocate without a fill (write-validate); the data reaches DRAM
    /// when the dirty line is evicted or flushed.
    pub fn write(&mut self, addr: u64) -> Access {
        self.clock += 1;
        self.stats.write_accesses += 1;
        let (set, tag) = self.set_of(addr);
        let ways = &mut self.lines[set * self.assoc..(set + 1) * self.assoc];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.clock;
            line.dirty = true;
            self.stats.write_hits += 1;
            return Access::Hit;
        }
        self.stats.write_misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("assoc > 0");
        if victim.valid && victim.dirty {
            self.stats.write_backs += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: true,
            lru: self.clock,
        };
        Access::Miss
    }

    /// Writes back every dirty line (end-of-run accounting) and marks
    /// them clean. Returns the number of lines flushed.
    pub fn flush_dirty(&mut self) -> u64 {
        let mut n = 0;
        for line in &mut self.lines {
            if line.valid && line.dirty {
                line.dirty = false;
                n += 1;
            }
        }
        self.stats.write_backs += n;
        n
    }

    /// Invalidates everything without counting write-backs (used when a
    /// fresh logical device state is needed but statistics continue).
    pub fn invalidate(&mut self) {
        self.lines.fill(INVALID);
    }

    /// Invalidates the line holding `addr` if present (write-through
    /// no-allocate caches invalidate on store to stay coherent).
    pub fn invalidate_addr(&mut self, addr: u64) {
        let (set, tag) = self.set_of(addr);
        for line in &mut self.lines[set * self.assoc..(set + 1) * self.assoc] {
            if line.valid && line.tag == tag {
                *line = INVALID;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_keeps_exact_capacity() {
        // GTX970 L2: 1.75MB / 32B / 16 ways = 3584 sets, kept exactly.
        let c = Cache::new(1792 * 1024, 16, 32);
        assert_eq!(c.capacity_bytes(), 1792 * 1024);
    }

    #[test]
    fn repeated_read_hits() {
        let mut c = Cache::new(1024, 2, 32);
        assert_eq!(c.read(0x40), Access::Miss);
        assert_eq!(c.read(0x40), Access::Hit);
        assert_eq!(c.read(0x5f), Access::Hit); // same 32B sector
        assert_eq!(c.read(0x60), Access::Miss); // next sector
        let s = c.stats();
        assert_eq!(s.read_hits, 2);
        assert_eq!(s.read_misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 ways, 32B lines, 2 sets (128B capacity).
        let mut c = Cache::new(128, 2, 32);
        // Set 0 gets line addrs 0, 2, 4 (addr 0, 64, 128).
        assert_eq!(c.read(0), Access::Miss);
        assert_eq!(c.read(64), Access::Miss);
        assert_eq!(c.read(0), Access::Hit); // 0 is now MRU
        assert_eq!(c.read(128), Access::Miss); // evicts 64
        assert_eq!(c.read(0), Access::Hit);
        assert_eq!(c.read(64), Access::Miss); // was evicted
    }

    #[test]
    fn write_miss_allocates_without_fill_and_writes_back_on_eviction() {
        let mut c = Cache::new(128, 2, 32);
        assert_eq!(c.write(0), Access::Miss);
        assert_eq!(c.stats().write_backs, 0, "no fill, no write-back yet");
        assert_eq!(c.write(64), Access::Miss);
        assert_eq!(c.read(128), Access::Miss); // evicts dirty 0
        assert_eq!(c.stats().write_backs, 1);
    }

    #[test]
    fn flush_counts_remaining_dirty_lines() {
        let mut c = Cache::new(1024, 4, 32);
        c.write(0);
        c.write(32);
        c.write(64);
        c.read(96);
        assert_eq!(c.flush_dirty(), 3);
        assert_eq!(c.flush_dirty(), 0, "second flush is a no-op");
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(1024, 4, 32);
        c.read(0); // clean fill
        c.write(0); // hit, now dirty
        assert_eq!(c.stats().write_hits, 1);
        assert_eq!(c.flush_dirty(), 1);
    }

    #[test]
    fn reset_clears_stats_and_contents() {
        let mut c = Cache::new(1024, 4, 32);
        c.read(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.read(0), Access::Miss);
    }

    #[test]
    fn streaming_larger_than_capacity_always_misses() {
        let mut c = Cache::new(1024, 4, 32);
        // Stream 4KB twice: second pass still misses (capacity 1KB).
        for pass in 0..2 {
            for i in 0..128u64 {
                assert_eq!(c.read(i * 32), Access::Miss, "pass {pass} i {i}");
            }
        }
        assert_eq!(c.stats().read_hits, 0);
    }

    #[test]
    fn working_set_within_capacity_hits_on_second_pass() {
        let mut c = Cache::new(4096, 4, 32);
        for i in 0..64u64 {
            c.read(i * 32);
        }
        for i in 0..64u64 {
            assert_eq!(c.read(i * 32), Access::Hit);
        }
    }

    #[test]
    fn hit_rate_helper() {
        let mut c = Cache::new(1024, 4, 32);
        c.read(0);
        c.read(0);
        assert!((c.stats().read_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().read_hit_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity below one set")]
    fn rejects_capacity_below_one_set() {
        let _ = Cache::new(64, 16, 32);
    }
}
