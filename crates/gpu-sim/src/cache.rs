//! Set-associative write-back cache model (used for the unified L2).
//!
//! The L2 is modelled at **sector granularity** (32-byte lines): every
//! miss fill and every dirty write-back is exactly one DRAM
//! transaction, which matches how nvprof's `dram_read_transactions` /
//! `dram_write_transactions` counters relate to `l2_*_transactions`
//! on Maxwell. Replacement is true LRU within a set. Stores allocate
//! without a fill (GPU stores are write-validate: a full-sector store
//! does not need the old data), so a store miss costs a DRAM write
//! only when the victim line is dirty or at the final flush.

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; for reads this implies a fill from DRAM.
    Miss,
}

/// Running hit/miss/write-back statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses (sectors).
    pub read_accesses: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Read misses (⇒ DRAM read transactions).
    pub read_misses: u64,
    /// Write accesses (sectors).
    pub write_accesses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses (allocated without fill).
    pub write_misses: u64,
    /// Dirty lines written back to DRAM on eviction or flush
    /// (⇒ DRAM write transactions).
    pub write_backs: u64,
}

impl CacheStats {
    /// Read hit rate in [0, 1]; 1.0 when there were no reads.
    #[must_use]
    pub fn read_hit_rate(&self) -> f64 {
        if self.read_accesses == 0 {
            1.0
        } else {
            self.read_hits as f64 / self.read_accesses as f64
        }
    }
}

#[derive(Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotone timestamp of last touch (LRU).
    lru: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// Services one access against the ways of a single set.
///
/// LRU bookkeeping is **per set**: each set carries its own monotone
/// clock. Replacement only ever compares `lru` stamps within one set,
/// so per-set clocks are observably identical to a single global
/// clock (relative order within a set is preserved, and invalid lines
/// always lose the `min_by_key` because a valid stamp is ≥ 1) — and
/// they make disjoint set ranges fully independent state, which is
/// what [`Cache::shards`] exploits for parallel replay.
#[inline]
fn access_set(
    ways: &mut [Line],
    clock: &mut u64,
    stats: &mut CacheStats,
    tag: u64,
    write: bool,
) -> Access {
    *clock += 1;
    if write {
        stats.write_accesses += 1;
    } else {
        stats.read_accesses += 1;
    }
    if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
        line.lru = *clock;
        if write {
            line.dirty = true;
            stats.write_hits += 1;
        } else {
            stats.read_hits += 1;
        }
        return Access::Hit;
    }
    if write {
        stats.write_misses += 1;
    } else {
        stats.read_misses += 1;
    }
    let victim = ways
        .iter_mut()
        .min_by_key(|l| if l.valid { l.lru } else { 0 })
        .expect("assoc > 0");
    if victim.valid && victim.dirty {
        stats.write_backs += 1;
    }
    *victim = Line {
        tag,
        valid: true,
        dirty: write,
        lru: *clock,
    };
    Access::Miss
}

/// A set-associative LRU cache over a flat byte address space.
pub struct Cache {
    lines: Vec<Line>,
    sets: usize,
    assoc: usize,
    line_bytes: u64,
    hashed_index: bool,
    /// One LRU clock per set (see [`access_set`]).
    clocks: Vec<u64>,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache of `capacity_bytes` with `assoc` ways and
    /// `line_bytes` lines. Non-power-of-two set counts are kept exact
    /// (index = modulo), matching how GM204 hashes addresses across its
    /// non-power-of-two L2 slice count — and preserving the full
    /// 1.75 MB capacity Table I specifies.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sizes, capacity
    /// smaller than one way of lines).
    #[must_use]
    pub fn new(capacity_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
        Self::build(capacity_bytes, assoc, line_bytes, false)
    }

    /// Like [`Cache::new`] but with an XOR-hashed set index, as GPU
    /// L1s use to break power-of-two stride pathologies (a warp of
    /// row-strided accesses would otherwise alias into a handful of
    /// sets).
    #[must_use]
    pub fn new_hashed(capacity_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
        Self::build(capacity_bytes, assoc, line_bytes, true)
    }

    fn build(capacity_bytes: u64, assoc: u32, line_bytes: u32, hashed_index: bool) -> Self {
        assert!(line_bytes > 0 && assoc > 0, "degenerate cache geometry");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let total_lines = capacity_bytes / line_bytes as u64;
        assert!(total_lines >= assoc as u64, "capacity below one set");
        let sets = (total_lines / assoc as u64) as usize;
        Self {
            lines: vec![INVALID; sets * assoc as usize],
            sets,
            assoc: assoc as usize,
            line_bytes: line_bytes as u64,
            hashed_index,
            clocks: vec![0; sets],
            stats: CacheStats::default(),
        }
    }

    /// Effective capacity in bytes after set rounding.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.assoc as u64 * self.line_bytes
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(INVALID);
        self.clocks.fill(0);
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_of(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.line_bytes;
        let key = if self.hashed_index {
            // Fold high line-address bits into the index so strided
            // streams spread across all sets.
            line_addr ^ (line_addr >> 7) ^ (line_addr >> 14)
        } else {
            line_addr
        };
        let set = (key % self.sets as u64) as usize;
        (set, line_addr)
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// The set index servicing `addr` (for set-sharded replay).
    #[must_use]
    pub fn set_index(&self, addr: u64) -> usize {
        self.set_of(addr).0
    }

    /// Services a read of the sector containing `addr`. A miss fills
    /// the line (counts one DRAM read) and may write back a dirty
    /// victim (counts one DRAM write).
    pub fn read(&mut self, addr: u64) -> Access {
        let (set, tag) = self.set_of(addr);
        access_set(
            &mut self.lines[set * self.assoc..(set + 1) * self.assoc],
            &mut self.clocks[set],
            &mut self.stats,
            tag,
            false,
        )
    }

    /// Services a write of the sector containing `addr`. Write misses
    /// allocate without a fill (write-validate); the data reaches DRAM
    /// when the dirty line is evicted or flushed.
    pub fn write(&mut self, addr: u64) -> Access {
        let (set, tag) = self.set_of(addr);
        access_set(
            &mut self.lines[set * self.assoc..(set + 1) * self.assoc],
            &mut self.clocks[set],
            &mut self.stats,
            tag,
            true,
        )
    }

    /// Splits the cache into `n` disjoint contiguous set-range shards,
    /// each independently simulatable on its own thread. Every shard
    /// carries its own [`CacheStats`]; callers fold them back with
    /// [`Cache::absorb_stats`] after the parallel section.
    ///
    /// Because sets share no state, replaying each set's accesses in
    /// their original global order — which a per-shard pass over a
    /// block-ordered event stream preserves — leaves the cache lines,
    /// clocks and summed statistics identical to a serial replay.
    pub fn shards(&mut self, n: usize) -> Vec<CacheShard<'_>> {
        let n = n.clamp(1, self.sets);
        let per = self.sets.div_ceil(n);
        let assoc = self.assoc;
        let line_bytes = self.line_bytes;
        let hashed_index = self.hashed_index;
        let sets_total = self.sets;
        let mut out = Vec::with_capacity(n);
        let mut lines = self.lines.as_mut_slice();
        let mut clocks = self.clocks.as_mut_slice();
        let mut set_lo = 0;
        while set_lo < self.sets {
            let take = per.min(self.sets - set_lo);
            let (l, rest_l) = lines.split_at_mut(take * assoc);
            let (c, rest_c) = clocks.split_at_mut(take);
            lines = rest_l;
            clocks = rest_c;
            out.push(CacheShard {
                lines: l,
                clocks: c,
                set_lo,
                set_hi: set_lo + take,
                assoc,
                line_bytes,
                hashed_index,
                sets_total,
                stats: CacheStats::default(),
            });
            set_lo += take;
        }
        out
    }

    /// Adds shard-local statistics back into the cache's ledger.
    pub fn absorb_stats(&mut self, s: &CacheStats) {
        self.stats.read_accesses += s.read_accesses;
        self.stats.read_hits += s.read_hits;
        self.stats.read_misses += s.read_misses;
        self.stats.write_accesses += s.write_accesses;
        self.stats.write_hits += s.write_hits;
        self.stats.write_misses += s.write_misses;
        self.stats.write_backs += s.write_backs;
    }

    /// Writes back every dirty line (end-of-run accounting) and marks
    /// them clean. Returns the number of lines flushed.
    pub fn flush_dirty(&mut self) -> u64 {
        let mut n = 0;
        for line in &mut self.lines {
            if line.valid && line.dirty {
                line.dirty = false;
                n += 1;
            }
        }
        self.stats.write_backs += n;
        n
    }

    /// Invalidates everything without counting write-backs (used when a
    /// fresh logical device state is needed but statistics continue).
    pub fn invalidate(&mut self) {
        self.lines.fill(INVALID);
    }

    /// Invalidates the line holding `addr` if present (write-through
    /// no-allocate caches invalidate on store to stay coherent).
    pub fn invalidate_addr(&mut self, addr: u64) {
        let (set, tag) = self.set_of(addr);
        for line in &mut self.lines[set * self.assoc..(set + 1) * self.assoc] {
            if line.valid && line.tag == tag {
                *line = INVALID;
            }
        }
    }
}

/// A disjoint contiguous range of a [`Cache`]'s sets, borrowed out by
/// [`Cache::shards`] for parallel set-sharded replay. Accesses whose
/// set index falls outside the shard are rejected by an assertion —
/// callers filter the event stream with [`CacheShard::owns`] first.
pub struct CacheShard<'a> {
    lines: &'a mut [Line],
    clocks: &'a mut [u64],
    set_lo: usize,
    set_hi: usize,
    assoc: usize,
    line_bytes: u64,
    hashed_index: bool,
    sets_total: usize,
    stats: CacheStats,
}

impl CacheShard<'_> {
    #[inline]
    fn set_of(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.line_bytes;
        let key = if self.hashed_index {
            line_addr ^ (line_addr >> 7) ^ (line_addr >> 14)
        } else {
            line_addr
        };
        ((key % self.sets_total as u64) as usize, line_addr)
    }

    /// True when this shard's set range services `addr`.
    #[inline]
    #[must_use]
    pub fn owns(&self, addr: u64) -> bool {
        let (set, _) = self.set_of(addr);
        set >= self.set_lo && set < self.set_hi
    }

    /// The shard's set range (for diagnostics).
    #[must_use]
    pub fn set_range(&self) -> std::ops::Range<usize> {
        self.set_lo..self.set_hi
    }

    #[inline]
    fn access(&mut self, addr: u64, write: bool) -> Access {
        let (set, tag) = self.set_of(addr);
        debug_assert!(
            set >= self.set_lo && set < self.set_hi,
            "address outside shard set range"
        );
        let local = set - self.set_lo;
        access_set(
            &mut self.lines[local * self.assoc..(local + 1) * self.assoc],
            &mut self.clocks[local],
            &mut self.stats,
            tag,
            write,
        )
    }

    /// Shard-local equivalent of [`Cache::read`].
    pub fn read(&mut self, addr: u64) -> Access {
        self.access(addr, false)
    }

    /// Shard-local equivalent of [`Cache::write`].
    pub fn write(&mut self, addr: u64) -> Access {
        self.access(addr, true)
    }

    /// Statistics accumulated by this shard.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_keeps_exact_capacity() {
        // GTX970 L2: 1.75MB / 32B / 16 ways = 3584 sets, kept exactly.
        let c = Cache::new(1792 * 1024, 16, 32);
        assert_eq!(c.capacity_bytes(), 1792 * 1024);
    }

    #[test]
    fn repeated_read_hits() {
        let mut c = Cache::new(1024, 2, 32);
        assert_eq!(c.read(0x40), Access::Miss);
        assert_eq!(c.read(0x40), Access::Hit);
        assert_eq!(c.read(0x5f), Access::Hit); // same 32B sector
        assert_eq!(c.read(0x60), Access::Miss); // next sector
        let s = c.stats();
        assert_eq!(s.read_hits, 2);
        assert_eq!(s.read_misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 ways, 32B lines, 2 sets (128B capacity).
        let mut c = Cache::new(128, 2, 32);
        // Set 0 gets line addrs 0, 2, 4 (addr 0, 64, 128).
        assert_eq!(c.read(0), Access::Miss);
        assert_eq!(c.read(64), Access::Miss);
        assert_eq!(c.read(0), Access::Hit); // 0 is now MRU
        assert_eq!(c.read(128), Access::Miss); // evicts 64
        assert_eq!(c.read(0), Access::Hit);
        assert_eq!(c.read(64), Access::Miss); // was evicted
    }

    #[test]
    fn write_miss_allocates_without_fill_and_writes_back_on_eviction() {
        let mut c = Cache::new(128, 2, 32);
        assert_eq!(c.write(0), Access::Miss);
        assert_eq!(c.stats().write_backs, 0, "no fill, no write-back yet");
        assert_eq!(c.write(64), Access::Miss);
        assert_eq!(c.read(128), Access::Miss); // evicts dirty 0
        assert_eq!(c.stats().write_backs, 1);
    }

    #[test]
    fn flush_counts_remaining_dirty_lines() {
        let mut c = Cache::new(1024, 4, 32);
        c.write(0);
        c.write(32);
        c.write(64);
        c.read(96);
        assert_eq!(c.flush_dirty(), 3);
        assert_eq!(c.flush_dirty(), 0, "second flush is a no-op");
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(1024, 4, 32);
        c.read(0); // clean fill
        c.write(0); // hit, now dirty
        assert_eq!(c.stats().write_hits, 1);
        assert_eq!(c.flush_dirty(), 1);
    }

    #[test]
    fn reset_clears_stats_and_contents() {
        let mut c = Cache::new(1024, 4, 32);
        c.read(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.read(0), Access::Miss);
    }

    #[test]
    fn streaming_larger_than_capacity_always_misses() {
        let mut c = Cache::new(1024, 4, 32);
        // Stream 4KB twice: second pass still misses (capacity 1KB).
        for pass in 0..2 {
            for i in 0..128u64 {
                assert_eq!(c.read(i * 32), Access::Miss, "pass {pass} i {i}");
            }
        }
        assert_eq!(c.stats().read_hits, 0);
    }

    #[test]
    fn working_set_within_capacity_hits_on_second_pass() {
        let mut c = Cache::new(4096, 4, 32);
        for i in 0..64u64 {
            c.read(i * 32);
        }
        for i in 0..64u64 {
            assert_eq!(c.read(i * 32), Access::Hit);
        }
    }

    #[test]
    fn hit_rate_helper() {
        let mut c = Cache::new(1024, 4, 32);
        c.read(0);
        c.read(0);
        assert!((c.stats().read_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().read_hit_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity below one set")]
    fn rejects_capacity_below_one_set() {
        let _ = Cache::new(64, 16, 32);
    }

    /// Deterministic mixed read/write stream over a footprint larger
    /// than the cache, so hits, misses, evictions and write-backs all
    /// occur.
    fn stress_stream(len: usize) -> Vec<(u64, bool)> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let addr = (state >> 16) % (8 * 1024);
                (addr, state & 1 == 0)
            })
            .collect()
    }

    fn apply_serial(c: &mut Cache, stream: &[(u64, bool)]) {
        for &(addr, write) in stream {
            if write {
                c.write(addr);
            } else {
                c.read(addr);
            }
        }
    }

    fn apply_sharded(c: &mut Cache, stream: &[(u64, bool)], n: usize) {
        let mut shards = c.shards(n);
        let stats: Vec<CacheStats> = shards
            .iter_mut()
            .map(|shard| {
                // Each shard scans the whole stream in original order,
                // keeping only its own sets — the global per-set order
                // is preserved.
                for &(addr, write) in stream {
                    if shard.owns(addr) {
                        if write {
                            shard.write(addr);
                        } else {
                            shard.read(addr);
                        }
                    }
                }
                shard.stats()
            })
            .collect();
        for s in &stats {
            c.absorb_stats(s);
        }
    }

    #[test]
    fn sharded_replay_matches_serial_stats_and_state() {
        let stream = stress_stream(4096);
        for n in [1, 2, 3, 7, 16] {
            let mut serial = Cache::new(1024, 4, 32);
            apply_serial(&mut serial, &stream);
            let mut sharded = Cache::new(1024, 4, 32);
            apply_sharded(&mut sharded, &stream, n);
            assert_eq!(serial.stats(), sharded.stats(), "{n} shards");
            // Post-state must match too: flushing counts the same
            // dirty lines, and a follow-up serial pass behaves the
            // same (tags + LRU order survived the sharded replay).
            assert_eq!(serial.flush_dirty(), sharded.flush_dirty(), "{n} shards");
            apply_serial(&mut serial, &stream);
            apply_serial(&mut sharded, &stream);
            assert_eq!(serial.stats(), sharded.stats(), "{n} shards, 2nd pass");
        }
    }

    #[test]
    fn sharded_replay_matches_serial_on_hashed_cache() {
        let stream = stress_stream(2048);
        let mut serial = Cache::new_hashed(1024, 4, 32);
        apply_serial(&mut serial, &stream);
        let mut sharded = Cache::new_hashed(1024, 4, 32);
        apply_sharded(&mut sharded, &stream, 5);
        assert_eq!(serial.stats(), sharded.stats());
    }

    #[test]
    fn shards_cover_all_sets_exactly_once() {
        let mut c = Cache::new(1792 * 1024, 16, 32);
        let shards = c.shards(7);
        let mut covered = 0;
        let mut next = 0;
        for s in &shards {
            let r = s.set_range();
            assert_eq!(r.start, next, "ranges contiguous");
            next = r.end;
            covered += r.len();
        }
        assert_eq!(covered, 3584);
        // More shards than sets clamps to one set per shard.
        let mut tiny = Cache::new(128, 2, 32);
        assert_eq!(tiny.shards(99).len(), 2);
    }
}
