//! Grid/block dimensions and launch configurations.

use serde::{Deserialize, Serialize};

/// A CUDA-style three-component extent or index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// Fastest-varying component.
    pub x: u32,
    /// Middle component.
    pub y: u32,
    /// Slowest-varying component.
    pub z: u32,
}

impl Dim3 {
    /// A 1-D extent `(x, 1, 1)`.
    #[must_use]
    pub const fn new_1d(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// A 2-D extent `(x, y, 1)`.
    #[must_use]
    pub const fn new_2d(x: u32, y: u32) -> Self {
        Self { x, y, z: 1 }
    }

    /// A 3-D extent.
    #[must_use]
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Self { x, y, z }
    }

    /// Total element count `x·y·z`.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Linear index of `self` interpreted as an index within extent
    /// `extent` (x fastest, matching CUDA block enumeration).
    #[must_use]
    pub fn linear_in(&self, extent: Dim3) -> u64 {
        debug_assert!(self.x < extent.x && self.y < extent.y && self.z < extent.z);
        (self.z as u64 * extent.y as u64 + self.y as u64) * extent.x as u64 + self.x as u64
    }

    /// Iterates all indices in the extent in launch order
    /// (x fastest, then y, then z).
    pub fn iter_indices(self) -> impl Iterator<Item = Dim3> {
        (0..self.z).flat_map(move |z| {
            (0..self.y).flat_map(move |y| (0..self.x).map(move |x| Dim3 { x, y, z }))
        })
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::new_2d(x, y)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::new_1d(x)
    }
}

/// Grid and block extents of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks in each grid dimension.
    pub grid: Dim3,
    /// Number of threads in each block dimension.
    pub block: Dim3,
}

impl LaunchConfig {
    /// Convenience constructor.
    #[must_use]
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        Self {
            grid: grid.into(),
            block: block.into(),
        }
    }

    /// Threads per block.
    #[must_use]
    pub fn threads_per_block(&self) -> u64 {
        self.block.count()
    }

    /// Warps per block (rounded up to whole warps, warp size 32).
    #[must_use]
    pub fn warps_per_block(&self) -> u64 {
        self.threads_per_block().div_ceil(32)
    }

    /// Total blocks in the grid.
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// Total threads in the launch.
    #[must_use]
    pub fn total_threads(&self) -> u64 {
        self.total_blocks() * self.threads_per_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(Dim3::new(2, 3, 4).count(), 24);
        assert_eq!(Dim3::new_1d(7).count(), 7);
    }

    #[test]
    fn linear_index_x_fastest() {
        let extent = Dim3::new(4, 3, 2);
        assert_eq!(Dim3::new(0, 0, 0).linear_in(extent), 0);
        assert_eq!(Dim3::new(1, 0, 0).linear_in(extent), 1);
        assert_eq!(Dim3::new(0, 1, 0).linear_in(extent), 4);
        assert_eq!(Dim3::new(0, 0, 1).linear_in(extent), 12);
        assert_eq!(Dim3::new(3, 2, 1).linear_in(extent), 23);
    }

    #[test]
    fn iteration_matches_linear_order() {
        let extent = Dim3::new(3, 2, 2);
        let order: Vec<u64> = extent.iter_indices().map(|i| i.linear_in(extent)).collect();
        assert_eq!(order, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn launch_config_counts() {
        let lc = LaunchConfig::new((8u32, 4u32), (16u32, 16u32));
        assert_eq!(lc.threads_per_block(), 256);
        assert_eq!(lc.warps_per_block(), 8);
        assert_eq!(lc.total_blocks(), 32);
        assert_eq!(lc.total_threads(), 8192);
    }

    #[test]
    fn partial_warp_rounds_up() {
        let lc = LaunchConfig::new(1u32, 33u32);
        assert_eq!(lc.warps_per_block(), 2);
    }
}
