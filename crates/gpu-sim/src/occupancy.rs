//! Occupancy calculation — how many blocks of a kernel fit on one SM.
//!
//! Reimplements the CUDA occupancy calculator for compute capability
//! 5.2. The paper leans on this heavily (§III-A): with 16×16 threads
//! per block and 96–128 registers per thread the fused kernel achieves
//! exactly **two blocks per SM**, and the paper argues that going to
//! more registers (bigger microtiles) would drop it to one while fewer
//! registers would shift the bottleneck elsewhere.

use crate::config::DeviceConfig;
use crate::kernel::KernelResources;

/// Which resource capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OccupancyLimiter {
    /// `max_threads_per_sm / threads_per_block`.
    Threads,
    /// Register-file capacity.
    Registers,
    /// Shared-memory capacity.
    SharedMemory,
    /// Device limit on resident blocks per SM.
    Blocks,
}

/// Result of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Resident threads per SM.
    pub threads_per_sm: u32,
    /// `warps_per_sm / max_warps_per_sm`.
    pub fraction: f64,
    /// The binding resource.
    pub limiter: OccupancyLimiter,
}

fn round_up(v: u32, granularity: u32) -> u32 {
    v.div_ceil(granularity) * granularity
}

/// Computes the occupancy of a kernel on `dev`.
///
/// Register allocation is per warp at the CC 5.2 granularity of 256
/// registers; shared memory is rounded up to the 256-byte allocation
/// granularity.
///
/// # Panics
/// Panics if the kernel is unlaunchable (zero threads, more threads
/// than `max_threads_per_block`, more registers than
/// `max_regs_per_thread`, or more shared memory than a block may use).
/// Use [`crate::kernel::validate_launch`] for a non-panicking check.
#[must_use]
pub fn occupancy(dev: &DeviceConfig, res: &KernelResources) -> Occupancy {
    assert!(
        res.threads_per_block > 0,
        "kernel with zero threads per block"
    );
    assert!(
        res.threads_per_block <= dev.max_threads_per_block,
        "threads per block {} exceeds device limit {}",
        res.threads_per_block,
        dev.max_threads_per_block
    );
    assert!(
        res.regs_per_thread <= dev.max_regs_per_thread,
        "registers per thread {} exceeds device limit {}",
        res.regs_per_thread,
        dev.max_regs_per_thread
    );
    assert!(
        res.smem_bytes_per_block <= dev.max_smem_per_block,
        "shared memory per block {} exceeds device limit {}",
        res.smem_bytes_per_block,
        dev.max_smem_per_block
    );

    let warps_per_block = res.threads_per_block.div_ceil(dev.warp_size);

    let limit_threads = dev.max_threads_per_sm / (warps_per_block * dev.warp_size);

    // Registers are allocated per warp, rounded to the allocation
    // granularity; a warp of a 100-reg/thread kernel takes
    // round_up(100*32, 256) = 3200 registers.
    let limit_regs = if res.regs_per_thread == 0 {
        u32::MAX
    } else {
        let regs_per_warp = round_up(
            res.regs_per_thread * dev.warp_size,
            dev.reg_alloc_granularity,
        );
        let warps_by_regs = dev.regs_per_sm / regs_per_warp;
        warps_by_regs / warps_per_block
    };

    let limit_smem = if res.smem_bytes_per_block == 0 {
        u32::MAX
    } else {
        dev.smem_per_sm / round_up(res.smem_bytes_per_block, dev.smem_alloc_granularity)
    };

    let limit_blocks = dev.max_blocks_per_sm;

    let (blocks, limiter) = [
        (limit_threads, OccupancyLimiter::Threads),
        (limit_regs, OccupancyLimiter::Registers),
        (limit_smem, OccupancyLimiter::SharedMemory),
        (limit_blocks, OccupancyLimiter::Blocks),
    ]
    .into_iter()
    .min_by_key(|(b, _)| *b)
    .expect("non-empty candidate list");

    let warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        threads_per_sm: warps * dev.warp_size,
        fraction: warps as f64 / dev.max_warps_per_sm() as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceConfig {
        DeviceConfig::gtx970()
    }

    fn res(threads: u32, regs: u32, smem: u32) -> KernelResources {
        KernelResources {
            threads_per_block: threads,
            regs_per_thread: regs,
            smem_bytes_per_block: smem,
        }
    }

    #[test]
    fn papers_fused_kernel_gets_two_blocks_per_sm() {
        // §III-A: 256 threads/block, 96–128 regs/thread ⇒ 2 blocks/SM,
        // register limited.
        for regs in [96, 100, 112, 128] {
            let o = occupancy(&dev(), &res(256, regs, 2 * (128 * 8 + 8 * 128) * 4));
            assert_eq!(o.blocks_per_sm, 2, "regs={regs}");
            assert_eq!(o.limiter, OccupancyLimiter::Registers, "regs={regs}");
        }
    }

    #[test]
    fn more_than_128_regs_drops_to_one_block() {
        // §III-A: a bigger microtile (more registers) halves occupancy.
        let o = occupancy(&dev(), &res(256, 255, 16 * 1024));
        assert_eq!(o.blocks_per_sm, 1);
    }

    #[test]
    fn thread_limited_with_1024_thread_blocks() {
        // §III-A: 1024 threads/block with 4×4 microtiles would still be
        // 2 blocks/SM because of the 2048 resident-thread limit.
        let o = occupancy(&dev(), &res(1024, 32, 0));
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, OccupancyLimiter::Threads);
        assert_eq!(o.threads_per_sm, 2048);
        assert!((o.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smem_limited_kernel() {
        let o = occupancy(&dev(), &res(64, 16, 40 * 1024));
        assert_eq!(o.blocks_per_sm, 2); // 96KB / 40KB = 2
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn block_limited_tiny_kernel() {
        let o = occupancy(&dev(), &res(32, 8, 0));
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.limiter, OccupancyLimiter::Blocks);
        assert_eq!(o.warps_per_sm, 32);
        assert!((o.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn smem_rounds_to_granularity() {
        // 257 bytes rounds to 512; 96KB/512 = 192, capped by blocks=32.
        let o = occupancy(&dev(), &res(32, 8, 257));
        assert_eq!(o.blocks_per_sm, 32);
    }

    #[test]
    fn register_allocation_is_warp_granular() {
        // 65 regs/thread: per warp = round_up(65*32, 256) = 2304.
        // 65536/2304 = 28 warps; with 8 warps/block → 3 blocks.
        let o = occupancy(&dev(), &res(256, 65, 0));
        assert_eq!(o.blocks_per_sm, 3);
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn rejects_oversized_block() {
        let _ = occupancy(&dev(), &res(2048, 32, 0));
    }

    #[test]
    #[should_panic(expected = "zero threads")]
    fn rejects_zero_threads() {
        let _ = occupancy(&dev(), &res(0, 32, 0));
    }

    #[test]
    fn non_multiple_of_warp_size_rounds_warps_up() {
        let o = occupancy(&dev(), &res(48, 32, 0)); // 2 warps/block
        assert_eq!(o.warps_per_sm % 2, 0);
        assert_eq!(o.threads_per_sm, o.warps_per_sm * 32);
    }
}
