//! Acceptance test of the serving stack's headline claim: on the
//! smoke workload (shared-source ratio 0.8) the plan cache hits more
//! than half the time and strictly reduces total simulated DRAM
//! traffic versus the cache-disabled ablation. Also pins the
//! `ServeMetrics` export schema round-trip.

use ks_bench::ServeMetrics;
use ks_gpu_sim::config::DeviceConfig;
use ks_serve::{
    generate_queries, smoke_workload, Query, ServeBackend, ServeConfig, ServeReport, Server,
    Submit, Ticket,
};

/// The serving device: a GTX970 with its effective L2 cut to 16 KB to
/// model inter-request cache pressure — a smoke corpus (256×32 floats
/// = 32 KB) does not stay resident between kernels, so skipping the
/// `norms(A)` launch on a plan hit saves real DRAM traffic.
fn serve_device() -> DeviceConfig {
    let mut d = DeviceConfig::gtx970();
    d.l2_bytes = 16 * 1024;
    d
}

fn smoke_config(enable_plan_cache: bool) -> ServeConfig {
    ServeConfig {
        backend: ServeBackend::GpuFused { cpu_fallback: true },
        device: serve_device(),
        enable_plan_cache,
        wave: 4,
        queue_capacity: 64,
        start_paused: true,
        ..ServeConfig::default()
    }
}

/// Serves the whole stream through a paused server so batch
/// composition (and therefore cache behaviour) is deterministic.
fn serve_smoke(queries: &[Query], enable_plan_cache: bool) -> ServeReport {
    let mut srv = Server::start(smoke_config(enable_plan_cache));
    let tickets: Vec<Ticket> = queries
        .iter()
        .map(|q| match srv.submit(q.clone()) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => panic!("queue sized for the stream"),
        })
        .collect();
    srv.resume();
    for t in &tickets {
        t.wait().expect("smoke query completes");
    }
    srv.shutdown()
}

#[test]
fn smoke_workload_cache_hits_and_saves_dram() {
    let wl = smoke_workload();
    assert!((wl.shared_ratio - 0.8).abs() < f64::EPSILON);
    let queries = generate_queries(&wl);

    let cached = serve_smoke(&queries, true);
    let uncached = serve_smoke(&queries, false);

    assert_eq!(cached.completed, queries.len() as u64);
    assert_eq!(uncached.completed, queries.len() as u64);
    assert_eq!(cached.fallbacks, 0, "no faults injected");
    assert_eq!(
        cached.batches, uncached.batches,
        "identical streams batch identically"
    );

    // Headline claim 1: most batch lookups are served from the cache.
    assert!(
        cached.hit_rate() > 0.5,
        "plan-cache hit rate {} must exceed 0.5 (hits {}, misses {})",
        cached.hit_rate(),
        cached.plan_cache.hits,
        cached.plan_cache.misses
    );
    assert_eq!(uncached.plan_cache.accesses(), 0);

    // Headline claim 2: reuse is visible in the memory system — the
    // cached run moves strictly less DRAM than the ablation.
    let dram_cached = cached.total_dram_transactions();
    let dram_uncached = uncached.total_dram_transactions();
    assert!(
        dram_cached < dram_uncached,
        "plan reuse must save DRAM: {dram_cached} vs {dram_uncached}"
    );

    // And the saving is attributable: hit batches run one fewer
    // kernel (norms(A) skipped).
    let hit_batches = cached
        .profiles
        .iter()
        .filter(|p| p.kernels.len() == 2)
        .count() as u64;
    assert_eq!(hit_batches, cached.plan_cache.hits);
    assert!(uncached.profiles.iter().all(|p| p.kernels.len() == 3));
}

#[test]
fn serve_metrics_schema_round_trips() {
    let wl = ks_serve::WorkloadConfig {
        clients: 1,
        queries_per_client: 6,
        m: 128,
        n: 128,
        k: 8,
        ..smoke_workload()
    };
    let report = serve_smoke(&generate_queries(&wl), true);
    let metrics = ServeMetrics::collect(&report, &serve_device());
    assert_eq!(metrics.completed, 6);
    assert_eq!(metrics.plan_cache_hits, report.plan_cache.hits);
    let gpu = metrics.gpu.as_ref().expect("GPU batches ran");
    assert_eq!(
        gpu.dram_transactions,
        report.total_dram_transactions(),
        "merged summary equals the per-batch ledger"
    );
    assert!(gpu.energy.total_j() > 0.0);
    let back = ServeMetrics::from_json(&metrics.to_json()).expect("parse");
    assert_eq!(back, metrics);
}
