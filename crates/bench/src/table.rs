//! Plain-text table rendering (fixed-width columns + optional CSV).

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a title line.
    #[must_use]
    pub fn render(&self, title: &str) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {title} ==");
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:>width$}", cells[i], width = widths[i]);
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// CSV rendering (no quoting — cells are numeric/simple labels).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table (and CSV when `csv` is set).
    pub fn print(&self, title: &str, csv: bool) {
        if csv {
            print!("{}", self.to_csv());
        } else {
            println!("{}", self.render(title));
        }
    }

    /// JSON form: `{"title", "columns", "rows"}` with rows as string
    /// arrays (cells keep their rendered formatting).
    #[must_use]
    pub fn to_json_value(&self, title: &str) -> serde_json::Value {
        serde_json::Value::Object(vec![
            (
                "title".to_string(),
                serde_json::Value::Str(title.to_string()),
            ),
            (
                "columns".to_string(),
                serde::Serialize::to_value(&self.headers),
            ),
            ("rows".to_string(), serde::Serialize::to_value(&self.rows)),
        ])
    }
}

/// Collects titled tables so a binary can print them as it goes and
/// still export the full set through the shared `--json <path>` /
/// `--csv <path>` flags afterwards.
#[derive(Debug, Default)]
pub struct TableSet {
    tables: Vec<(String, TextTable)>,
    csv_stdout: bool,
}

impl TableSet {
    /// New set; `csv_stdout` selects CSV table printing (the bare
    /// `--csv` flag) instead of aligned text.
    #[must_use]
    pub fn new(csv_stdout: bool) -> Self {
        Self {
            tables: Vec::new(),
            csv_stdout,
        }
    }

    /// Prints the table immediately and records it for export.
    pub fn add(&mut self, title: &str, t: TextTable) {
        t.print(title, self.csv_stdout);
        self.tables.push((title.to_string(), t));
    }

    /// All tables as a pretty JSON array of
    /// [`TextTable::to_json_value`] objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        let v: Vec<serde_json::Value> = self
            .tables
            .iter()
            .map(|(title, t)| t.to_json_value(title))
            .collect();
        serde_json::to_string_pretty(&v).expect("tables serialise")
    }

    /// All tables as CSV sections separated by `# title` comments.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (title, t) in &self.tables {
            let _ = writeln!(out, "# {title}");
            out.push_str(&t.to_csv());
        }
        out
    }

    /// Honours `--json <path>` / `--csv <path>`, writing the recorded
    /// tables. Exits the process on an I/O failure.
    pub fn export_from_args(&self, args: &[String]) {
        for (flag, doc) in [("--json", self.to_json()), ("--csv", self.to_csv())] {
            if let Some(path) = crate::metrics::path_arg(args, flag) {
                std::fs::write(&path, doc).unwrap_or_else(|e| {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                });
                eprintln!("wrote {path}");
            }
        }
    }
}

/// Formats a float with 3 significant decimals.
#[must_use]
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats seconds as engineering-friendly milliseconds.
#[must_use]
pub fn ms(v_s: f64) -> String {
    format!("{:.3}ms", v_s * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["K", "value"]);
        t.row(vec!["32", "1.5"]);
        t.row(vec!["256", "10.25"]);
        let r = t.render("demo");
        assert!(r.contains("== demo =="));
        assert!(r.contains("K"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(ms(0.001234), "1.234ms");
    }

    #[test]
    fn table_set_exports_json_and_csv() {
        let mut set = TableSet::new(true);
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        set.add("demo", t);
        let json = set.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("parse");
        assert_eq!(v[0]["title"].as_str(), Some("demo"));
        assert_eq!(v[0]["rows"][0][1].as_str(), Some("2"));
        let csv = set.to_csv();
        assert!(csv.starts_with("# demo\n"));
        assert!(csv.contains("a,b\n1,2\n"));
    }
}
