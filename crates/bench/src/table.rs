//! Plain-text table rendering (fixed-width columns + optional CSV).

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a title line.
    #[must_use]
    pub fn render(&self, title: &str) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {title} ==");
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:>width$}", cells[i], width = widths[i]);
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// CSV rendering (no quoting — cells are numeric/simple labels).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table (and CSV when `csv` is set).
    pub fn print(&self, title: &str, csv: bool) {
        if csv {
            print!("{}", self.to_csv());
        } else {
            println!("{}", self.render(title));
        }
    }
}

/// Formats a float with 3 significant decimals.
#[must_use]
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats seconds as engineering-friendly milliseconds.
#[must_use]
pub fn ms(v_s: f64) -> String {
    format!("{:.3}ms", v_s * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["K", "value"]);
        t.row(vec!["32", "1.5"]);
        t.row(vec!["256", "10.25"]);
        let r = t.render("demo");
        assert!(r.contains("== demo =="));
        assert!(r.contains("K"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(ms(0.001234), "1.234ms");
    }
}
