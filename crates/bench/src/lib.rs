//! # ks-bench — experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation
//! (§V). One binary per exhibit (`fig1_energy_breakdown`,
//! `fig2_l2_mpki`, `fig6_speedup`, `fig7_gemm_compare`,
//! `fig8_transactions`, `fig9_energy_compare`, `table1_config`,
//! `table2_flop_efficiency`, `table3_energy_savings`, `ablations`),
//! plus `run_all`, which profiles the sweep once and prints every
//! exhibit from the shared data.
//!
//! Sweeps (`--full` = the paper's exact grid up to `M = 524288`,
//! default = a scaled grid up to `M = 65536`, `--smoke` = CI-sized)
//! are defined in [`sweep`]; the shared profiling engine in [`data`];
//! the per-exhibit computations in [`exhibits`] (returned as
//! structured rows so the integration tests can assert the paper's
//! claims without parsing stdout).

#![warn(missing_docs)]

pub mod data;
pub mod exhibits;
pub mod metrics;
pub mod regress;
pub mod sweep;
pub mod table;

pub use data::{profile_or_exit, PointData, SweepData};
pub use metrics::{ReplayMetrics, ReplayPoint, ServeMetrics, SweepMetrics};
pub use sweep::Sweep;
pub use table::TextTable;
