//! Shared profiling engine: every exhibit is a view over one sweep's
//! worth of pipeline profiles.

use ks_energy::{pipeline_energy, EnergyBreakdown, EnergyParams};
use ks_gpu_kernels::{GpuKernelSummation, GpuVariant};
use ks_gpu_sim::profiler::{KernelProfile, PipelineProfile};
use ks_gpu_sim::{DeviceConfig, GpuDevice, LaunchError};
use rayon::prelude::*;

use crate::sweep::Sweep;

/// All three pipeline profiles (plus energies) for one `(K, M)` point.
pub struct PointData {
    /// Point-space dimension.
    pub k: usize,
    /// Source count.
    pub m: usize,
    /// Target count.
    pub n: usize,
    /// Fused pipeline profile.
    pub fused: PipelineProfile,
    /// CUDA-Unfused pipeline profile.
    pub cuda_unfused: PipelineProfile,
    /// cuBLAS-Unfused pipeline profile.
    pub cublas_unfused: PipelineProfile,
    /// Fused energy.
    pub fused_energy: EnergyBreakdown,
    /// CUDA-Unfused energy.
    pub cuda_energy: EnergyBreakdown,
    /// cuBLAS-Unfused energy.
    pub cublas_energy: EnergyBreakdown,
    /// Host wall time spent profiling this point, in milliseconds
    /// (nondeterministic — excluded from regression diffs).
    pub wall_time_ms: f64,
}

impl PointData {
    /// Profiles all three variants at `(k, m, n)` on fresh devices.
    ///
    /// # Errors
    /// Returns the [`LaunchError`] of the first variant whose launch
    /// the device rejects (e.g. the dimensions violate the tiling
    /// constraints).
    pub fn compute(k: usize, m: usize, n: usize) -> Result<Self, LaunchError> {
        let started = std::time::Instant::now();
        let pipeline = GpuKernelSummation::new(m, n, k, 1.0);
        let params = EnergyParams::default();
        let run = |variant: GpuVariant| {
            let mut dev = GpuDevice::gtx970();
            pipeline.profile(&mut dev, variant)
        };
        let fused = run(GpuVariant::Fused)?;
        let cuda_unfused = run(GpuVariant::CudaUnfused)?;
        let cublas_unfused = run(GpuVariant::CublasUnfused)?;
        let fused_energy = pipeline_energy(&params, &fused);
        let cuda_energy = pipeline_energy(&params, &cuda_unfused);
        let cublas_energy = pipeline_energy(&params, &cublas_unfused);
        Ok(Self {
            k,
            m,
            n,
            fused,
            cuda_unfused,
            cublas_unfused,
            fused_energy,
            cuda_energy,
            cublas_energy,
            wall_time_ms: started.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// The CUDA-C GEMM kernel profile (third kernel of CUDA-Unfused).
    #[must_use]
    pub fn cudac_gemm(&self) -> &KernelProfile {
        &self.cuda_unfused.kernels[2]
    }

    /// The vendor (cuBLAS-model) GEMM kernel profile.
    #[must_use]
    pub fn vendor_gemm(&self) -> &KernelProfile {
        &self.cublas_unfused.kernels[2]
    }

    /// Fused speedup over cuBLAS-Unfused (Fig 6's headline series).
    #[must_use]
    pub fn speedup_vs_cublas(&self) -> f64 {
        self.cublas_unfused.total_time_s() / self.fused.total_time_s()
    }

    /// Fused speedup over CUDA-Unfused (Fig 6's projected series).
    #[must_use]
    pub fn speedup_vs_cuda(&self) -> f64 {
        self.cuda_unfused.total_time_s() / self.fused.total_time_s()
    }
}

/// Profiles `sweep`, exiting the process with a readable message when
/// the device rejects a launch. The shared entry point for the CLI
/// bins — library callers should use [`SweepData::compute`] and handle
/// the [`LaunchError`] themselves.
#[must_use]
pub fn profile_or_exit(sweep: Sweep) -> SweepData {
    SweepData::compute(sweep).unwrap_or_else(|e| {
        eprintln!("error: cannot profile sweep: {e}");
        std::process::exit(1);
    })
}

/// One full sweep of [`PointData`].
pub struct SweepData {
    /// The grid that was profiled.
    pub sweep: Sweep,
    /// Per-point data, in `sweep.points()` order.
    pub points: Vec<PointData>,
    /// The simulated device (for peaks and Table I).
    pub device: DeviceConfig,
}

impl SweepData {
    /// Profiles the whole grid (points in parallel — each owns its
    /// device, so they are independent).
    ///
    /// # Errors
    /// Returns the first [`LaunchError`] encountered across the grid.
    pub fn compute(sweep: Sweep) -> Result<Self, LaunchError> {
        let pts: Vec<(usize, usize)> = sweep.points().collect();
        let n = sweep.n;
        let points: Vec<PointData> = pts
            .par_iter()
            .map(|&(k, m)| PointData::compute(k, m, n))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            sweep,
            points,
            device: DeviceConfig::gtx970(),
        })
    }

    /// Data for one `(k, m)` point.
    #[must_use]
    pub fn at(&self, k: usize, m: usize) -> Option<&PointData> {
        self.points.iter().find(|p| p.k == k && p.m == m)
    }

    /// Points for one K group, in increasing M.
    pub fn group(&self, k: usize) -> impl Iterator<Item = &PointData> {
        self.points.iter().filter(move |p| p.k == k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_data_has_expected_kernel_counts() {
        let p = PointData::compute(32, 1024, 1024).expect("valid launch");
        assert_eq!(p.fused.kernels.len(), 3);
        assert_eq!(p.cuda_unfused.kernels.len(), 4);
        assert_eq!(p.cublas_unfused.kernels.len(), 4);
        assert!(p.cudac_gemm().name.contains("cudac"));
        assert!(p.vendor_gemm().name.contains("vendor"));
    }

    #[test]
    fn sweep_data_orders_points() {
        let d = SweepData::compute(Sweep::smoke()).expect("valid launch");
        assert_eq!(d.points.len(), 4);
        assert!(d.at(32, 1024).is_some());
        assert!(d.at(99, 1024).is_none());
        assert_eq!(d.group(32).count(), 2);
    }

    #[test]
    fn speedups_are_positive() {
        let p = PointData::compute(32, 2048, 1024).expect("valid launch");
        assert!(p.speedup_vs_cublas() > 0.0);
        assert!(
            p.speedup_vs_cuda() > p.speedup_vs_cublas(),
            "CUDA-Unfused must be the slower baseline"
        );
    }
}
