//! Canonical machine-readable sweep export (the `BENCH_sweep.json`
//! schema).
//!
//! [`SweepMetrics::collect`] flattens a profiled [`SweepData`] into a
//! serde-backed tree: per point, per pipeline, every event counter,
//! L2/DRAM transaction count, simulated time, energy breakdown and the
//! full nested [`PipelineProfile`] — plus the point's speedups and
//! host wall time. The same struct deserialises back, which is what
//! the perf-regression harness ([`crate::regress`]) diffs against a
//! checked-in golden.

use ks_energy::{pipeline_energy, EnergyBreakdown, EnergyParams};
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::profiler::{Counters, MemTraffic, PipelineProfile};
use ks_gpu_sim::report;
use ks_serve::ServeReport;
use serde::{Deserialize, Serialize};

use crate::data::{PointData, SweepData};

/// Version stamped into every export. Bump on any schema change so
/// the regression harness rejects stale goldens instead of producing
/// confusing field-level diffs.
pub const SCHEMA_VERSION: u64 = 1;

/// Summed metrics of one pipeline at one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineMetrics {
    /// Pipeline label (`Fused`, `CUDA-Unfused`, `cuBLAS-Unfused`).
    pub name: String,
    /// Simulated end-to-end time in seconds.
    pub time_s: f64,
    /// Summed event counters across the pipeline's kernels.
    pub counters: Counters,
    /// Summed L2/DRAM traffic.
    pub mem: MemTraffic,
    /// Total L2 sector transactions (Fig 8a's quantity).
    pub l2_transactions: u64,
    /// Total DRAM transactions (Fig 8b's quantity).
    pub dram_transactions: u64,
    /// Cycle-weighted FLOP efficiency vs device peak (Table II).
    pub flop_efficiency: f64,
    /// L2 misses per thousand thread instructions (Fig 2).
    pub l2_mpki: f64,
    /// Energy breakdown in joules (Figs 1 and 9).
    pub energy: EnergyBreakdown,
    /// The full per-kernel profile this summary was derived from.
    pub profile: PipelineProfile,
}

impl PipelineMetrics {
    fn collect(profile: &PipelineProfile, energy: &EnergyBreakdown, peak_gflops: f64) -> Self {
        let mem = profile.total_mem();
        Self {
            name: profile.name.clone(),
            time_s: profile.total_time_s(),
            counters: profile.total_counters(),
            mem,
            l2_transactions: mem.l2_transactions(),
            dram_transactions: mem.dram_transactions(),
            flop_efficiency: profile.flop_efficiency(peak_gflops),
            l2_mpki: profile.l2_mpki(),
            energy: *energy,
            profile: profile.clone(),
        }
    }
}

/// All metrics of one `(K, M)` sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointMetrics {
    /// Point-space dimension.
    pub k: u64,
    /// Source count.
    pub m: u64,
    /// Target count.
    pub n: u64,
    /// Host wall time spent profiling the point, in milliseconds
    /// (nondeterministic — ignored by the regression diff).
    pub wall_time_ms: f64,
    /// Fused speedup over cuBLAS-Unfused (Fig 6 headline).
    pub speedup_vs_cublas: f64,
    /// Fused speedup over CUDA-Unfused (Fig 6 projection).
    pub speedup_vs_cuda: f64,
    /// Fused pipeline metrics.
    pub fused: PipelineMetrics,
    /// CUDA-Unfused pipeline metrics.
    pub cuda_unfused: PipelineMetrics,
    /// cuBLAS-Unfused pipeline metrics.
    pub cublas_unfused: PipelineMetrics,
}

impl PointMetrics {
    fn collect(p: &PointData, peak_gflops: f64) -> Self {
        Self {
            k: p.k as u64,
            m: p.m as u64,
            n: p.n as u64,
            wall_time_ms: p.wall_time_ms,
            speedup_vs_cublas: p.speedup_vs_cublas(),
            speedup_vs_cuda: p.speedup_vs_cuda(),
            fused: PipelineMetrics::collect(&p.fused, &p.fused_energy, peak_gflops),
            cuda_unfused: PipelineMetrics::collect(&p.cuda_unfused, &p.cuda_energy, peak_gflops),
            cublas_unfused: PipelineMetrics::collect(
                &p.cublas_unfused,
                &p.cublas_energy,
                peak_gflops,
            ),
        }
    }
}

/// The canonical sweep export: one entry per `(K, M)` point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepMetrics {
    /// Export schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Fixed N of the sweep.
    pub n: u64,
    /// Peak single-precision GFLOP/s of the simulated device (the
    /// denominator of every `flop_efficiency`).
    pub peak_sp_gflops: f64,
    /// Per-point metrics, in `sweep.points()` (K-major) order.
    pub points: Vec<PointMetrics>,
}

impl SweepMetrics {
    /// Flattens a profiled sweep into the export schema.
    #[must_use]
    pub fn collect(d: &SweepData) -> Self {
        let peak = d.device.peak_sp_gflops();
        Self {
            schema_version: SCHEMA_VERSION,
            n: d.sweep.n as u64,
            peak_sp_gflops: peak,
            points: d
                .points
                .iter()
                .map(|p| PointMetrics::collect(p, peak))
                .collect(),
        }
    }

    /// Pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialise")
    }

    /// Parses a document produced by [`SweepMetrics::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse/shape error message.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// nvprof-style CSV: one row per kernel launch per pipeline per
    /// point, prefixed with the point coordinates.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = format!("k,m,n,{}\n", report::csv_header());
        for pt in &self.points {
            for pm in [&pt.fused, &pt.cuda_unfused, &pt.cublas_unfused] {
                for k in &pm.profile.kernels {
                    out.push_str(&format!(
                        "{},{},{},{}\n",
                        pt.k,
                        pt.m,
                        pt.n,
                        report::kernel_csv_row(&pm.profile.name, k)
                    ));
                }
            }
        }
        out
    }

    /// Writes [`SweepMetrics::to_json`] to `path`.
    ///
    /// # Errors
    /// Propagates the I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes [`SweepMetrics::to_csv`] to `path`.
    ///
    /// # Errors
    /// Propagates the I/O error.
    pub fn write_csv(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// The `serve-bench` export: end-of-run serving counters plus the
/// merged GPU pipeline summary (when any GPU batch completed),
/// reusing the [`PipelineMetrics`] schema the sweep export uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeMetrics {
    /// Export schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Queries offered to the server.
    pub submitted: u64,
    /// Queries accepted into the queue.
    pub accepted: u64,
    /// Queries bounced by backpressure.
    pub rejected: u64,
    /// Queries that produced a result.
    pub completed: u64,
    /// Queries dropped for a passed deadline.
    pub expired: u64,
    /// Queries failed with a launch error.
    pub failed: u64,
    /// Batches recovered on the CPU after a GPU launch failure.
    pub fallbacks: u64,
    /// Coalesced solves executed.
    pub batches: u64,
    /// Queries served through those solves.
    pub batched_queries: u64,
    /// Simulated kernel launches across all completed GPU batches.
    pub launches: u64,
    /// Horizontally-fused packed launches (one per packed wave per
    /// device; zero when packing is off).
    pub packed_launches: u64,
    /// Batches served as segments of those packed launches.
    pub packed_segments: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
    /// Plan-cache evictions.
    pub plan_cache_evictions: u64,
    /// Plan-cache hit rate over batch lookups.
    pub plan_cache_hit_rate: f64,
    /// Static-admission analyses run (one per distinct launch
    /// geometry; warm shapes hit the memo instead).
    pub static_admission_checks: u64,
    /// Static-admission verdicts served from the memo.
    pub static_admission_hits: u64,
    /// Batches denied the GPU by a static proof and served on the
    /// CPU path.
    pub static_admission_rejects: u64,
    /// Deepest queue occupancy observed.
    pub queue_high_water: u64,
    /// Modelled GPU energy across all batches, joules.
    pub energy_j: f64,
    /// `energy_j / completed` — the serving energy figure of merit.
    pub j_per_query: f64,
    /// Batches routed to a pick's bit-compatible low-power geometry
    /// by the energy budget.
    pub energy_downshifts: u64,
    /// Distinct raw batch shapes whose tile geometry was resolved.
    pub geometry_resolves: u64,
    /// Batches whose geometry came from the per-shape memo.
    pub geometry_hits: u64,
    /// Merged GPU pipeline metrics (all batches' kernels in execution
    /// order); `None` when no GPU batch completed.
    pub gpu: Option<PipelineMetrics>,
}

impl ServeMetrics {
    /// Flattens a serving run into the export schema. `device` is the
    /// simulated device the server ran batches on (its peak FLOP/s is
    /// the efficiency denominator).
    #[must_use]
    pub fn collect(report: &ServeReport, device: &DeviceConfig) -> Self {
        let gpu = (!report.profiles.is_empty()).then(|| {
            let merged = report.merged_profile();
            let energy = pipeline_energy(&EnergyParams::default(), &merged);
            PipelineMetrics::collect(&merged, &energy, device.peak_sp_gflops())
        });
        Self {
            schema_version: SCHEMA_VERSION,
            submitted: report.submitted,
            accepted: report.accepted,
            rejected: report.rejected,
            completed: report.completed,
            expired: report.expired,
            failed: report.failed,
            fallbacks: report.fallbacks,
            batches: report.batches,
            batched_queries: report.batched_queries,
            launches: report.launches,
            packed_launches: report.packed_launches,
            packed_segments: report.packed_segments,
            plan_cache_hits: report.plan_cache.hits,
            plan_cache_misses: report.plan_cache.misses,
            plan_cache_evictions: report.plan_cache.evictions,
            plan_cache_hit_rate: report.hit_rate(),
            static_admission_checks: report.static_admission.checks,
            static_admission_hits: report.static_admission.hits,
            static_admission_rejects: report.static_admission.rejects,
            queue_high_water: report.queue_high_water as u64,
            energy_j: report.energy_j,
            j_per_query: report.j_per_query(),
            energy_downshifts: report.energy_downshifts,
            geometry_resolves: report.geometry.resolves,
            geometry_hits: report.geometry.hits,
            gpu,
        }
    }

    /// Pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialise")
    }

    /// Parses a document produced by [`ServeMetrics::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse/shape error message.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes [`ServeMetrics::to_json`] to `path`.
    ///
    /// # Errors
    /// Propagates the I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// One serial-vs-parallel replay measurement (the `BENCH_replay.json`
/// schema, produced by the `replay_bench` binary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayPoint {
    /// Source count.
    pub m: u64,
    /// Point-space dimension.
    pub k: u64,
    /// Target count.
    pub n: u64,
    /// Grid blocks of the fused kernel at this point.
    pub blocks: u64,
    /// Host wall time of the serial replay, in milliseconds.
    pub serial_ms: f64,
    /// Host wall time of the parallel (memoized) replay, in
    /// milliseconds.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
    /// Worker count the parallel replay ran with (0 = machine
    /// default).
    pub threads: u64,
    /// Whether both replays produced identical counters and memory
    /// traffic (they must; recorded so a regression is visible in the
    /// artifact, not only in the process exit code).
    pub counters_match: bool,
}

/// The `replay_bench` export: serial vs parallel replay wall-clock
/// over the fused pipeline at a set of sweep points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayMetrics {
    /// Export schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Pipeline the measurements ran (always the fused variant).
    pub kernel: String,
    /// Per-point measurements, in increasing M.
    pub points: Vec<ReplayPoint>,
}

impl ReplayMetrics {
    /// Pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialise")
    }

    /// Parses a document produced by [`ReplayMetrics::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse/shape error message.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes [`ReplayMetrics::to_json`] to `path`.
    ///
    /// # Errors
    /// Propagates the I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The `chaos_bench` export (the `BENCH_chaos.json` schema): a seeded
/// fault-injection soak over the resilient serving backend. The
/// headline field is `silent_wrong` — completions that deviated from
/// the CPU reference without any surfaced error — which the harness
/// requires to be exactly zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosMetrics {
    /// Export schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Master seed of the workload and the device fault schedule.
    pub seed: u64,
    /// Expected SMEM bit flips per fused-kernel launch.
    pub smem_rate: f64,
    /// Expected accumulator-register flips per launch.
    pub reg_rate: f64,
    /// Per-launch probability of an SM loss (launch-level fault).
    pub sm_loss_rate: f64,
    /// Per-launch probability of a watchdog timeout.
    pub watchdog_rate: f64,
    /// Queries offered to the server.
    pub submitted: u64,
    /// Queries bounced by backpressure.
    pub rejected: u64,
    /// Queries that produced a result.
    pub completed: u64,
    /// Queries that surfaced an error (launch failure, deadline, or
    /// internal) — *surfaced*, so never silently wrong.
    pub errors: u64,
    /// Completions bit-identical to the CPU fused reference (every
    /// CPU-rung completion must be).
    pub bit_exact: u64,
    /// Completions within the GPU tolerance of the reference but not
    /// bit-exact (healthy GPU-rung completions).
    pub tolerant: u64,
    /// Completions outside tolerance with no surfaced error. The soak
    /// fails unless this is zero.
    pub silent_wrong: u64,
    /// Coalesced solves executed.
    pub batches: u64,
    /// Batch execution attempts across all ladder rungs.
    pub attempts: u64,
    /// Attempts beyond each batch's first.
    pub retries: u64,
    /// Batches that landed on the CPU safe harbor.
    pub fallbacks: u64,
    /// Queries completed below the verified-GPU rung.
    pub degraded_completions: u64,
    /// Verified attempts whose ABFT checks tripped.
    pub corruption_detected: u64,
    /// Injected data-fault events observed in completed profiles.
    pub injected_faults: u64,
    /// Completed attempts with injected faults but clean checks.
    pub undetected_injected: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Circuit-breaker recoveries.
    pub breaker_resets: u64,
    /// Worker-side internal failures (must be zero in a soak).
    pub internal_errors: u64,
    /// Whether `attempts == batches + retries` and the per-query
    /// accounting invariants all held.
    pub counters_consistent: bool,
    /// Host wall time of the soak, in milliseconds (nondeterministic —
    /// informational only).
    pub wall_time_ms: f64,
}

impl ChaosMetrics {
    /// Pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialise")
    }

    /// Parses a document produced by [`ChaosMetrics::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse/shape error message.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes [`ChaosMetrics::to_json`] to `path`.
    ///
    /// # Errors
    /// Propagates the I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// One serving pass of the pool bench at a fixed device count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolRunMetrics {
    /// Devices in the pool (`1` for the single-device baseline).
    pub devices: u64,
    /// Queries that produced a result.
    pub completed: u64,
    /// Queries failed with a surfaced error.
    pub failed: u64,
    /// Coalesced solves executed.
    pub batches: u64,
    /// Queries served through those solves.
    pub batched_queries: u64,
    /// Batches containing at least one CPU-recovered shard.
    pub fallbacks: u64,
    /// Shard tasks dispatched across the pool.
    pub shard_tasks: u64,
    /// Shard tasks executed by a thread other than their owner.
    pub stolen_tasks: u64,
    /// Circuit-breaker trips summed over devices.
    pub breaker_trips: u64,
    /// Host↔device bytes moved over the modelled interconnects.
    pub transfer_bytes: u64,
    /// Simulated serving time: per batch, the slowest shard pipeline
    /// (devices run concurrently), summed over batches.
    pub sim_time_s: f64,
    /// Host wall time of the pass, in milliseconds (nondeterministic —
    /// informational only).
    pub wall_time_ms: f64,
}

/// The `pool_bench` export (the `BENCH_pool.json` schema): the same
/// query stream served by a 1-device pool and an `N`-device pool,
/// checked bit-identical against unpooled single-device serving, plus
/// a degraded pass with one faulted device. The headline fields are
/// `speedup` (simulated-time ratio, gated at ≥ 2× for 4 devices) and
/// the `bit_identical` / `counters_match` flags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolMetrics {
    /// Export schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Master seed of the workload.
    pub seed: u64,
    /// Source-set rows per corpus.
    pub m: u64,
    /// Targets per query.
    pub n: u64,
    /// Point dimensionality.
    pub k: u64,
    /// Queries in the stream.
    pub queries: u64,
    /// Fraction of queries hitting a shared corpus.
    pub shared_ratio: f64,
    /// The 1-device pool baseline pass.
    pub single: PoolRunMetrics,
    /// The `N`-device pool pass.
    pub pooled: PoolRunMetrics,
    /// `single.sim_time_s / pooled.sim_time_s`.
    pub speedup: f64,
    /// Every pooled result matched unpooled serving bit for bit.
    pub bit_identical: bool,
    /// completed/failed/batches/batched-queries agreed across the
    /// unpooled, 1-device and `N`-device passes.
    pub counters_match: bool,
    /// The degraded pass: `N` devices, one with a permanent
    /// launch-level fault.
    pub faulted: PoolRunMetrics,
    /// Breaker trips on the faulted device (must be > 0).
    pub faulted_sick_trips: u64,
    /// CPU-recovered shards owned by the faulted device (must be > 0).
    pub faulted_sick_fallbacks: u64,
    /// CPU-recovered shards owned by healthy devices (must be 0:
    /// degradation stays device-local).
    pub faulted_healthy_fallbacks: u64,
    /// All gates held (bit identity, counter agreement, speedup floor,
    /// device-local degradation).
    pub gates_passed: bool,
}

impl PoolMetrics {
    /// Pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialise")
    }

    /// Parses a document produced by [`PoolMetrics::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse/shape error message.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes [`PoolMetrics::to_json`] to `path`.
    ///
    /// # Errors
    /// Propagates the I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// One serving pass of the packing benchmark at a fixed pack setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackRunMetrics {
    /// Queries that produced a result.
    pub completed: u64,
    /// Queries failed with a surfaced error.
    pub failed: u64,
    /// Coalesced solves executed.
    pub batches: u64,
    /// Simulated kernel launches across all completed GPU batches.
    pub launches: u64,
    /// Horizontally-fused packed launches (zero with packing off).
    pub packed_launches: u64,
    /// Batches served as segments of those packed launches.
    pub packed_segments: u64,
    /// DRAM transactions summed over every completed GPU profile.
    pub dram_transactions: u64,
    /// Mean utilized fraction of a full resident wave across the
    /// fused kernels: `grid_blocks / (num_sms · blocks_per_sm)`
    /// capped at 1. Back-to-back small launches sit far below 1;
    /// packing exists to push this up.
    pub fused_wave_fill: f64,
    /// Simulated serving time summed over every completed profile.
    pub sim_time_s: f64,
    /// Host wall time of the pass, in milliseconds (nondeterministic —
    /// informational only).
    pub wall_time_ms: f64,
}

/// The `pack_bench` export (the `BENCH_pack.json` schema): one
/// heterogeneous small-query stream served with horizontal fusion off
/// (back-to-back launches, the bit-exactness golden) and on. The
/// headline fields are `speedup` (simulated-time ratio, gated at
/// ≥ 1.5× in the smoke profile with a 2× target), `dram_saved` and
/// the `bit_identical` flag — packing must never move bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackMetrics {
    /// Export schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Master seed of the workload.
    pub seed: u64,
    /// Queries in the stream.
    pub queries: u64,
    /// Sources per corpus.
    pub m: u64,
    /// Targets per target set.
    pub n: u64,
    /// Point dimensionality.
    pub k: u64,
    /// Distinct corpora cycled through the stream.
    pub corpora: u64,
    /// Distinct target sets cycled through the stream.
    pub target_sets: u64,
    /// The pack-off (back-to-back) pass.
    pub unpacked: PackRunMetrics,
    /// The pack-on pass.
    pub packed: PackRunMetrics,
    /// `unpacked.sim_time_s / packed.sim_time_s`.
    pub speedup: f64,
    /// `unpacked.dram_transactions - packed.dram_transactions`
    /// (upload dedup; must be positive).
    pub dram_saved: i64,
    /// Every packed result matched unpacked serving bit for bit.
    pub bit_identical: bool,
    /// All gates held (bit identity, speedup floor, DRAM saving,
    /// packing actually fired).
    pub gates_passed: bool,
}

impl PackMetrics {
    /// Pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialise")
    }

    /// Parses a document produced by [`PackMetrics::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse/shape error message.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes [`PackMetrics::to_json`] to `path`.
    ///
    /// # Errors
    /// Propagates the I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// One tuned pick in the `BENCH_tune.json` export, with its
/// independent replay validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunePickMetrics {
    /// Raw problem rows.
    pub m: u64,
    /// Raw problem targets.
    pub n: u64,
    /// Raw point dimension.
    pub k: u64,
    /// The model's chosen geometry, `Display`-formatted.
    pub geometry: String,
    /// Model-predicted simulated time for the pick.
    pub pred_time_s: f64,
    /// Model-predicted energy for the pick.
    pub pred_energy_j: f64,
    /// Replay-measured simulated time of the pick (validation only —
    /// the pick itself was made without this number).
    pub picked_time_s: f64,
    /// Replay-measured simulated time of the paper default.
    pub default_time_s: f64,
    /// `default_time_s / picked_time_s`.
    pub speedup: f64,
    /// Bit-compatible lower-energy variant, when one exists.
    pub low_power: Option<String>,
    /// Predicted energy of the low-power variant.
    pub low_power_energy_j: f64,
}

/// The `BENCH_tune.json` document: one autotuner sweep — lattice,
/// gates, fit quality — plus the replay validation of every pick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneMetrics {
    /// Export schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Seed of the train/holdout split.
    pub seed: u64,
    /// Device the sweep ran on.
    pub device: String,
    /// Legal geometries enumerated.
    pub lattice: u64,
    /// Geometries surviving the static + differential gates.
    pub admitted: u64,
    /// Geometries rejected, with stage and reason recorded upstream.
    pub rejected: u64,
    /// Profiled (geometry, shape) samples the model was fitted on.
    pub samples: u64,
    /// Training-split size.
    pub train_count: u64,
    /// Holdout-split size.
    pub holdout_count: u64,
    /// Mean absolute relative holdout error, time head.
    pub holdout_mape_time: f64,
    /// Worst holdout relative error, time head.
    pub holdout_max_rel_time: f64,
    /// Mean absolute relative holdout error, energy head.
    pub holdout_mape_energy: f64,
    /// Worst holdout relative error, energy head.
    pub holdout_max_rel_energy: f64,
    /// The error band the fit advertises for downstream consumers.
    pub advertised_rel_err: f64,
    /// Every pick with its replay validation.
    pub picks: Vec<TunePickMetrics>,
    /// Picks strictly faster than the default in replay.
    pub wins: u64,
    /// All gates held (fit quality, no pick worse than default, at
    /// least one strict win on a non-paper shape).
    pub gates_passed: bool,
    /// Host wall time of the sweep, seconds.
    pub host_wall_s: f64,
}

impl TuneMetrics {
    /// Pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialise")
    }

    /// Parses a document produced by [`TuneMetrics::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse/shape error message.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes [`TuneMetrics::to_json`] to `path`.
    ///
    /// # Errors
    /// Propagates the I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The `chaos_pool_bench` export (the `BENCH_chaos_pool.json`
/// schema): a seeded lifecycle + link-fault soak over the sharded
/// device pool. Three passes share one stream: a **chaos** pass with
/// a flapping device and a faulted link (the headline gates are
/// `silent_wrong == 0`, no dropped shards, and the evict/readmit loop
/// actually cycling), a **degraded throughput** pass with one device
/// permanently lost (gated at ≥ 2× the single-device simulated
/// throughput), and a **quiet** pass proving that all-zero fault
/// specs leave serving bit-identical to spec-free serving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPoolMetrics {
    /// Export schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Master seed of the workload and both fault schedules.
    pub seed: u64,
    /// Devices in the pool.
    pub devices: u64,
    /// Queries in the stream (each pass serves the same stream).
    pub queries: u64,
    /// Chaos pass: queries that produced a result.
    pub completed: u64,
    /// Chaos pass: queries shed by the deadline-aware brownout.
    pub shed: u64,
    /// Chaos pass: queries that missed their deadline.
    pub expired: u64,
    /// Chaos pass: queries failed with a surfaced error.
    pub failed: u64,
    /// Completions outside the GPU tolerance of the CPU reference
    /// with no surfaced error. The soak fails unless this is zero.
    pub silent_wrong: u64,
    /// Chaos pass: health-driven device evictions (must be > 0).
    pub evictions: u64,
    /// Chaos pass: probe-success readmissions (must be > 0).
    pub readmissions: u64,
    /// Chaos pass: lifecycle hang epochs observed at launch time.
    pub lifecycle_hangs: u64,
    /// Chaos pass: lifecycle loss epochs observed at launch time.
    pub lifecycle_losses: u64,
    /// Chaos pass: link transfers whose CRC caught a corruption.
    pub link_crc_detected: u64,
    /// Chaos pass: link retransmits charged for those corruptions.
    pub link_retransmits: u64,
    /// Chaos pass: link transfers that timed out (shard fails over).
    pub link_timeouts: u64,
    /// Chaos pass: shard tasks dispatched by the coordinator.
    pub shards_dispatched: u64,
    /// Chaos pass: shard tasks executed across all device threads.
    /// Equal to `shards_dispatched` — a drained shard is re-served,
    /// never dropped.
    pub shards_executed: u64,
    /// Chaos pass: shards recovered on the bit-exact CPU path.
    pub cpu_fallbacks: u64,
    /// `submitted == accepted + rejected` and
    /// `accepted == completed + expired + shed + failed` both held.
    pub accounting_consistent: bool,
    /// Throughput pass: simulated serving time of the 1-device pool.
    pub single_sim_time_s: f64,
    /// Throughput pass: simulated serving time of the `devices`-sized
    /// pool with one member permanently lost (and evicted).
    pub degraded_sim_time_s: f64,
    /// `single_sim_time_s / degraded_sim_time_s` (gated at ≥ 2).
    pub degraded_speedup: f64,
    /// Quiet pass: all-zero lifecycle + link specs produced results
    /// bit-identical to spec-free serving with untouched counters.
    pub quiet_bit_identical: bool,
    /// All gates held.
    pub gates_passed: bool,
    /// Host wall time of all passes, in milliseconds
    /// (nondeterministic — informational only).
    pub wall_time_ms: f64,
}

impl ChaosPoolMetrics {
    /// Pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialise")
    }

    /// Parses a document produced by [`ChaosPoolMetrics::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse/shape error message.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes [`ChaosPoolMetrics::to_json`] to `path`.
    ///
    /// # Errors
    /// Propagates the I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Parses `--<flag> <path>` from argv. Returns `Some(path)` only when
/// a value follows the flag and is not itself a `--` option, so bare
/// boolean flags (e.g. `run_all --csv` table mode) keep working.
#[must_use]
pub fn path_arg(args: &[String], flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    let value = args.get(pos + 1)?;
    if value.starts_with("--") {
        return None;
    }
    Some(value.clone())
}

/// Honours the shared `--json <path>` / `--csv <path>` export flags:
/// writes the requested documents and logs each path to stderr.
/// Exits the process on an I/O failure.
pub fn export_from_args(args: &[String], metrics: &SweepMetrics) {
    for (flag, write) in [
        (
            "--json",
            SweepMetrics::write_json as fn(&SweepMetrics, &str) -> std::io::Result<()>,
        ),
        ("--csv", SweepMetrics::write_csv),
    ] {
        if let Some(path) = path_arg(args, flag) {
            write(metrics, &path).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;
    use crate::SweepData;

    fn tiny() -> SweepMetrics {
        let d = SweepData::compute(Sweep {
            k_values: vec![32],
            m_values: vec![1024],
            n: 1024,
        })
        .expect("valid launch");
        SweepMetrics::collect(&d)
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let m = tiny();
        let back = SweepMetrics::from_json(&m.to_json()).expect("parse");
        assert_eq!(back, m);
    }

    #[test]
    fn summaries_match_profiles() {
        let m = tiny();
        let pt = &m.points[0];
        assert_eq!(pt.fused.counters, pt.fused.profile.total_counters());
        assert_eq!(pt.fused.time_s, pt.fused.profile.total_time_s());
        assert_eq!(
            pt.cublas_unfused.dram_transactions,
            pt.cublas_unfused.profile.total_mem().dram_transactions()
        );
    }

    #[test]
    fn path_arg_distinguishes_values_from_flags() {
        let args: Vec<String> = ["bin", "--smoke", "--csv", "--json", "out.json"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        assert_eq!(path_arg(&args, "--json"), Some("out.json".to_string()));
        assert_eq!(path_arg(&args, "--csv"), None, "next arg is a flag");
        assert_eq!(path_arg(&args, "--missing"), None);
    }

    #[test]
    fn csv_covers_every_kernel() {
        let m = tiny();
        let pt = &m.points[0];
        let kernels = pt.fused.profile.kernels.len()
            + pt.cuda_unfused.profile.kernels.len()
            + pt.cublas_unfused.profile.kernels.len();
        assert_eq!(m.to_csv().lines().count(), 1 + kernels);
    }
}
