//! Parameter grids (§IV: "The value of dimension K is set to 32, 64,
//! 128, and 256 in each group, and the value of dimension N is fixed
//! to 1024 in all groups. Within each group, the value of M dimension
//! increases from 1024 to 524288.").

/// The paper's K values.
pub const PAPER_K: [usize; 4] = [32, 64, 128, 256];
/// The paper's fixed N.
pub const PAPER_N: usize = 1024;

/// A `(K, M)` grid with fixed `N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sweep {
    /// Point-space dimensions to test.
    pub k_values: Vec<usize>,
    /// Source-point counts to test.
    pub m_values: Vec<usize>,
    /// Target-point count (fixed).
    pub n: usize,
}

/// `from, 2·from, 4·from, …` up to and including `to` (when `to` is a
/// power-of-two multiple of `from`; otherwise the last value ≤ `to`).
///
/// # Panics
/// Panics when `from == 0` (zero never doubles past `to`, so the loop
/// would never terminate) or when `to < from` (the grid would be
/// silently empty, which every caller would misread as "swept
/// nothing and succeeded").
fn doublings(from: usize, to: usize) -> Vec<usize> {
    assert!(from > 0, "doublings: `from` must be non-zero");
    assert!(
        from <= to,
        "doublings: empty range ({from} > {to}); swap the bounds"
    );
    let mut v = Vec::new();
    let mut m = from;
    while m <= to {
        v.push(m);
        match m.checked_mul(2) {
            Some(next) => m = next,
            None => break,
        }
    }
    v
}

impl Sweep {
    /// The paper's full grid: `M ∈ {1024, 2048, …, 524288}`.
    /// Budget ~10–20 minutes of traffic replay.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            k_values: PAPER_K.to_vec(),
            m_values: doublings(1024, 524_288),
            n: PAPER_N,
        }
    }

    /// Default grid: the same shape capped at `M = 65536`
    /// (~1–2 minutes).
    #[must_use]
    pub fn scaled() -> Self {
        Self {
            k_values: PAPER_K.to_vec(),
            m_values: doublings(1024, 65_536),
            n: PAPER_N,
        }
    }

    /// CI-sized grid (seconds).
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            k_values: vec![32, 256],
            m_values: vec![1024, 4096],
            n: PAPER_N,
        }
    }

    /// Chooses a sweep from command-line arguments: `--full` /
    /// `--smoke`, default scaled.
    #[must_use]
    pub fn from_args(args: &[String]) -> Self {
        if args.iter().any(|a| a == "--full") {
            Self::paper()
        } else if args.iter().any(|a| a == "--smoke") {
            Self::smoke()
        } else {
            Self::scaled()
        }
    }

    /// All `(k, m)` points, K-major (the paper's grouping).
    pub fn points(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.k_values
            .iter()
            .flat_map(move |&k| self.m_values.iter().map(move |&m| (k, m)))
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.k_values.len() * self.m_values.len()
    }

    /// True if the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_matches_section_4() {
        let s = Sweep::paper();
        assert_eq!(s.k_values, vec![32, 64, 128, 256]);
        assert_eq!(s.n, 1024);
        assert_eq!(*s.m_values.first().unwrap(), 1024);
        assert_eq!(*s.m_values.last().unwrap(), 524_288);
        assert_eq!(s.m_values.len(), 10);
    }

    #[test]
    fn points_are_k_major() {
        let s = Sweep::smoke();
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts, vec![(32, 1024), (32, 4096), (256, 1024), (256, 4096)]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn doublings_cover_edges() {
        assert_eq!(doublings(1024, 1024), vec![1024]);
        assert_eq!(doublings(3, 13), vec![3, 6, 12]);
        // Saturating edge: stop instead of overflowing.
        assert_eq!(doublings(usize::MAX / 2 + 1, usize::MAX).len(), 1);
    }

    #[test]
    #[should_panic(expected = "`from` must be non-zero")]
    fn doublings_reject_zero_start() {
        let _ = doublings(0, 1024);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn doublings_reject_inverted_range() {
        let _ = doublings(2048, 1024);
    }

    #[test]
    fn args_select_sweeps() {
        assert_eq!(Sweep::from_args(&["--full".into()]), Sweep::paper());
        assert_eq!(Sweep::from_args(&["--smoke".into()]), Sweep::smoke());
        assert_eq!(Sweep::from_args(&[]), Sweep::scaled());
    }
}
