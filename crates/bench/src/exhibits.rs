//! One function per paper exhibit, producing a [`TextTable`] from a
//! [`SweepData`]. Binaries print these; integration tests assert the
//! paper's claims on the same numbers.

use ks_gpu_sim::DeviceConfig;

use crate::data::SweepData;
use crate::table::{f3, ms, pct, TextTable};

/// Table I: the simulated device configuration.
#[must_use]
pub fn table1_config(dev: &DeviceConfig) -> TextTable {
    let mut t = TextTable::new(vec!["parameter", "value"]);
    t.row(vec!["Device".to_string(), dev.name.clone()]);
    t.row(vec![
        "Number of Multiprocessors".to_string(),
        dev.num_sms.to_string(),
    ]);
    t.row(vec![
        "Maximum number of threads per block".to_string(),
        dev.max_threads_per_block.to_string(),
    ]);
    t.row(vec!["Warp size".to_string(), dev.warp_size.to_string()]);
    t.row(vec![
        "Maximum number of resident threads per multiprocessor".to_string(),
        dev.max_threads_per_sm.to_string(),
    ]);
    t.row(vec![
        "Number of 32-bit registers per multiprocessor".to_string(),
        format!("{}K", dev.regs_per_sm / 1024),
    ]);
    t.row(vec![
        "Maximum number of 32-bit registers per thread".to_string(),
        dev.max_regs_per_thread.to_string(),
    ]);
    t.row(vec![
        "Maximum amount of shared memory per multiprocessor".to_string(),
        format!("{}KB", dev.smem_per_sm / 1024),
    ]);
    t.row(vec![
        "Shared Memory Bank Size".to_string(),
        format!("{}B", dev.smem_bank_bytes),
    ]);
    t.row(vec![
        "Number of shared memory banks".to_string(),
        dev.smem_banks.to_string(),
    ]);
    t.row(vec![
        "Number of warp schedulers".to_string(),
        dev.warp_schedulers.to_string(),
    ]);
    t.row(vec![
        "L2 size".to_string(),
        format!("{:.2}MB", dev.l2_bytes as f64 / (1024.0 * 1024.0)),
    ]);
    t
}

/// Fig 1: energy breakdown of the cuBLAS-Unfused pipeline, as shares
/// of total energy (compute / shared / L2 / DRAM).
#[must_use]
pub fn fig1_energy_breakdown(d: &SweepData) -> TextTable {
    let mut t = TextTable::new(vec!["K", "M", "compute", "smem", "L2", "DRAM"]);
    for p in &d.points {
        let e = &p.cublas_energy;
        let total = e.total_j();
        t.row(vec![
            p.k.to_string(),
            p.m.to_string(),
            pct(e.compute_j / total),
            pct(e.smem_j / total),
            pct(e.l2_j / total),
            pct(e.dram_j / total),
        ]);
    }
    t
}

/// Fig 2: L2 MPKI of the cuBLAS-Unfused pipeline.
#[must_use]
pub fn fig2_l2_mpki(d: &SweepData) -> TextTable {
    let mut t = TextTable::new(vec!["K", "M", "L2 MPKI"]);
    for p in &d.points {
        t.row(vec![
            p.k.to_string(),
            p.m.to_string(),
            f3(p.cublas_unfused.l2_mpki()),
        ]);
    }
    t
}

/// Fig 6: execution times normalised to cuBLAS-Unfused plus the two
/// speedup series.
#[must_use]
pub fn fig6_speedup(d: &SweepData) -> TextTable {
    let mut t = TextTable::new(vec![
        "K",
        "M",
        "t_fused",
        "t_cuda_unf",
        "t_cublas_unf",
        "norm_fused",
        "norm_cuda_unf",
        "speedup_vs_cublas",
        "speedup_vs_cuda",
    ]);
    for p in &d.points {
        let tc = p.cublas_unfused.total_time_s();
        t.row(vec![
            p.k.to_string(),
            p.m.to_string(),
            ms(p.fused.total_time_s()),
            ms(p.cuda_unfused.total_time_s()),
            ms(tc),
            f3(p.fused.total_time_s() / tc),
            f3(p.cuda_unfused.total_time_s() / tc),
            f3(p.speedup_vs_cublas()),
            f3(p.speedup_vs_cuda()),
        ]);
    }
    t
}

/// Fig 7: CUDA-C GEMM vs vendor (cuBLAS-model) GEMM execution time.
#[must_use]
pub fn fig7_gemm_compare(d: &SweepData) -> TextTable {
    let mut t = TextTable::new(vec!["K", "M", "t_cudac_gemm", "t_vendor_gemm", "slowdown"]);
    for p in &d.points {
        let tc = p.cudac_gemm().timing.time_s;
        let tv = p.vendor_gemm().timing.time_s;
        t.row(vec![
            p.k.to_string(),
            p.m.to_string(),
            ms(tc),
            ms(tv),
            f3(tc / tv),
        ]);
    }
    t
}

/// Fig 8a: L2 transactions normalised to cuBLAS-Unfused.
#[must_use]
pub fn fig8a_l2_transactions(d: &SweepData) -> TextTable {
    let mut t = TextTable::new(vec![
        "K",
        "M",
        "fused",
        "cuda_unfused",
        "cublas_unfused(=1)",
    ]);
    for p in &d.points {
        let base = p.cublas_unfused.total_mem().l2_transactions() as f64;
        t.row(vec![
            p.k.to_string(),
            p.m.to_string(),
            f3(p.fused.total_mem().l2_transactions() as f64 / base),
            f3(p.cuda_unfused.total_mem().l2_transactions() as f64 / base),
            "1.000".to_string(),
        ]);
    }
    t
}

/// Fig 8b: DRAM transactions normalised to cuBLAS-Unfused.
#[must_use]
pub fn fig8b_dram_transactions(d: &SweepData) -> TextTable {
    let mut t = TextTable::new(vec![
        "K",
        "M",
        "fused",
        "cuda_unfused",
        "cublas_unfused(=1)",
    ]);
    for p in &d.points {
        let base = p.cublas_unfused.total_mem().dram_transactions() as f64;
        t.row(vec![
            p.k.to_string(),
            p.m.to_string(),
            f3(p.fused.total_mem().dram_transactions() as f64 / base),
            f3(p.cuda_unfused.total_mem().dram_transactions() as f64 / base),
            "1.000".to_string(),
        ]);
    }
    t
}

/// Fig 9: absolute energy (mJ) split into compute/SMEM/L2/DRAM for all
/// three solutions.
#[must_use]
pub fn fig9_energy_compare(d: &SweepData) -> TextTable {
    let mut t = TextTable::new(vec![
        "K",
        "M",
        "variant",
        "compute_mJ",
        "smem_mJ",
        "l2_mJ",
        "dram_mJ",
        "total_mJ",
    ]);
    for p in &d.points {
        for (label, e) in [
            ("Fused", &p.fused_energy),
            ("CUDA-Unfused", &p.cuda_energy),
            ("cuBLAS-Unfused", &p.cublas_energy),
        ] {
            t.row(vec![
                p.k.to_string(),
                p.m.to_string(),
                label.to_string(),
                f3(e.compute_j * 1e3),
                f3(e.smem_j * 1e3),
                f3(e.l2_j * 1e3),
                f3(e.dram_j * 1e3),
                f3(e.total_j() * 1e3),
            ]);
        }
    }
    t
}

/// Table II: FLOP efficiency of the cuBLAS-Unfused and Fused kernel
/// summations (cycle-weighted over the pipeline, as the paper does).
#[must_use]
pub fn table2_flop_efficiency(d: &SweepData) -> TextTable {
    let peak = d.device.peak_sp_gflops();
    let mut t = TextTable::new(vec!["K", "M", "cuBLAS-Unfused", "Fused"]);
    for p in &d.points {
        t.row(vec![
            p.k.to_string(),
            p.m.to_string(),
            pct(p.cublas_unfused.flop_efficiency(peak)),
            pct(p.fused.flop_efficiency(peak)),
        ]);
    }
    t
}

/// Table III: total-energy savings of Fused vs cuBLAS-Unfused.
#[must_use]
pub fn table3_energy_savings(d: &SweepData) -> TextTable {
    let mut t = TextTable::new(vec!["K", "M", "energy saving"]);
    for p in &d.points {
        t.row(vec![
            p.k.to_string(),
            p.m.to_string(),
            pct(p.fused_energy.saving_vs(&p.cublas_energy)),
        ]);
    }
    t
}

/// DRAM-energy saving detail quoted in §V-C ("the Fused approach saves
/// more than 80% of the DRAM access energy").
#[must_use]
pub fn dram_energy_savings(d: &SweepData) -> TextTable {
    let mut t = TextTable::new(vec!["K", "M", "DRAM energy saving", "share of total"]);
    for p in &d.points {
        let saving = 1.0 - p.fused_energy.dram_j / p.cublas_energy.dram_j;
        let of_total = (p.cublas_energy.dram_j - p.fused_energy.dram_j) / p.cublas_energy.total_j();
        t.row(vec![
            p.k.to_string(),
            p.m.to_string(),
            pct(saving),
            pct(of_total),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;

    fn data() -> SweepData {
        SweepData::compute(Sweep::smoke()).expect("valid launch")
    }

    #[test]
    fn all_exhibits_render_nonempty() {
        let d = data();
        for (name, t) in [
            ("fig1", fig1_energy_breakdown(&d)),
            ("fig2", fig2_l2_mpki(&d)),
            ("fig6", fig6_speedup(&d)),
            ("fig7", fig7_gemm_compare(&d)),
            ("fig8a", fig8a_l2_transactions(&d)),
            ("fig8b", fig8b_dram_transactions(&d)),
            ("fig9", fig9_energy_compare(&d)),
            ("table2", table2_flop_efficiency(&d)),
            ("table3", table3_energy_savings(&d)),
            ("dram", dram_energy_savings(&d)),
        ] {
            assert!(!t.is_empty(), "{name} is empty");
            assert!(!t.render(name).is_empty());
            assert!(t.to_csv().lines().count() >= 2);
        }
    }

    #[test]
    fn table1_lists_every_table_i_row() {
        let t = table1_config(&DeviceConfig::gtx970());
        let r = t.render("Table I");
        for needle in [
            "Multiprocessors",
            "Warp size",
            "L2 size",
            "1.75MB",
            "warp schedulers",
        ] {
            assert!(r.contains(needle), "missing {needle}: {r}");
        }
    }
}
