//! Fig 1: energy breakdown of the cuBLAS-based kernel summation
//! (shares of total energy; N = 1024 in all cases).

use ks_bench::{exhibits, profile_or_exit, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d = profile_or_exit(Sweep::from_args(&args));
    exhibits::fig1_energy_breakdown(&d).print(
        "Fig 1: Energy breakdown of cuBLAS-Unfused kernel summation (N=1024)",
        args.iter().any(|a| a == "--csv"),
    );
}
