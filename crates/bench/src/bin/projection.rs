//! The paper's §V projection, made literal.
//!
//! The paper argues: *"If an SGEMM as good as cuBLAS is applied, fused
//! implementation is able to achieve up to 3.7X performance
//! improvement"* — inferred indirectly by comparing Fused against
//! CUDA-Unfused (both handicapped by CUDA-C code quality). Our
//! simulator can run the hypothesis directly: the same fused kernel
//! under the *vendor* execution model (hand-scheduled SASS quality).
//!
//! Printed per (K, M): the paper's indirect projection
//! (CUDA-Unfused / Fused) and the direct one
//! (cuBLAS-Unfused / Fused-vendor).

use ks_bench::table::{f3, ms, TextTable};
use ks_bench::{profile_or_exit, Sweep};
use ks_gpu_kernels::aux_kernels::Bandwidth;
use ks_gpu_kernels::fused::FusedKernelSummation;
use ks_gpu_kernels::gemm_engine::{GemmOperands, GemmShape};
use ks_gpu_sim::kernel::ExecModel;
use ks_gpu_sim::GpuDevice;

fn fused_vendor_time(m: usize, n: usize, k: usize) -> f64 {
    let mut dev = GpuDevice::gtx970();
    let shape = GemmShape { m, n, k };
    let ops = GemmOperands {
        a: dev.alloc_virtual(m * k),
        b: dev.alloc_virtual(k * n),
    };
    let a2 = dev.alloc_virtual(m);
    let b2 = dev.alloc_virtual(n);
    let w = dev.alloc_virtual(n);
    let v = dev.alloc_virtual(m);
    let kern = FusedKernelSummation::new(ops, a2, b2, w, v, shape, Bandwidth { h: 1.0 })
        .with_exec_model(ExecModel::Vendor);
    dev.launch(&kern).unwrap().timing.time_s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sweep = Sweep::from_args(&args);
    let d = profile_or_exit(sweep);

    let mut t = TextTable::new(vec![
        "K",
        "M",
        "t_fused_vendor",
        "indirect projection (cuda_unf / fused)",
        "direct projection (cublas_unf / fused_vendor)",
    ]);
    for p in &d.points {
        // The norms kernels are shared; add them to the vendor-fused
        // pipeline the same way.
        let aux: f64 = p.fused.kernels[..2].iter().map(|k| k.timing.time_s).sum();
        let fv = fused_vendor_time(p.m, p.n, p.k) + aux;
        t.row(vec![
            p.k.to_string(),
            p.m.to_string(),
            ms(fv),
            f3(p.speedup_vs_cuda()),
            f3(p.cublas_unfused.total_time_s() / fv),
        ]);
    }
    t.print("§V projection: fusion with a cuBLAS-quality GEMM", false);
}
