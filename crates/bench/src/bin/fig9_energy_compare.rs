//! Fig 9: energy consumption of the three solutions, broken down into
//! compute, shared memory, L2 and DRAM.

use ks_bench::{exhibits, profile_or_exit, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let d = profile_or_exit(Sweep::from_args(&args));
    exhibits::fig9_energy_compare(&d)
        .print("Fig 9: Energy breakdown (Compute / SMEM / L2 / DRAM)", csv);
    exhibits::dram_energy_savings(&d).print(
        "§V-C detail: DRAM energy savings of Fused vs cuBLAS-Unfused",
        csv,
    );
}
