//! Table I: device configuration of the simulated GTX970.

use ks_bench::exhibits::table1_config;
use ks_gpu_sim::DeviceConfig;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    table1_config(&DeviceConfig::gtx970()).print("Table I: Configuration (simulated GTX970)", csv);
}
