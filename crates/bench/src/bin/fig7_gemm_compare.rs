//! Fig 7: execution time of the CUDA-C GEMM vs the vendor
//! (cuBLAS-model) GEMM.

use ks_bench::{exhibits, profile_or_exit, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d = profile_or_exit(Sweep::from_args(&args));
    exhibits::fig7_gemm_compare(&d).print(
        "Fig 7: CUDA-C GEMM vs vendor GEMM execution time",
        args.iter().any(|a| a == "--csv"),
    );
}
