//! Fig 8: L2 (a) and DRAM (b) transaction counts normalised to
//! cuBLAS-Unfused.

use ks_bench::{exhibits, profile_or_exit, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let d = profile_or_exit(Sweep::from_args(&args));
    exhibits::fig8a_l2_transactions(&d)
        .print("Fig 8a: L2 transactions normalised to cuBLAS-Unfused", csv);
    exhibits::fig8b_dram_transactions(&d).print(
        "Fig 8b: DRAM transactions normalised to cuBLAS-Unfused",
        csv,
    );
}
