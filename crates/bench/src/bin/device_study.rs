//! Device-generality study (beyond the paper): do the conclusions
//! depend on the GTX970 specifically?
//!
//! Runs the K=32 and K=256 comparison on: the paper's GTX970; its
//! full-die sibling GTX980; and two hypothetical GTX970 variants with
//! a quarter-size and a four-times L2 — probing how the fusion
//! advantage responds to cache capacity (the fused kernel barely uses
//! the L2; the unfused pipeline lives and dies by it) and to
//! compute/bandwidth ratio.

use ks_bench::table::{f3, TextTable};
use ks_gpu_kernels::{GpuKernelSummation, GpuVariant};
use ks_gpu_sim::{DeviceConfig, GpuDevice};

fn study(dev_cfg: &DeviceConfig, m: usize, k: usize) -> (f64, f64) {
    let ks = GpuKernelSummation::new(m, 1024, k, 1.0);
    let run = |variant: GpuVariant| {
        let mut dev = GpuDevice::new(dev_cfg.clone());
        ks.profile(&mut dev, variant).expect("valid launch")
    };
    let fused = run(GpuVariant::Fused);
    let unfused = run(GpuVariant::CublasUnfused);
    let speedup = unfused.total_time_s() / fused.total_time_s();
    let dram_ratio = fused.total_mem().dram_transactions() as f64
        / unfused.total_mem().dram_transactions() as f64;
    (speedup, dram_ratio)
}

fn main() {
    let m = 16384;
    let devices: Vec<(&str, DeviceConfig)> = vec![
        ("GTX970 (paper)", DeviceConfig::gtx970()),
        ("GTX980", DeviceConfig::gtx980()),
        (
            "GTX970, L2/4",
            DeviceConfig {
                l2_bytes: 448 * 1024,
                name: "GTX970 quarter-L2".into(),
                ..DeviceConfig::gtx970()
            },
        ),
        (
            "GTX970, L2x4",
            DeviceConfig {
                l2_bytes: 7168 * 1024,
                name: "GTX970 quad-L2".into(),
                ..DeviceConfig::gtx970()
            },
        ),
    ];

    let mut t = TextTable::new(vec![
        "device",
        "speedup@K=32",
        "dram_ratio@K=32",
        "speedup@K=256",
        "dram_ratio@K=256",
    ]);
    for (label, cfg) in &devices {
        let (s32, d32) = study(cfg, m, 32);
        let (s256, d256) = study(cfg, m, 256);
        t.row(vec![
            label.to_string(),
            f3(s32),
            f3(d32),
            f3(s256),
            f3(d256),
        ]);
    }
    t.print(
        &format!("Device study: fused vs cuBLAS-Unfused at M={m}, N=1024"),
        false,
    );
    println!("The fusion advantage is a property of the algorithm, not of one card:");
    println!("it persists on the GTX980 and grows as the L2 shrinks (the unfused");
    println!("pipeline depends on the cache to absorb its intermediate re-reads).");
}
