//! Autotuner benchmark and gate (`BENCH_tune.json`).
//!
//! Runs the full [`ks_tune`] sweep — legal-lattice enumeration,
//! static-analyzer pruning, differential admission against the CPU
//! fused oracle, exact-counter profiling — fits the log-linear cost
//! model, takes the model's picks, and only *then* replays each pick
//! and the paper default once to validate the decisions the model
//! made blind. Gates:
//!
//! 1. **fit quality** — the holdout's worst relative time error stays
//!    under [`HOLDOUT_ERR_CEILING`];
//! 2. **never worse** — every pick's replayed simulated time is at
//!    most the default's × (1 + [`REPLAY_TOL`]);
//! 3. **a real win** — at least one non-paper shape's pick strictly
//!    beats the default in replay;
//! 4. **model-only selection** — structural: picks come out of
//!    [`ks_tune::tune`] before any validation replay runs.
//!
//! ```text
//! tune_bench [--smoke] [--seed S] [--json PATH]
//! ```
//!
//! * default: the smoke grid (7 training shapes, 6 pick shapes, full
//!   150-geometry lattice);
//! * `--smoke`: a compact 4-train/3-pick grid, CI-sized;
//! * `--json PATH`: write the [`TuneMetrics`] document.

use std::time::Instant;

use ks_bench::metrics::{path_arg, TuneMetrics, TunePickMetrics, SCHEMA_VERSION};
use ks_gpu_kernels::TileGeometry;
use ks_gpu_sim::config::DeviceConfig;
use ks_tune::{profile_geometry, tune, ProblemShape, TuneConfig};

/// Ceiling on the holdout's worst relative time error.
const HOLDOUT_ERR_CEILING: f64 = 0.25;

/// Replay tolerance for the "never worse than default" gate.
const REPLAY_TOL: f64 = 1e-9;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = path_arg(&args, "--seed").map_or(0x5EED, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid --seed value {v}");
            std::process::exit(2);
        })
    });

    let mut cfg = TuneConfig::smoke(DeviceConfig::gtx970());
    cfg.seed = seed;
    if smoke {
        cfg.train_shapes = vec![
            ProblemShape::new(1024, 1024, 32),
            ProblemShape::new(512, 512, 32),
            ProblemShape::new(256, 256, 64),
            ProblemShape::new(2048, 512, 128),
        ];
        cfg.pick_shapes = vec![
            ProblemShape::new(1024, 1024, 32),
            ProblemShape::new(256, 256, 64),
            ProblemShape::new(384, 256, 96),
        ];
    }

    let wall = Instant::now();
    eprintln!(
        "tune_bench: sweeping {} geometries x {} shapes on {}",
        TileGeometry::lattice(&cfg.device).len(),
        cfg.train_shapes.len(),
        cfg.device.name
    );
    let out = tune(&cfg);
    eprintln!(
        "tune_bench: {} admitted, {} rejected, {} samples; holdout mape {:.4}, max {:.4}",
        out.admitted.len(),
        out.rejected.len(),
        out.samples.len(),
        out.fit.holdout_mape_time,
        out.fit.holdout_max_rel_time
    );

    // Validation replay — strictly after the picks were made.
    let default = TileGeometry::paper_default();
    let mut picks = Vec::new();
    let mut wins = 0u64;
    let mut never_worse = true;
    for p in &out.picks {
        let shape = ProblemShape::new(p.m, p.n, p.k);
        let picked = profile_geometry(&cfg.device, &p.choice.geometry, &shape)
            .unwrap_or_else(|e| panic!("replaying pick at {shape}: {e}"));
        let base = profile_geometry(&cfg.device, &default, &shape)
            .unwrap_or_else(|e| panic!("replaying default at {shape}: {e}"));
        let speedup = base.time_s / picked.time_s;
        if picked.time_s > base.time_s * (1.0 + REPLAY_TOL) {
            never_worse = false;
            eprintln!(
                "tune_bench: GATE FAIL at {shape}: pick {} replays {:.3e}s vs default {:.3e}s",
                p.choice.geometry, picked.time_s, base.time_s
            );
        }
        let non_paper = (p.m, p.n, p.k) != (128, 128, 8);
        if non_paper && speedup > 1.0 && p.choice.geometry != default {
            wins += 1;
        }
        eprintln!(
            "tune_bench: {shape}: pick {} ({:.3e}s pred) replays {:.2}x vs default",
            p.choice.geometry, p.choice.pred_time_s, speedup
        );
        picks.push(TunePickMetrics {
            m: p.m as u64,
            n: p.n as u64,
            k: p.k as u64,
            geometry: p.choice.geometry.to_string(),
            pred_time_s: p.choice.pred_time_s,
            pred_energy_j: p.choice.pred_energy_j,
            picked_time_s: picked.time_s,
            default_time_s: base.time_s,
            speedup,
            low_power: p.choice.low_power.map(|g| g.to_string()),
            low_power_energy_j: p.choice.low_power_energy_j,
        });
    }

    let fit_ok = out.fit.holdout_max_rel_time <= HOLDOUT_ERR_CEILING;
    if !fit_ok {
        eprintln!(
            "tune_bench: GATE FAIL: holdout max rel time error {:.4} > {HOLDOUT_ERR_CEILING}",
            out.fit.holdout_max_rel_time
        );
    }
    if wins == 0 {
        eprintln!("tune_bench: GATE FAIL: no non-paper shape strictly beat the default");
    }
    let gates_passed = fit_ok && never_worse && wins > 0;

    let metrics = TuneMetrics {
        schema_version: SCHEMA_VERSION,
        seed,
        device: cfg.device.name.clone(),
        lattice: TileGeometry::lattice(&cfg.device).len() as u64,
        admitted: out.admitted.len() as u64,
        rejected: out.rejected.len() as u64,
        samples: out.samples.len() as u64,
        train_count: out.fit.train_count as u64,
        holdout_count: out.fit.holdout_count as u64,
        holdout_mape_time: out.fit.holdout_mape_time,
        holdout_max_rel_time: out.fit.holdout_max_rel_time,
        holdout_mape_energy: out.fit.holdout_mape_energy,
        holdout_max_rel_energy: out.fit.holdout_max_rel_energy,
        advertised_rel_err: out.fit.advertised_rel_err(),
        picks,
        wins,
        gates_passed,
        host_wall_s: wall.elapsed().as_secs_f64(),
    };

    if let Some(path) = path_arg(&args, "--json") {
        metrics.write_json(&path).unwrap_or_else(|e| {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("tune_bench: wrote {path}");
    }
    println!("{}", metrics.to_json());
    if !gates_passed {
        std::process::exit(1);
    }
    eprintln!(
        "tune_bench: all gates passed ({} picks, {} strict wins, {:.1}s)",
        metrics.picks.len(),
        wins,
        metrics.host_wall_s
    );
}
