//! Seeded chaos soak of the resilient serving backend
//! (`BENCH_chaos.json`).
//!
//! Drives a query stream through [`ServeBackend::GpuResilient`] on a
//! device with an *active* fault model — SMEM/register upsets plus
//! launch-level SM losses and watchdog timeouts, all drawn from a
//! fixed seed — and checks every single outcome against the CPU fused
//! reference:
//!
//! * a completion must be bit-identical to the reference (CPU rung) or
//!   within the GPU tolerance (healthy GPU rungs);
//! * anything else must have surfaced as an error on the ticket.
//!
//! A completion outside tolerance with no error is **silently wrong**
//! — the failure mode the ABFT ladder exists to prevent — and fails
//! the soak, as does any inconsistency in the report's retry/breaker/
//! degradation accounting.
//!
//! ```text
//! chaos_bench [--smoke] [--queries N] [--seed S] [--json PATH]
//! ```
//!
//! * default stream: 2000 queries; `--smoke`: 500 (CI-sized);
//! * `--seed S`: master seed of the workload and fault schedule
//!   (default 42);
//! * `--json PATH`: write the [`ChaosMetrics`] document.

use std::time::Instant;

use ks_bench::metrics::{path_arg, ChaosMetrics, SCHEMA_VERSION};
use ks_blas::{Layout, Matrix};
use ks_core::problem::KernelSumProblem;
use ks_core::{solve_multi_fused, FusedCpuConfig, GaussianKernel};
use ks_gpu_sim::FaultSpec;
use ks_serve::{
    generate_queries, Query, ServeBackend, ServeConfig, Server, Submit, Ticket, WorkloadConfig,
};

/// Per-launch fault rates of the soak: expected data flips well above
/// the ISSUE's 1e-3/launch floor, plus launch-level faults so the
/// retry and breaker paths actually run.
const SMEM_RATE: f64 = 0.05;
const REG_RATE: f64 = 0.05;
const SM_LOSS_RATE: f64 = 0.01;
const WATCHDOG_RATE: f64 = 0.005;

/// The single-shot CPU fused answer for one query — the same solver
/// configuration the server's safe harbor runs, so CPU-rung
/// completions must match it bit for bit.
fn reference(q: &Query) -> Vec<f32> {
    let p = KernelSumProblem::builder()
        .sources(q.sources.points().clone())
        .targets((*q.targets).clone())
        .unit_weights()
        .kernel(GaussianKernel { h: q.h })
        .build();
    let w = Matrix::from_fn(q.weights.len(), 1, Layout::RowMajor, |j, _| q.weights[j]);
    let v = solve_multi_fused(&p, &w, &FusedCpuConfig::default());
    (0..v.rows()).map(|i| v.get(i, 0)).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = path_arg(&args, "--seed").map_or(42, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid --seed value {v}");
            std::process::exit(2);
        })
    });
    let queries: usize = path_arg(&args, "--queries").map_or(if smoke { 500 } else { 2000 }, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid --queries value {v}");
            std::process::exit(2);
        })
    });

    let wl = WorkloadConfig {
        clients: 1,
        queries_per_client: queries,
        corpora: 3,
        shared_ratio: 0.9,
        large_ratio: 0.0,
        m: 256,
        n: 128,
        k: 16,
        h: 1.0,
        deadline: None,
        seed,
    };
    let stream = generate_queries(&wl);

    let mut cfg = ServeConfig {
        backend: ServeBackend::GpuResilient,
        queue_capacity: stream.len(),
        start_paused: true,
        ..ServeConfig::default()
    };
    cfg.device.fault = Some(FaultSpec {
        seed: seed ^ 0xC4A0_5BAD,
        smem_rate: SMEM_RATE,
        reg_rate: REG_RATE,
        sm_loss_rate: SM_LOSS_RATE,
        watchdog_rate: WATCHDOG_RATE,
        // DRAM exponent flips stay off: flips landing in the norm
        // intermediates *before* the checksummed kernel are outside
        // ABFT coverage by design (DESIGN.md §11).
        dram_rate: 0.0,
    });

    let t0 = Instant::now();
    let mut srv = Server::start(cfg);
    let tickets: Vec<Ticket> = stream
        .iter()
        .map(|q| match srv.submit(q.clone()) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => {
                eprintln!("error: queue sized for the stream rejected a query");
                std::process::exit(1);
            }
        })
        .collect();
    srv.resume();

    let mut bit_exact = 0u64;
    let mut tolerant = 0u64;
    let mut silent_wrong = 0u64;
    let mut errors = 0u64;
    for (qi, (q, t)) in stream.iter().zip(&tickets).enumerate() {
        match t.wait() {
            Ok(got) => {
                let want = reference(q);
                assert_eq!(got.len(), want.len(), "query {qi}: result length");
                let exact = got
                    .iter()
                    .zip(want.iter())
                    .all(|(g, w)| g.to_bits() == w.to_bits());
                let close = got
                    .iter()
                    .zip(want.iter())
                    .all(|(g, w)| (g - w).abs() <= 5e-3 * w.abs().max(1.0));
                if exact {
                    bit_exact += 1;
                } else if close {
                    tolerant += 1;
                } else {
                    silent_wrong += 1;
                    eprintln!("SILENT WRONG: query {qi} completed outside tolerance");
                }
            }
            Err(e) => {
                errors += 1;
                eprintln!("query {qi} surfaced: {e}");
            }
        }
        if (qi + 1) % 100 == 0 {
            eprintln!("checked {}/{} queries", qi + 1, stream.len());
        }
    }
    let report = srv.shutdown();
    let wall_time_ms = t0.elapsed().as_secs_f64() * 1e3;

    let counters_consistent = report.attempts == report.batches + report.retries
        && report.submitted == report.accepted + report.rejected
        && report.accepted == report.completed + report.expired + report.shed + report.failed
        && report.completed == bit_exact + tolerant + silent_wrong
        && report.expired + report.shed + report.failed == errors
        && report.internal_errors == 0;

    let metrics = ChaosMetrics {
        schema_version: SCHEMA_VERSION,
        seed,
        smem_rate: SMEM_RATE,
        reg_rate: REG_RATE,
        sm_loss_rate: SM_LOSS_RATE,
        watchdog_rate: WATCHDOG_RATE,
        submitted: report.submitted,
        rejected: report.rejected,
        completed: report.completed,
        errors,
        bit_exact,
        tolerant,
        silent_wrong,
        batches: report.batches,
        attempts: report.attempts,
        retries: report.retries,
        fallbacks: report.fallbacks,
        degraded_completions: report.degraded_completions,
        corruption_detected: report.corruption_detected,
        injected_faults: report.injected_faults,
        undetected_injected: report.undetected_injected,
        breaker_trips: report.breaker_trips,
        breaker_resets: report.breaker_resets,
        internal_errors: report.internal_errors,
        counters_consistent,
        wall_time_ms,
    };

    eprintln!(
        "{} queries in {wall_time_ms:.0} ms: {bit_exact} bit-exact, {tolerant} in-tolerance, \
         {errors} surfaced, {silent_wrong} silently wrong",
        report.submitted
    );
    eprintln!(
        "ladder: {} batches, {} attempts ({} retries), {} corruption detections, \
         {} injected fault events, {} breaker trips / {} resets, {} CPU fallbacks",
        report.batches,
        report.attempts,
        report.retries,
        report.corruption_detected,
        report.injected_faults,
        report.breaker_trips,
        report.breaker_resets,
        report.fallbacks
    );

    if let Some(path) = path_arg(&args, "--json") {
        metrics.write_json(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    if silent_wrong > 0 {
        eprintln!("FAIL: {silent_wrong} silently-wrong results");
        std::process::exit(1);
    }
    if !counters_consistent {
        eprintln!("FAIL: ServeReport accounting is inconsistent: {report:?}");
        std::process::exit(1);
    }
    eprintln!("chaos soak passed: zero silently-wrong results, accounting consistent");
}
