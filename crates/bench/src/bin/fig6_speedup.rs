//! Fig 6: execution time (normalised to cuBLAS-Unfused) and speedup of
//! the fused kernel summation versus both unfused implementations.

use ks_bench::{exhibits, profile_or_exit, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d = profile_or_exit(Sweep::from_args(&args));
    exhibits::fig6_speedup(&d).print(
        "Fig 6: Execution time and speedup of fused kernel summation",
        args.iter().any(|a| a == "--csv"),
    );
}
