//! Table III: total-energy savings of Fused compared to
//! cuBLAS-Unfused.

use ks_bench::{exhibits, profile_or_exit, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d = profile_or_exit(Sweep::from_args(&args));
    exhibits::table3_energy_savings(&d).print(
        "Table III: Energy Savings of Fused compared to cuBLAS-Unfused",
        args.iter().any(|a| a == "--csv"),
    );
}
