//! Horizontal-fusion serving benchmark (`BENCH_pack.json`).
//!
//! Serves one deterministic heterogeneous small-query stream twice:
//!
//! 1. **pack off** — every small batch launches back-to-back, each
//!    underfilling the device (the bit-exactness golden);
//! 2. **pack on** — mutually-unrelated small batches from one
//!    scheduling wave fuse into a single routed launch.
//!
//! Any bit drift, a simulated-time speedup below the floor, no DRAM
//! saving, or a pass where packing never fired fails the run.
//!
//! ```text
//! pack_bench [--smoke] [--queries N] [--seed S] [--json PATH]
//! ```
//!
//! * default stream: 128 queries in waves of 16 mutually-unrelated
//!   `(M, N, K) = (256, 256, 32)` pairs over 4 shared corpora × 4
//!   shared target sets; `--smoke` shortens the stream to 64 queries
//!   (CI-sized) at the same wave shape, so the speedup gate measures
//!   the same packing economics;
//! * `--seed S`: master workload seed (default 11);
//! * `--json PATH`: write the [`PackMetrics`] document.

use std::time::Instant;

use ks_bench::metrics::{path_arg, PackMetrics, PackRunMetrics, SCHEMA_VERSION};
use ks_gpu_sim::config::DeviceConfig;
use ks_serve::{
    generate_small_queries, packed_smoke_workload, Query, ServeConfig, ServeReport, Server, Submit,
    Ticket,
};

/// Simulated-time speedup floor for the packed pass over back-to-back
/// serving (the paper-level target is 2×; the smoke stream must still
/// clear 1.5×).
const SPEEDUP_FLOOR: f64 = 1.5;

fn usize_arg(args: &[String], flag: &str, default: usize) -> usize {
    path_arg(args, flag).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid {flag} value {v}");
            std::process::exit(2);
        })
    })
}

/// Serves the whole stream through one paused server and returns every
/// per-query outcome plus the shutdown report and host wall time.
fn serve(cfg: ServeConfig, stream: &[Query]) -> (Vec<Option<Vec<f32>>>, ServeReport, f64) {
    let t0 = Instant::now();
    let mut srv = Server::start(cfg);
    let tickets: Vec<Ticket> = stream
        .iter()
        .map(|q| match srv.submit(q.clone()) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => {
                eprintln!("error: queue sized for the stream rejected a query");
                std::process::exit(1);
            }
        })
        .collect();
    srv.resume();
    let results: Vec<Option<Vec<f32>>> = tickets.iter().map(|t| t.wait().ok()).collect();
    let report = srv.shutdown();
    (results, report, t0.elapsed().as_secs_f64() * 1e3)
}

/// Mean utilized fraction of a full resident wave across the fused
/// kernels of a run: `grid_blocks / (num_sms · blocks_per_sm)`,
/// capped at 1 per kernel.
fn fused_wave_fill(report: &ServeReport, dev: &DeviceConfig) -> f64 {
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for prof in &report.profiles {
        for k in &prof.kernels {
            if !k.name.starts_with("fused_multi") {
                continue;
            }
            let resident = f64::from(dev.num_sms) * f64::from(k.occupancy.blocks_per_sm);
            let blocks = k.launch.grid.count() as f64;
            sum += (blocks / resident).min(1.0);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Flattens one pass into the export row.
fn run_metrics(report: &ServeReport, dev: &DeviceConfig, wall_time_ms: f64) -> PackRunMetrics {
    PackRunMetrics {
        completed: report.completed,
        failed: report.failed,
        batches: report.batches,
        launches: report.launches,
        packed_launches: report.packed_launches,
        packed_segments: report.packed_segments,
        dram_transactions: report
            .profiles
            .iter()
            .map(|p| p.total_mem().dram_transactions())
            .sum(),
        fused_wave_fill: fused_wave_fill(report, dev),
        sim_time_s: report.profiles.iter().map(|p| p.total_time_s()).sum(),
        wall_time_ms,
    }
}

fn bits_eq(a: &[Option<Vec<f32>>], b: &[Option<Vec<f32>>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Some(x), Some(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
            }
            (None, None) => true,
            _ => false,
        })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = usize_arg(&args, "--seed", 11) as u64;
    let queries = usize_arg(&args, "--queries", if smoke { 64 } else { 128 });

    let mut wl = packed_smoke_workload();
    wl.queries = queries;
    wl.seed = seed;
    let stream = generate_small_queries(&wl);
    let cfg = |pack: bool| ServeConfig {
        queue_capacity: stream.len(),
        start_paused: true,
        pack,
        ..ServeConfig::default()
    };
    let device = cfg(false).device;

    eprintln!("serving {} queries back-to-back (golden)...", stream.len());
    let (golden, unpacked_report, unpacked_wall) = serve(cfg(false), &stream);
    eprintln!("serving with horizontal fusion...");
    let (packed_res, packed_report, packed_wall) = serve(cfg(true), &stream);

    let unpacked = run_metrics(&unpacked_report, &device, unpacked_wall);
    let packed = run_metrics(&packed_report, &device, packed_wall);
    let speedup = unpacked.sim_time_s / packed.sim_time_s;
    let dram_saved = unpacked.dram_transactions as i64 - packed.dram_transactions as i64;
    let bit_identical = bits_eq(&golden, &packed_res);
    let packing_fired = packed.packed_launches > 0
        && packed.packed_segments >= 2 * packed.packed_launches
        && unpacked.packed_launches == 0;
    let counters_clean = packed.completed == unpacked.completed
        && packed.failed == 0
        && unpacked.failed == 0
        && packed.launches < unpacked.launches;

    let gates_passed = bit_identical
        && packing_fired
        && counters_clean
        && speedup >= SPEEDUP_FLOOR
        && dram_saved > 0;

    let metrics = PackMetrics {
        schema_version: SCHEMA_VERSION,
        seed,
        queries: stream.len() as u64,
        m: wl.m as u64,
        n: wl.n as u64,
        k: wl.k as u64,
        corpora: wl.corpora as u64,
        target_sets: wl.target_sets as u64,
        unpacked,
        packed,
        speedup,
        dram_saved,
        bit_identical,
        gates_passed,
    };

    eprintln!(
        "sim time: {:.6} s back-to-back, {:.6} s packed ({speedup:.2}x, floor {SPEEDUP_FLOOR}x)",
        metrics.unpacked.sim_time_s, metrics.packed.sim_time_s
    );
    eprintln!(
        "launches: {} -> {} ({} packed waves carrying {} segments); \
         DRAM: {} -> {} ({dram_saved} saved); fused wave fill {:.2} -> {:.2}",
        metrics.unpacked.launches,
        metrics.packed.launches,
        metrics.packed.packed_launches,
        metrics.packed.packed_segments,
        metrics.unpacked.dram_transactions,
        metrics.packed.dram_transactions,
        metrics.unpacked.fused_wave_fill,
        metrics.packed.fused_wave_fill,
    );
    eprintln!(
        "wall: golden {:.0} ms, packed {:.0} ms",
        metrics.unpacked.wall_time_ms, metrics.packed.wall_time_ms
    );

    if let Some(path) = path_arg(&args, "--json") {
        metrics.write_json(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    if !bit_identical {
        eprintln!("FAIL: packed results drifted from back-to-back serving");
    }
    if !packing_fired {
        eprintln!("FAIL: horizontal fusion never fired on the packing stream");
    }
    if !counters_clean {
        eprintln!("FAIL: serve counters drifted between passes");
    }
    if speedup < SPEEDUP_FLOOR {
        eprintln!("FAIL: simulated speedup {speedup:.2}x below the {SPEEDUP_FLOOR}x floor");
    }
    if dram_saved <= 0 {
        eprintln!("FAIL: packing must save DRAM transactions ({dram_saved})");
    }
    if !gates_passed {
        std::process::exit(1);
    }
    eprintln!("pack bench passed: bit-identical, {speedup:.2}x, {dram_saved} DRAM saved");
}
