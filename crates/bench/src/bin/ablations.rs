//! Ablation studies for the design choices of §III (not a paper
//! exhibit — these quantify the decisions DESIGN.md calls out):
//!
//! 1. double buffering on/off (§III-A);
//! 2. swizzled vs naive shared-memory placement (§III-B, Fig 5);
//! 3. atomic vs two-pass inter-block reduction (§III-C);
//! 4. naive vs coalesced unfused summation kernel (baseline strength);
//! 5. occupancy vs registers-per-thread (§III-A's 8×8-microtile
//!    trade-off).

use ks_bench::table::{f3, ms, TableSet, TextTable};
use ks_gpu_kernels::aux_kernels::{Bandwidth, EvalSumCoalescedKernel, EvalSumKernel};
use ks_gpu_kernels::fused::{FusedKernelSummation, ReducePartialsKernel, Reduction};
use ks_gpu_kernels::fused_multi::FusedMultiWeight;
use ks_gpu_kernels::gemm_engine::{GemmOperands, GemmShape};
use ks_gpu_kernels::small_micro::Sgemm4x4;
use ks_gpu_kernels::{CudaSgemm, SmemLayout};
use ks_gpu_sim::kernel::KernelResources;
use ks_gpu_sim::occupancy::occupancy;
use ks_gpu_sim::{DeviceConfig, GpuDevice};

struct Setup {
    dev: GpuDevice,
    ops: GemmOperands,
    a2: ks_gpu_sim::BufId,
    b2: ks_gpu_sim::BufId,
    w: ks_gpu_sim::BufId,
    v: ks_gpu_sim::BufId,
    shape: GemmShape,
    bw: Bandwidth,
}

fn setup(m: usize, n: usize, k: usize) -> Setup {
    let mut dev = GpuDevice::gtx970();
    let shape = GemmShape { m, n, k };
    let ops = GemmOperands {
        a: dev.alloc_virtual(m * k),
        b: dev.alloc_virtual(k * n),
    };
    let a2 = dev.alloc_virtual(m);
    let b2 = dev.alloc_virtual(n);
    let w = dev.alloc_virtual(n);
    let v = dev.alloc_virtual(m);
    Setup {
        dev,
        ops,
        a2,
        b2,
        w,
        v,
        shape,
        bw: Bandwidth { h: 1.0 },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut tables = TableSet::new(false);
    let (m, n, k) = (16384, 1024, 64);
    println!("Ablations at M={m}, N={n}, K={k} (simulated GTX970)\n");

    // 1. Double buffering.
    let mut t = TextTable::new(vec!["double_buffer", "time", "syncthreads", "smem_bytes"]);
    for db in [true, false] {
        let mut s = setup(m, n, k);
        let kern = FusedKernelSummation::new(s.ops, s.a2, s.b2, s.w, s.v, s.shape, s.bw)
            .with_double_buffer(db);
        let p = s.dev.launch(&kern).unwrap();
        t.row(vec![
            db.to_string(),
            ms(p.timing.time_s),
            p.counters.sync_insts.to_string(),
            p.resources.smem_bytes_per_block.to_string(),
        ]);
    }
    tables.add("Ablation 1: double buffering (fused kernel)", t);

    // 2. Shared-memory layout.
    let mut t = TextTable::new(vec![
        "layout",
        "time",
        "smem_load_trans",
        "bank_cycles_per_inst",
    ]);
    for (label, layout) in [
        ("swizzled (Fig 5)", SmemLayout::Swizzled),
        ("naive row-major", SmemLayout::NaiveRowMajor),
    ] {
        let mut s = setup(m, n, k);
        let kern = FusedKernelSummation::new(s.ops, s.a2, s.b2, s.w, s.v, s.shape, s.bw)
            .with_layout(layout);
        let p = s.dev.launch(&kern).unwrap();
        t.row(vec![
            label.to_string(),
            ms(p.timing.time_s),
            p.counters.smem.load_transactions.to_string(),
            f3(p.counters.smem.replay_factor()),
        ]);
    }
    tables.add("Ablation 2: shared-memory placement (fused kernel)", t);

    // 3. Reduction scheme.
    let mut t = TextTable::new(vec!["reduction", "time", "dram_writes", "l2_writes"]);
    {
        let mut s = setup(m, n, k);
        let kern = FusedKernelSummation::new(s.ops, s.a2, s.b2, s.w, s.v, s.shape, s.bw);
        let p = s.dev.launch(&kern).unwrap();
        t.row(vec![
            "atomicAdd (paper)".to_string(),
            ms(p.timing.time_s),
            p.mem.dram_writes.to_string(),
            p.mem.l2_writes.to_string(),
        ]);
    }
    {
        let mut s = setup(m, n, k);
        let nbx = n / 128;
        let partials = s.dev.alloc_virtual(nbx * m);
        let kern = FusedKernelSummation::new(s.ops, s.a2, s.b2, s.w, s.v, s.shape, s.bw)
            .with_reduction(Reduction::TwoPass { partials });
        let p1 = s.dev.launch(&kern).unwrap();
        let p2 = s
            .dev
            .launch(&ReducePartialsKernel::new(partials, s.v, m, nbx))
            .unwrap();
        t.row(vec![
            "two-pass store+reduce".to_string(),
            ms(p1.timing.time_s + p2.timing.time_s),
            (p1.mem.dram_writes + p2.mem.dram_writes).to_string(),
            (p1.mem.l2_writes + p2.mem.l2_writes).to_string(),
        ]);
    }
    tables.add("Ablation 3: inter-block reduction (fused kernel)", t);

    // 4. Unfused summation kernel strength.
    let mut t = TextTable::new(vec!["summation kernel", "time", "l2_reads", "dram_reads"]);
    for coalesced in [false, true] {
        let mut dev = GpuDevice::gtx970();
        let c = dev.alloc_virtual(m * n);
        let (a2, b2, w, v) = (
            dev.alloc_virtual(m),
            dev.alloc_virtual(n),
            dev.alloc_virtual(n),
            dev.alloc_virtual(m),
        );
        let bw = Bandwidth { h: 1.0 };
        let p = if coalesced {
            dev.launch(&EvalSumCoalescedKernel::new(c, a2, b2, w, v, m, n, bw))
                .unwrap()
        } else {
            dev.launch(&EvalSumKernel::new(c, a2, b2, w, v, m, n, bw))
                .unwrap()
        };
        t.row(vec![
            if coalesced {
                "warp-per-row (tuned)"
            } else {
                "thread-per-row (naive, paper baseline)"
            }
            .to_string(),
            ms(p.timing.time_s),
            p.mem.l2_reads.to_string(),
            p.mem.dram_reads().to_string(),
        ]);
    }
    tables.add("Ablation 4: unfused evaluation+summation kernel", t);

    // 5. Microtile size: 8×8 (paper) vs 4×4 (§III-A's rejected
    //    alternative) on the plain GEMM.
    let mut t = TextTable::new(vec![
        "microtile",
        "time",
        "smem_load_insts",
        "warp_insts",
        "bound",
    ]);
    {
        let shape = GemmShape { m, n, k };
        let run8 = {
            let mut dev = GpuDevice::gtx970();
            let ops = GemmOperands {
                a: dev.alloc_virtual(m * k),
                b: dev.alloc_virtual(k * n),
            };
            let c = dev.alloc_virtual(m * n);
            dev.launch(&CudaSgemm::new(ops, c, shape)).unwrap()
        };
        let run4 = {
            let mut dev = GpuDevice::gtx970();
            let ops = GemmOperands {
                a: dev.alloc_virtual(m * k),
                b: dev.alloc_virtual(k * n),
            };
            let c = dev.alloc_virtual(m * n);
            dev.launch(&Sgemm4x4::new(ops, c, shape)).unwrap()
        };
        for (label, p) in [("8x8 (paper)", &run8), ("4x4 (1024 threads)", &run4)] {
            t.row(vec![
                label.to_string(),
                ms(p.timing.time_s),
                p.counters.smem.load_instructions.to_string(),
                p.counters.warp_insts().to_string(),
                format!("{:?}", p.timing.bound),
            ]);
        }
    }
    tables.add("Ablation 5: microtile size (GEMM only)", t);

    // 6. Multi-weight fusion vs repeated single-weight passes.
    let mut t = TextTable::new(vec!["strategy", "time", "blocks/SM", "flops"]);
    for r in [2usize, 4] {
        let shape = GemmShape { m, n, k };
        let multi = {
            let mut dev = GpuDevice::gtx970();
            let ops = GemmOperands {
                a: dev.alloc_virtual(m * k),
                b: dev.alloc_virtual(k * n),
            };
            let (a2, b2) = (dev.alloc_virtual(m), dev.alloc_virtual(n));
            let w = dev.alloc_virtual(n * r);
            let v = dev.alloc_virtual(m * r);
            dev.launch(&FusedMultiWeight::new(
                ops,
                a2,
                b2,
                w,
                v,
                shape,
                Bandwidth { h: 1.0 },
                r,
            ))
            .unwrap()
        };
        let single = {
            let mut s = setup(m, n, k);
            let kern = FusedKernelSummation::new(s.ops, s.a2, s.b2, s.w, s.v, s.shape, s.bw);
            s.dev.launch(&kern).unwrap()
        };
        t.row(vec![
            format!("fused multi-weight R={r}"),
            ms(multi.timing.time_s),
            multi.occupancy.blocks_per_sm.to_string(),
            multi.counters.flops.to_string(),
        ]);
        t.row(vec![
            format!("{r}x single-weight passes"),
            ms(single.timing.time_s * r as f64),
            single.occupancy.blocks_per_sm.to_string(),
            (single.counters.flops * r as u64).to_string(),
        ]);
    }
    tables.add("Ablation 6: multi-weight fusion (extension)", t);

    // 7. Occupancy vs registers (the §III-A microtile trade-off).
    let dev = DeviceConfig::gtx970();
    let mut t = TextTable::new(vec![
        "regs/thread",
        "microtile",
        "blocks/SM",
        "warps/SM",
        "occupancy",
    ]);
    for (regs, micro) in [
        (40u32, "4x4"),
        (72, "6x6"),
        (128, "8x8 (paper)"),
        (200, "10x10"),
        (255, "12x12"),
    ] {
        let o = occupancy(
            &dev,
            &KernelResources {
                threads_per_block: 256,
                regs_per_thread: regs,
                smem_bytes_per_block: 16384,
            },
        );
        t.row(vec![
            regs.to_string(),
            micro.to_string(),
            o.blocks_per_sm.to_string(),
            o.warps_per_sm.to_string(),
            format!("{:.0}%", o.fraction * 100.0),
        ]);
    }
    tables.add(
        "Ablation 7: registers per thread vs occupancy (256-thread blocks, 16KB SMEM)",
        t,
    );

    tables.export_from_args(&args);
}
