//! Multi-device pool serving benchmark (`BENCH_pool.json`).
//!
//! Serves one deterministic query stream four ways:
//!
//! 1. **unpooled** single-device serving — the bit-exactness golden;
//! 2. a **1-device pool** — the simulated-time baseline (same shard
//!    machinery, no parallelism);
//! 3. an **N-device pool** (default 4) — must be bit-identical to the
//!    golden and at least 2× faster in simulated time;
//! 4. the N-device pool with one device **permanently faulted** — the
//!    pool must degrade shard-locally (only the sick device's breaker
//!    trips, its shards recover on the CPU) and still complete every
//!    query correctly.
//!
//! Any bit drift, counter drift between the passes, a speedup below
//! the floor, or pool-wide degradation fails the run.
//!
//! ```text
//! pool_bench [--smoke] [--devices N] [--queries N] [--seed S] [--json PATH]
//! ```
//!
//! * default stream: 24 queries over `M = 32768` corpora; `--smoke`
//!   halves the stream (CI-sized) at the same corpus shape, so the
//!   speedup gate still means something;
//! * `--devices N`: pooled device count (default 4, minimum 2);
//! * `--seed S`: master workload seed (default 42);
//! * `--json PATH`: write the [`PoolMetrics`] document.

use std::time::Instant;

use ks_bench::metrics::{path_arg, PoolMetrics, PoolRunMetrics, SCHEMA_VERSION};
use ks_gpu_sim::{FaultSpec, Interconnect};
use ks_serve::{
    generate_queries, PoolConfig, Query, ServeConfig, ServeReport, Server, Submit, Ticket,
    WorkloadConfig,
};

/// Simulated-time speedup floor for the N-device pool over the
/// 1-device baseline.
const SPEEDUP_FLOOR: f64 = 2.0;

/// Relative tolerance for the degraded pass, whose sick-device shards
/// recover on the (bit-exact but differently-ordered) CPU path.
const TOL: f32 = 5e-3;

/// Index of the device given a permanent launch fault in the degraded
/// pass.
const SICK: usize = 2;

fn usize_arg(args: &[String], flag: &str, default: usize) -> usize {
    path_arg(args, flag).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid {flag} value {v}");
            std::process::exit(2);
        })
    })
}

/// Serves the whole stream through one paused server and returns every
/// per-query outcome plus the shutdown report and host wall time.
fn serve(cfg: ServeConfig, stream: &[Query]) -> (Vec<Option<Vec<f32>>>, ServeReport, f64) {
    let t0 = Instant::now();
    let mut srv = Server::start(cfg);
    let tickets: Vec<Ticket> = stream
        .iter()
        .map(|q| match srv.submit(q.clone()) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => {
                eprintln!("error: queue sized for the stream rejected a query");
                std::process::exit(1);
            }
        })
        .collect();
    srv.resume();
    let results: Vec<Option<Vec<f32>>> = tickets.iter().map(|t| t.wait().ok()).collect();
    let report = srv.shutdown();
    (results, report, t0.elapsed().as_secs_f64() * 1e3)
}

/// Flattens one pooled pass into the export row. Panics if the pass
/// was not actually pooled.
fn run_metrics(report: &ServeReport, wall_time_ms: f64) -> PoolRunMetrics {
    let pool = report.pool.as_ref().expect("pooled pass carries a report");
    PoolRunMetrics {
        devices: pool.devices.len() as u64,
        completed: report.completed,
        failed: report.failed,
        batches: report.batches,
        batched_queries: report.batched_queries,
        fallbacks: report.fallbacks,
        shard_tasks: pool.shard_tasks,
        stolen_tasks: pool.stolen_tasks,
        breaker_trips: pool.total_trips(),
        transfer_bytes: pool.devices.iter().map(|d| d.transfer_bytes).sum(),
        sim_time_s: pool.sim_time_s,
        wall_time_ms,
    }
}

fn bits_eq(a: &[Option<Vec<f32>>], b: &[Option<Vec<f32>>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Some(x), Some(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
            }
            (None, None) => true,
            _ => false,
        })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = usize_arg(&args, "--seed", 42) as u64;
    let devices = usize_arg(&args, "--devices", 4);
    if devices < 2 {
        eprintln!("error: --devices must be at least 2 (got {devices})");
        std::process::exit(2);
    }
    let queries = usize_arg(&args, "--queries", if smoke { 12 } else { 24 });

    // Corpora are sized so per-shard kernel time dominates the
    // modelled PCIe cost at 4 shards: M = 32768 keeps each 8192-row
    // shard well past the alignment floor, and the smoke profile
    // shortens the *stream*, not the corpus, so the speedup gate
    // measures the same shard economics CI-sized.
    let wl = WorkloadConfig {
        clients: 1,
        queries_per_client: queries,
        corpora: 2,
        shared_ratio: 0.8,
        large_ratio: 0.0,
        m: 32_768,
        n: 128,
        k: 16,
        h: 1.0,
        deadline: None,
        seed,
    };
    let stream = generate_queries(&wl);
    let base = ServeConfig {
        queue_capacity: stream.len(),
        start_paused: true,
        ..ServeConfig::default()
    };
    let pooled_cfg = |n: usize| {
        let mut cfg = base.clone();
        cfg.pool = Some(PoolConfig::homogeneous(
            n,
            cfg.device.clone(),
            Interconnect::pcie3_x16(),
        ));
        cfg
    };

    eprintln!("serving {} queries unpooled (golden)...", stream.len());
    let (golden, golden_report, golden_wall) = serve(base.clone(), &stream);
    eprintln!("serving through a 1-device pool...");
    let (single_res, single_report, single_wall) = serve(pooled_cfg(1), &stream);
    eprintln!("serving through a {devices}-device pool...");
    let (pooled_res, pooled_report, pooled_wall) = serve(pooled_cfg(devices), &stream);

    eprintln!("serving with device {SICK} permanently faulted...");
    let mut sick_cfg = pooled_cfg(devices);
    if let Some(pool) = sick_cfg.pool.as_mut() {
        pool.devices[SICK].device.fault = Some(FaultSpec {
            seed: seed ^ 0xDEAD_DE5B,
            smem_rate: 0.0,
            reg_rate: 0.0,
            dram_rate: 0.0,
            sm_loss_rate: 1.0,
            watchdog_rate: 0.0,
        });
    }
    let (faulted_res, faulted_report, faulted_wall) = serve(sick_cfg, &stream);

    let single = run_metrics(&single_report, single_wall);
    let pooled = run_metrics(&pooled_report, pooled_wall);
    let faulted = run_metrics(&faulted_report, faulted_wall);
    let speedup = single.sim_time_s / pooled.sim_time_s;

    let bit_identical = bits_eq(&golden, &single_res) && bits_eq(&golden, &pooled_res);
    let counters_match = [&single_report, &pooled_report, &faulted_report]
        .iter()
        .all(|r| {
            r.completed == golden_report.completed
                && r.batches == golden_report.batches
                && r.batched_queries == golden_report.batched_queries
                && r.failed == 0
                && r.rejected == 0
                && r.internal_errors == 0
        })
        && golden_report.failed == 0;

    // The degraded pass: every query still completes, within tolerance
    // of the golden (sick shards recover on the CPU, which is bit-exact
    // to the reference but not to the healthy GPU shards it replaces).
    let mut faulted_correct = true;
    for (qi, (got, want)) in faulted_res.iter().zip(&golden).enumerate() {
        match (got, want) {
            (Some(got), Some(want)) => {
                let close = got.len() == want.len()
                    && got
                        .iter()
                        .zip(want)
                        .all(|(g, w)| (g - w).abs() <= TOL * w.abs().max(1.0));
                if !close {
                    eprintln!("degraded pass: query {qi} outside tolerance");
                    faulted_correct = false;
                }
            }
            _ => {
                eprintln!("degraded pass: query {qi} did not complete");
                faulted_correct = false;
            }
        }
    }
    let sick_report = &faulted_report.pool.as_ref().expect("pooled").devices[SICK];
    let faulted_sick_trips = sick_report.breaker_trips;
    let faulted_sick_fallbacks = sick_report.cpu_fallbacks;
    let faulted_healthy_fallbacks = faulted_report
        .pool
        .as_ref()
        .expect("pooled")
        .devices
        .iter()
        .enumerate()
        .filter(|(d, _)| *d != SICK)
        .map(|(_, r)| r.cpu_fallbacks)
        .sum::<u64>();
    let degradation_local = faulted_correct
        && faulted_sick_trips > 0
        && faulted_sick_fallbacks > 0
        && faulted_healthy_fallbacks == 0;

    let gates_passed =
        bit_identical && counters_match && speedup >= SPEEDUP_FLOOR && degradation_local;

    let metrics = PoolMetrics {
        schema_version: SCHEMA_VERSION,
        seed,
        m: wl.m as u64,
        n: wl.n as u64,
        k: wl.k as u64,
        queries: stream.len() as u64,
        shared_ratio: wl.shared_ratio,
        single,
        pooled,
        speedup,
        bit_identical,
        counters_match,
        faulted,
        faulted_sick_trips,
        faulted_sick_fallbacks,
        faulted_healthy_fallbacks,
        gates_passed,
    };

    eprintln!(
        "sim time: {:.6} s at 1 device, {:.6} s at {devices} ({speedup:.2}x, floor {SPEEDUP_FLOOR}x)",
        metrics.single.sim_time_s, metrics.pooled.sim_time_s
    );
    eprintln!(
        "pool: {} shard tasks ({} stolen), {} bytes over PCIe; degraded pass: \
         {faulted_sick_trips} sick trips, {faulted_sick_fallbacks} sick / \
         {faulted_healthy_fallbacks} healthy CPU shard recoveries",
        metrics.pooled.shard_tasks, metrics.pooled.stolen_tasks, metrics.pooled.transfer_bytes
    );
    eprintln!(
        "wall: golden {golden_wall:.0} ms, pool1 {:.0} ms, pool{devices} {:.0} ms, \
         degraded {:.0} ms",
        metrics.single.wall_time_ms, metrics.pooled.wall_time_ms, metrics.faulted.wall_time_ms
    );

    if let Some(path) = path_arg(&args, "--json") {
        metrics.write_json(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    if !bit_identical {
        eprintln!("FAIL: pooled results drifted from unpooled single-device serving");
    }
    if !counters_match {
        eprintln!("FAIL: serve counters drifted between passes");
    }
    if speedup < SPEEDUP_FLOOR {
        eprintln!("FAIL: simulated speedup {speedup:.2}x below the {SPEEDUP_FLOOR}x floor");
    }
    if !degradation_local {
        eprintln!("FAIL: faulted device did not degrade shard-locally");
    }
    if !gates_passed {
        std::process::exit(1);
    }
    eprintln!(
        "pool bench passed: bit-identical, counters stable, {speedup:.2}x at {devices} devices"
    );
}
