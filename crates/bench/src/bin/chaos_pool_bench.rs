//! Seeded lifecycle + link-fault soak of the self-healing device pool
//! (`BENCH_chaos_pool.json`).
//!
//! Three passes over one deterministic query stream:
//!
//! 1. **Chaos** — a 4-device pool with a flapping member (certain
//!    hang, certain recovery: it alternates sick/healthy every epoch)
//!    and a second member behind a lossy link (corruption + timeouts).
//!    Every completion is checked against the CPU fused reference;
//!    anything outside tolerance without a surfaced error is
//!    **silently wrong** and fails the soak. The health loop must
//!    actually cycle (evictions > 0 *and* readmissions > 0), no shard
//!    may be dropped across drain/evict/readmit (`executed` summed
//!    over devices equals the coordinator's dispatch count), and the
//!    brownout accounting identity must hold.
//! 2. **Degraded throughput** — the same pool with one member
//!    permanently lost at epoch one. After eviction the survivors
//!    carry the stream; simulated serving time is gated at ≥ 2× the
//!    single-device baseline.
//! 3. **Quiet** — lifecycle and link specs present but all-zero must
//!    serve bit-identically to spec-free serving, with every
//!    fault counter untouched.
//!
//! ```text
//! chaos_pool_bench [--smoke] [--queries N] [--seed S] [--json PATH]
//! ```
//!
//! * default stream: 240 queries; `--smoke`: 96 (CI-sized);
//! * `--seed S`: master seed of the workload and both fault schedules
//!   (default 42);
//! * `--json PATH`: write the [`ChaosPoolMetrics`] document.

use std::time::Instant;

use ks_bench::metrics::{path_arg, ChaosPoolMetrics, SCHEMA_VERSION};
use ks_blas::{Layout, Matrix};
use ks_core::problem::KernelSumProblem;
use ks_core::{solve_multi_fused, FusedCpuConfig, GaussianKernel};
use ks_gpu_sim::config::{DeviceConfig, Interconnect};
use ks_gpu_sim::{LifecycleSpec, LinkFaultSpec};
use ks_serve::{
    generate_queries, HealthConfig, PoolConfig, PoolDevice, PoolReport, Query, ServeBackend,
    ServeConfig, ServeReport, Server, Submit, Ticket, WorkloadConfig,
};

const DEVICES: usize = 4;
/// Index of the flapping member (chaos pass) / lost member
/// (throughput pass).
const SICK: usize = 1;
/// Index of the member behind the lossy link (chaos pass).
const LOSSY: usize = 2;

/// The single-shot CPU fused answer for one query — the same solver
/// configuration the pool's shard recovery runs.
fn reference(q: &Query) -> Vec<f32> {
    let p = KernelSumProblem::builder()
        .sources(q.sources.points().clone())
        .targets((*q.targets).clone())
        .unit_weights()
        .kernel(GaussianKernel { h: q.h })
        .build();
    let w = Matrix::from_fn(q.weights.len(), 1, Layout::RowMajor, |j, _| q.weights[j]);
    let v = solve_multi_fused(&p, &w, &FusedCpuConfig::default());
    (0..v.rows()).map(|i| v.get(i, 0)).collect()
}

fn quiet_devices(n: usize) -> Vec<PoolDevice> {
    (0..n)
        .map(|_| PoolDevice {
            device: DeviceConfig::gtx970(),
            interconnect: Interconnect::pcie3_x16(),
            lifecycle: None,
        })
        .collect()
}

/// Throughput-pass devices sit on the fast fabric: at `r = 1` per
/// batch the PCIe setup latency is a fixed per-shard charge that
/// pool size cannot amortize, and the gate would measure the link,
/// not the pool.
fn fabric_devices(n: usize) -> Vec<PoolDevice> {
    (0..n)
        .map(|_| PoolDevice {
            device: DeviceConfig::gtx970(),
            interconnect: Interconnect::nvlink(),
            lifecycle: None,
        })
        .collect()
}

fn pool_config(devices: Vec<PoolDevice>, health: HealthConfig, capacity: usize) -> PoolConfig {
    PoolConfig {
        devices,
        queue_capacity: capacity,
        plan_cache_capacity: 8,
        shard_align: 128,
        health,
    }
}

/// Serves the stream through one pooled server (paused submission so
/// batch composition is deterministic) and returns per-query outcomes
/// plus the report.
fn serve(
    pool: PoolConfig,
    backend: ServeBackend,
    stream: &[Query],
) -> (Vec<Result<Vec<f32>, String>>, ServeReport) {
    let cfg = ServeConfig {
        backend,
        wave: 1, // one batch per query: every batch advances an epoch
        queue_capacity: stream.len(),
        start_paused: true,
        pool: Some(pool),
        ..ServeConfig::default()
    };
    let mut srv = Server::start(cfg);
    let tickets: Vec<Ticket> = stream
        .iter()
        .map(|q| match srv.submit(q.clone()) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => {
                eprintln!("error: queue sized for the stream rejected a query");
                std::process::exit(1);
            }
        })
        .collect();
    srv.resume();
    let outcomes = tickets
        .iter()
        .map(|t| t.wait().map_err(|e| e.to_string()))
        .collect();
    (outcomes, srv.shutdown())
}

fn pool_report(report: &ServeReport) -> &PoolReport {
    report.pool.as_ref().unwrap_or_else(|| {
        eprintln!("error: pooled serving produced no pool report");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = path_arg(&args, "--seed").map_or(42, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid --seed value {v}");
            std::process::exit(2);
        })
    });
    let queries: usize = path_arg(&args, "--queries").map_or(if smoke { 96 } else { 240 }, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid --queries value {v}");
            std::process::exit(2);
        })
    });

    // Corpora sized so a 4-device pool shards every batch across all
    // members (640 rows = five 128-row tiles).
    let wl = WorkloadConfig {
        clients: 1,
        queries_per_client: queries,
        corpora: 2,
        shared_ratio: 0.9,
        large_ratio: 0.0,
        m: 640,
        n: 96,
        k: 8,
        h: 1.0,
        deadline: None,
        seed,
    };
    let stream = generate_queries(&wl);
    let t0 = Instant::now();

    // ---- Pass 1: chaos ------------------------------------------------
    let mut devices = quiet_devices(DEVICES);
    devices[SICK].lifecycle = Some(LifecycleSpec {
        seed: seed ^ 0xF1A9,
        hang_rate: 1.0,
        recover_rate: 1.0,
        ..LifecycleSpec::default()
    });
    devices[LOSSY].interconnect.fault = Some(LinkFaultSpec {
        seed: seed ^ 0x11F7,
        corrupt_rate: 0.3,
        timeout_rate: 0.1,
    });
    let health = HealthConfig {
        evict_threshold: 1,
        // Odd cooldown: probes land on the flapper's healthy parity.
        probe_cooldown: 3,
    };
    let (outcomes, report) = serve(
        pool_config(devices, health, stream.len()),
        ServeBackend::GpuFused { cpu_fallback: true },
        &stream,
    );
    let mut silent_wrong = 0u64;
    for (qi, (q, outcome)) in stream.iter().zip(&outcomes).enumerate() {
        let Ok(got) = outcome else { continue };
        let want = reference(q);
        assert_eq!(got.len(), want.len(), "query {qi}: result length");
        let close = got
            .iter()
            .zip(want.iter())
            .all(|(g, w)| (g - w).abs() <= 5e-3 * w.abs().max(1.0));
        if !close {
            silent_wrong += 1;
            eprintln!("SILENT WRONG: query {qi} completed outside tolerance");
        }
        if (qi + 1) % 50 == 0 {
            eprintln!("checked {}/{} queries", qi + 1, stream.len());
        }
    }
    let pool = pool_report(&report).clone();
    let shards_executed: u64 = pool.devices.iter().map(|d| d.executed).sum();
    let evictions = pool.total_evictions();
    let readmissions = pool.total_readmissions();
    let lifecycle_hangs: u64 = pool.devices.iter().map(|d| d.lifecycle_hangs).sum();
    let lifecycle_losses: u64 = pool.devices.iter().map(|d| d.lifecycle_losses).sum();
    let link_crc_detected: u64 = pool.devices.iter().map(|d| d.link_crc_detected).sum();
    let link_retransmits: u64 = pool.devices.iter().map(|d| d.link_retransmits).sum();
    let link_timeouts = pool.total_link_timeouts();
    let cpu_fallbacks = pool.total_fallbacks();
    let accounting_consistent = report.submitted == report.accepted + report.rejected
        && report.accepted == report.completed + report.expired + report.shed + report.failed
        && report.internal_errors == 0;

    // ---- Pass 2: degraded throughput ----------------------------------
    // A compute-dominated stream (big corpus, few queries): at small
    // `M` the per-transfer link latency sets the pace and pool size
    // barely moves simulated time, which would make the gate
    // meaningless.
    let throughput_wl = WorkloadConfig {
        clients: 1,
        queries_per_client: if smoke { 12 } else { 20 },
        corpora: 1,
        shared_ratio: 1.0,
        large_ratio: 0.0,
        m: 32_768,
        n: 128,
        k: 16,
        h: 1.0,
        deadline: None,
        seed: seed ^ 0x7492,
    };
    let throughput_stream = generate_queries(&throughput_wl);
    let mut degraded = fabric_devices(DEVICES);
    degraded[SICK].lifecycle = Some(LifecycleSpec {
        seed: seed ^ 0xDEAD,
        loss_rate: 1.0, // lost at the first epoch, absorbing
        ..LifecycleSpec::default()
    });
    let never_probe = HealthConfig {
        evict_threshold: 1,
        probe_cooldown: u64::MAX / 2,
    };
    let (_, degraded_report) = serve(
        pool_config(degraded, never_probe, throughput_stream.len()),
        ServeBackend::GpuFused { cpu_fallback: true },
        &throughput_stream,
    );
    let (_, single_report) = serve(
        pool_config(
            fabric_devices(1),
            HealthConfig::default(),
            throughput_stream.len(),
        ),
        ServeBackend::GpuFused { cpu_fallback: true },
        &throughput_stream,
    );
    let degraded_sim_time_s = pool_report(&degraded_report).sim_time_s;
    let single_sim_time_s = pool_report(&single_report).sim_time_s;
    let degraded_speedup = single_sim_time_s / degraded_sim_time_s;

    // ---- Pass 3: quiet specs are exactly inert ------------------------
    let mut quiet_specced = quiet_devices(DEVICES);
    for d in &mut quiet_specced {
        d.lifecycle = Some(LifecycleSpec {
            seed,
            ..LifecycleSpec::default() // all-zero rates
        });
        d.interconnect.fault = Some(LinkFaultSpec {
            seed: seed ^ 0x1,
            corrupt_rate: 0.0,
            timeout_rate: 0.0,
        });
    }
    let (specced_out, specced_report) = serve(
        pool_config(quiet_specced, HealthConfig::default(), stream.len()),
        ServeBackend::GpuFused { cpu_fallback: true },
        &stream,
    );
    let (bare_out, _) = serve(
        pool_config(
            quiet_devices(DEVICES),
            HealthConfig::default(),
            stream.len(),
        ),
        ServeBackend::GpuFused { cpu_fallback: true },
        &stream,
    );
    let specced_pool = pool_report(&specced_report);
    let quiet_counters_untouched = specced_pool.total_evictions() == 0
        && specced_pool.total_link_timeouts() == 0
        && specced_pool.devices.iter().all(|d| {
            d.lifecycle_hangs == 0
                && d.lifecycle_losses == 0
                && d.link_crc_detected == 0
                && d.link_retransmits == 0
        });
    let quiet_bit_identical = quiet_counters_untouched
        && specced_out.len() == bare_out.len()
        && specced_out
            .iter()
            .zip(&bare_out)
            .all(|(a, b)| match (a, b) {
                (Ok(x), Ok(y)) => {
                    x.len() == y.len()
                        && x.iter()
                            .zip(y.iter())
                            .all(|(g, w)| g.to_bits() == w.to_bits())
                }
                _ => false,
            });

    let wall_time_ms = t0.elapsed().as_secs_f64() * 1e3;
    let metrics = ChaosPoolMetrics {
        schema_version: SCHEMA_VERSION,
        seed,
        devices: DEVICES as u64,
        queries: stream.len() as u64,
        completed: report.completed,
        shed: report.shed,
        expired: report.expired,
        failed: report.failed,
        silent_wrong,
        evictions,
        readmissions,
        lifecycle_hangs,
        lifecycle_losses,
        link_crc_detected,
        link_retransmits,
        link_timeouts,
        shards_dispatched: pool.shard_tasks,
        shards_executed,
        cpu_fallbacks,
        accounting_consistent,
        single_sim_time_s,
        degraded_sim_time_s,
        degraded_speedup,
        quiet_bit_identical,
        gates_passed: false, // set below
        wall_time_ms,
    };
    let gates = [
        (silent_wrong == 0, "zero silently-wrong results"),
        (report.failed == 0, "the pool never fails a batch"),
        (
            shards_executed == pool.shard_tasks,
            "no shard dropped across drain/evict/readmit",
        ),
        (evictions >= 1, "the flapping device is evicted"),
        (readmissions >= 1, "the flapping device is readmitted"),
        (
            link_crc_detected >= 1 && link_retransmits >= 1,
            "the lossy link trips the CRC ledger",
        ),
        (accounting_consistent, "brownout accounting identity"),
        (
            degraded_speedup >= 2.0,
            "degraded pool sustains 2x single-device throughput",
        ),
        (quiet_bit_identical, "quiet specs are exactly inert"),
    ];
    let gates_passed = gates.iter().all(|(ok, _)| *ok);
    let metrics = ChaosPoolMetrics {
        gates_passed,
        ..metrics
    };

    eprintln!(
        "chaos: {} completed / {} shed / {} expired / {} failed; \
         {} evictions, {} readmissions, {} hang epochs; \
         link: {} crc / {} retransmits / {} timeouts; {} CPU-recovered shards",
        report.completed,
        report.shed,
        report.expired,
        report.failed,
        evictions,
        readmissions,
        lifecycle_hangs,
        link_crc_detected,
        link_retransmits,
        link_timeouts,
        cpu_fallbacks,
    );
    eprintln!(
        "throughput: single {single_sim_time_s:.4}s sim vs degraded {degraded_sim_time_s:.4}s \
         sim = {degraded_speedup:.2}x"
    );

    if let Some(path) = path_arg(&args, "--json") {
        metrics.write_json(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    let mut failed_gate = false;
    for (ok, label) in gates {
        if !ok {
            eprintln!("FAIL: {label}");
            failed_gate = true;
        }
    }
    if failed_gate {
        std::process::exit(1);
    }
    eprintln!(
        "chaos pool soak passed in {wall_time_ms:.0} ms: zero silently-wrong results, \
         no dropped shards, evict/readmit cycled, {degraded_speedup:.2}x degraded throughput"
    );
}
