//! Fig 2: L2 misses per kilo-instruction of the cuBLAS-based kernel
//! summation (N = 1024 in all cases).

use ks_bench::{exhibits, profile_or_exit, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d = profile_or_exit(Sweep::from_args(&args));
    exhibits::fig2_l2_mpki(&d).print(
        "Fig 2: L2 MPKI of cuBLAS-Unfused kernel summation (N=1024)",
        args.iter().any(|a| a == "--csv"),
    );
}
