//! Sensitivity of the reproduction's conclusions to the timing-model
//! calibration constants.
//!
//! The timing model (DESIGN.md §4) has five tunable constants; this
//! binary perturbs each across a generous range and reports the three
//! qualitative conclusions of the paper at every setting:
//!
//! 1. Fused beats cuBLAS-Unfused at K = 32 (Fig 6);
//! 2. Fused loses to cuBLAS-Unfused at K = 256 (the crossover);
//! 3. the CUDA-C GEMM is slower than the vendor GEMM (Fig 7).
//!
//! If the claims flip anywhere in the sweep, the reproduction would be
//! an artifact of the calibration — they should not.

use ks_bench::table::{f3, TableSet, TextTable};
use ks_gpu_kernels::{GpuKernelSummation, GpuVariant};
use ks_gpu_sim::timing::TimingParams;
use ks_gpu_sim::GpuDevice;

struct Outcome {
    speedup_k32: f64,
    speedup_k256: f64,
    gemm_ratio: f64,
}

fn evaluate(params: TimingParams) -> Outcome {
    let run = |k: usize, variant: GpuVariant| {
        let ks = GpuKernelSummation::new(8192, 1024, k, 1.0);
        let mut dev = GpuDevice::gtx970();
        dev.set_timing_params(params);
        ks.profile(&mut dev, variant).expect("valid launch")
    };
    let f32_ = run(32, GpuVariant::Fused).total_time_s();
    let c32 = run(32, GpuVariant::CublasUnfused);
    let f256 = run(256, GpuVariant::Fused).total_time_s();
    let c256 = run(256, GpuVariant::CublasUnfused);
    let cu256 = run(256, GpuVariant::CudaUnfused);
    Outcome {
        speedup_k32: c32.total_time_s() / f32_,
        speedup_k256: c256.total_time_s() / f256,
        gemm_ratio: cu256.kernels[2].timing.time_s / c256.kernels[2].timing.time_s,
    }
}

fn main() {
    let base = TimingParams::default();
    let mut t = TextTable::new(vec![
        "parameter",
        "value",
        "speedup@K=32",
        "speedup@K=256",
        "gemm ratio",
        "claims hold",
    ]);

    let mut all_hold = true;
    let mut eval_row = |label: String, value: f64, p: TimingParams| {
        let o = evaluate(p);
        let holds = o.speedup_k32 > 1.0 && o.speedup_k256 < 1.05 && o.gemm_ratio > 1.0;
        all_hold &= holds;
        t.row(vec![
            label,
            f3(value),
            f3(o.speedup_k32),
            f3(o.speedup_k256),
            f3(o.gemm_ratio),
            if holds {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    };

    eval_row("baseline".into(), 0.0, base);
    for scale in [0.8f64, 0.9, 1.1, 1.2] {
        let v = 1.0 + (base.cudac_ffma_replay - 1.0) * scale;
        eval_row(
            "cudac_ffma_replay".into(),
            v,
            TimingParams {
                cudac_ffma_replay: v,
                ..base
            },
        );
    }
    for v in [0.55f64, 0.65, 0.75, 0.85] {
        eval_row(
            "cudac_issue_efficiency".into(),
            v,
            TimingParams {
                cudac_issue_efficiency: v,
                ..base
            },
        );
    }
    for v in [1.2f64, 1.35, 1.65, 1.8] {
        eval_row(
            "vendor_dual_issue".into(),
            v,
            TimingParams {
                vendor_dual_issue: v,
                ..base
            },
        );
    }
    for v in [0.25f64, 0.4, 0.6, 0.75] {
        eval_row(
            "vendor_lsu_overlap".into(),
            v,
            TimingParams {
                vendor_lsu_overlap: v,
                ..base
            },
        );
    }
    for v in [20.0f64, 30.0, 60.0, 80.0] {
        eval_row(
            "syncthreads_cycles".into(),
            v,
            TimingParams {
                syncthreads_cycles: v,
                ..base
            },
        );
    }

    let args: Vec<String> = std::env::args().collect();
    let mut tables = TableSet::new(false);
    tables.add(
        "Sensitivity of the paper's qualitative claims to timing calibration (M=8192, N=1024)",
        t,
    );
    tables.export_from_args(&args);
    if all_hold {
        println!("All qualitative claims hold across the calibration sweep ✓");
    } else {
        println!("WARNING: some claims flipped — see rows marked NO");
        std::process::exit(1);
    }
}
