//! Table II: FLOP efficiency (achieved / peak single-precision
//! throughput) of cuBLAS-Unfused and Fused kernel summation.

use ks_bench::{exhibits, Sweep, SweepData};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d = SweepData::compute(Sweep::from_args(&args));
    exhibits::table2_flop_efficiency(&d).print(
        "Table II: FLOP Efficiency",
        args.iter().any(|a| a == "--csv"),
    );
}
