//! Table II: FLOP efficiency (achieved / peak single-precision
//! throughput) of cuBLAS-Unfused and Fused kernel summation.

use ks_bench::{exhibits, profile_or_exit, Sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d = profile_or_exit(Sweep::from_args(&args));
    exhibits::table2_flop_efficiency(&d).print(
        "Table II: FLOP Efficiency",
        args.iter().any(|a| a == "--csv"),
    );
}
