//! Serial-vs-parallel replay benchmark over the fused pipeline
//! (`BENCH_replay.json`).
//!
//! For each sweep point the fused pipeline is profiled twice on fresh
//! devices — once with [`ReplayStrategy::Serial`], once with the
//! default memoized parallel strategy — and the wall-clock of each
//! replay, their ratio, and whether the two profiles agree on every
//! counter are recorded.
//!
//! ```text
//! replay_bench [--smoke] [--gate MIN_SPEEDUP] [--threads N] [--json PATH]
//! ```
//!
//! * default grid: `M ∈ {8192, 65536, 524288}`, `K = 32`, `N = 1024`;
//! * `--smoke`: `M ∈ {8192, 65536}` only (CI-sized);
//! * `--gate X`: exit 1 unless the **largest** point's speedup ≥ X
//!   (and always exit 1 on a counter mismatch);
//! * `--threads N`: worker count for the parallel runs (default: the
//!   machine's cores);
//! * `--json PATH`: write the [`ReplayMetrics`] document.

use std::time::Instant;

use ks_bench::metrics::{path_arg, ReplayMetrics, ReplayPoint, SCHEMA_VERSION};
use ks_gpu_kernels::{GpuKernelSummation, GpuVariant};
use ks_gpu_sim::{GpuDevice, ReplayStrategy};

const K: usize = 32;
const N: usize = 1024;

fn profile_ms(m: usize, strategy: ReplayStrategy) -> (f64, ks_gpu_sim::PipelineProfile, u64) {
    let pipeline = GpuKernelSummation::new(m, N, K, 1.0);
    let mut dev = GpuDevice::gtx970();
    dev.set_replay_strategy(strategy);
    let t = Instant::now();
    let prof = pipeline
        .profile(&mut dev, GpuVariant::Fused)
        .unwrap_or_else(|e| {
            eprintln!("error: cannot profile M={m}: {e}");
            std::process::exit(1);
        });
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let blocks = prof
        .kernels
        .iter()
        .map(|k| k.launch.total_blocks())
        .max()
        .unwrap_or(0);
    (ms, prof, blocks)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate: Option<f64> = path_arg(&args, "--gate").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid --gate value {v}");
            std::process::exit(2);
        })
    });
    let threads: Option<usize> = path_arg(&args, "--threads").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid --threads value {v}");
            std::process::exit(2);
        })
    });
    let m_values: &[usize] = if smoke {
        &[8192, 65_536]
    } else {
        &[8192, 65_536, 524_288]
    };

    let mut points = Vec::new();
    for &m in m_values {
        let (serial_ms, serial_prof, blocks) = profile_ms(m, ReplayStrategy::Serial);
        let (parallel_ms, parallel_prof, _) = profile_ms(
            m,
            ReplayStrategy::Parallel {
                memoize: true,
                threads,
            },
        );
        let counters_match = serial_prof == parallel_prof;
        let speedup = serial_ms / parallel_ms;
        eprintln!(
            "M={m:>7} blocks={blocks:>6}: serial {serial_ms:>9.1} ms, parallel {parallel_ms:>9.1} ms, speedup {speedup:.2}x, counters {}",
            if counters_match { "match" } else { "MISMATCH" }
        );
        points.push(ReplayPoint {
            m: m as u64,
            k: K as u64,
            n: N as u64,
            blocks,
            serial_ms,
            parallel_ms,
            speedup,
            threads: threads.unwrap_or(0) as u64,
            counters_match,
        });
    }

    let metrics = ReplayMetrics {
        schema_version: SCHEMA_VERSION,
        kernel: "Fused".into(),
        points,
    };
    if let Some(path) = path_arg(&args, "--json") {
        metrics.write_json(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    if metrics.points.iter().any(|p| !p.counters_match) {
        eprintln!("FAIL: parallel replay drifted from serial counters");
        std::process::exit(1);
    }
    if let Some(min) = gate {
        let last = metrics.points.last().expect("at least one point");
        if last.speedup < min {
            eprintln!(
                "FAIL: speedup {:.2}x at M={} below gate {min:.2}x",
                last.speedup, last.m
            );
            std::process::exit(1);
        }
        eprintln!(
            "gate passed: {:.2}x >= {min:.2}x at M={}",
            last.speedup, last.m
        );
    }
}
