//! Profiles the sweep once and prints every exhibit from the shared
//! data (the efficient path used to populate EXPERIMENTS.md).
//! `--json PATH` additionally dumps every kernel profile for external
//! plotting.

use ks_bench::{exhibits, Sweep, SweepData};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let sweep = Sweep::from_args(&args);
    eprintln!("profiling {} (K, M) points ...", sweep.len());
    let d = SweepData::compute(sweep);
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let path = args.get(pos + 1).expect("--json needs a path");
        let dump: Vec<serde_json::Value> = d
            .points
            .iter()
            .map(|p| {
                serde_json::json!({
                    "k": p.k,
                    "m": p.m,
                    "n": p.n,
                    "fused": p.fused,
                    "cuda_unfused": p.cuda_unfused,
                    "cublas_unfused": p.cublas_unfused,
                    "fused_energy": p.fused_energy,
                    "cuda_energy": p.cuda_energy,
                    "cublas_energy": p.cublas_energy,
                })
            })
            .collect();
        std::fs::write(
            path,
            serde_json::to_string_pretty(&dump).expect("serialise"),
        )
        .expect("write json");
        eprintln!("wrote {path}");
    }
    exhibits::table1_config(&d.device).print("Table I: Configuration (simulated GTX970)", csv);
    exhibits::fig1_energy_breakdown(&d).print(
        "Fig 1: Energy breakdown of cuBLAS-Unfused kernel summation (N=1024)",
        csv,
    );
    exhibits::fig2_l2_mpki(&d).print(
        "Fig 2: L2 MPKI of cuBLAS-Unfused kernel summation (N=1024)",
        csv,
    );
    exhibits::fig6_speedup(&d).print(
        "Fig 6: Execution time and speedup of fused kernel summation",
        csv,
    );
    exhibits::fig7_gemm_compare(&d).print("Fig 7: CUDA-C GEMM vs vendor GEMM execution time", csv);
    exhibits::fig8a_l2_transactions(&d)
        .print("Fig 8a: L2 transactions normalised to cuBLAS-Unfused", csv);
    exhibits::fig8b_dram_transactions(&d).print(
        "Fig 8b: DRAM transactions normalised to cuBLAS-Unfused",
        csv,
    );
    exhibits::fig9_energy_compare(&d)
        .print("Fig 9: Energy breakdown (Compute / SMEM / L2 / DRAM)", csv);
    exhibits::dram_energy_savings(&d).print(
        "§V-C detail: DRAM energy savings of Fused vs cuBLAS-Unfused",
        csv,
    );
    exhibits::table2_flop_efficiency(&d).print("Table II: FLOP Efficiency", csv);
    exhibits::table3_energy_savings(&d).print(
        "Table III: Energy Savings of Fused compared to cuBLAS-Unfused",
        csv,
    );
}
