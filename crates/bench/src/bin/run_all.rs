//! Profiles the sweep once and prints every exhibit from the shared
//! data (the efficient path used to populate EXPERIMENTS.md).
//!
//! Metric export (see `metrics` module docs for the schema):
//!
//! * `--json PATH` — canonical `BENCH_sweep.json`: per point, per
//!   pipeline, every counter, L2/DRAM transactions, simulated time,
//!   speedups and energy (the document the perf-regression harness
//!   diffs against its golden);
//! * `--csv PATH` — nvprof-style CSV, one row per kernel launch;
//! * bare `--csv` (no path) — print the exhibit tables themselves as
//!   CSV to stdout instead of aligned text.

use ks_bench::{exhibits, metrics, profile_or_exit, Sweep, SweepMetrics};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv_tables =
        args.iter().any(|a| a == "--csv") && metrics::path_arg(&args, "--csv").is_none();
    let sweep = Sweep::from_args(&args);
    eprintln!("profiling {} (K, M) points ...", sweep.len());
    let d = profile_or_exit(sweep);
    metrics::export_from_args(&args, &SweepMetrics::collect(&d));
    let csv = csv_tables;
    exhibits::table1_config(&d.device).print("Table I: Configuration (simulated GTX970)", csv);
    exhibits::fig1_energy_breakdown(&d).print(
        "Fig 1: Energy breakdown of cuBLAS-Unfused kernel summation (N=1024)",
        csv,
    );
    exhibits::fig2_l2_mpki(&d).print(
        "Fig 2: L2 MPKI of cuBLAS-Unfused kernel summation (N=1024)",
        csv,
    );
    exhibits::fig6_speedup(&d).print(
        "Fig 6: Execution time and speedup of fused kernel summation",
        csv,
    );
    exhibits::fig7_gemm_compare(&d).print("Fig 7: CUDA-C GEMM vs vendor GEMM execution time", csv);
    exhibits::fig8a_l2_transactions(&d)
        .print("Fig 8a: L2 transactions normalised to cuBLAS-Unfused", csv);
    exhibits::fig8b_dram_transactions(&d).print(
        "Fig 8b: DRAM transactions normalised to cuBLAS-Unfused",
        csv,
    );
    exhibits::fig9_energy_compare(&d)
        .print("Fig 9: Energy breakdown (Compute / SMEM / L2 / DRAM)", csv);
    exhibits::dram_energy_savings(&d).print(
        "§V-C detail: DRAM energy savings of Fused vs cuBLAS-Unfused",
        csv,
    );
    exhibits::table2_flop_efficiency(&d).print("Table II: FLOP Efficiency", csv);
    exhibits::table3_energy_savings(&d).print(
        "Table III: Energy Savings of Fused compared to cuBLAS-Unfused",
        csv,
    );
}
