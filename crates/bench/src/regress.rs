//! Perf-regression harness: diffs a freshly collected
//! [`SweepMetrics`] export against a checked-in golden.
//!
//! Counters and transaction totals are compared **exactly** — the
//! simulator is deterministic, so any drift is a behaviour change that
//! must be either fixed or consciously blessed by regenerating the
//! golden. Simulated times, efficiencies and energies are floats
//! produced by deterministic arithmetic; they are compared with a
//! tight relative tolerance ([`REL_TOL`]) to stay robust if
//! summation order ever changes. Host wall times are ignored.

use crate::metrics::{PipelineMetrics, PointMetrics, SweepMetrics};

/// Relative tolerance for float comparisons (times, efficiencies,
/// energies). Counters are always compared exactly.
pub const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= REL_TOL * scale.max(1e-300)
}

fn diff_pipeline(
    at: &str,
    golden: &PipelineMetrics,
    fresh: &PipelineMetrics,
    out: &mut Vec<String>,
) {
    if golden.counters != fresh.counters {
        out.push(format!(
            "{at}: counters drifted\n  golden: {:?}\n  fresh:  {:?}",
            golden.counters, fresh.counters
        ));
    }
    if golden.mem != fresh.mem {
        out.push(format!(
            "{at}: L2/DRAM traffic drifted\n  golden: {:?}\n  fresh:  {:?}",
            golden.mem, fresh.mem
        ));
    }
    for (name, g, f) in [
        (
            "l2_transactions",
            golden.l2_transactions,
            fresh.l2_transactions,
        ),
        (
            "dram_transactions",
            golden.dram_transactions,
            fresh.dram_transactions,
        ),
    ] {
        if g != f {
            out.push(format!("{at}: {name} drifted: golden {g}, fresh {f}"));
        }
    }
    for (name, g, f) in [
        ("time_s", golden.time_s, fresh.time_s),
        (
            "flop_efficiency",
            golden.flop_efficiency,
            fresh.flop_efficiency,
        ),
        ("l2_mpki", golden.l2_mpki, fresh.l2_mpki),
        (
            "energy.total_j",
            golden.energy.total_j(),
            fresh.energy.total_j(),
        ),
    ] {
        if !close(g, f) {
            out.push(format!("{at}: {name} drifted: golden {g:?}, fresh {f:?}"));
        }
    }
    if golden.profile != fresh.profile {
        out.push(format!("{at}: per-kernel profile drifted"));
    }
}

fn diff_point(golden: &PointMetrics, fresh: &PointMetrics, out: &mut Vec<String>) {
    let at = format!("K={} M={}", golden.k, golden.m);
    for (name, g, f) in [
        (
            "speedup_vs_cublas",
            golden.speedup_vs_cublas,
            fresh.speedup_vs_cublas,
        ),
        (
            "speedup_vs_cuda",
            golden.speedup_vs_cuda,
            fresh.speedup_vs_cuda,
        ),
    ] {
        if !close(g, f) {
            out.push(format!("{at}: {name} drifted: golden {g:?}, fresh {f:?}"));
        }
    }
    diff_pipeline(&format!("{at} fused"), &golden.fused, &fresh.fused, out);
    diff_pipeline(
        &format!("{at} cuda_unfused"),
        &golden.cuda_unfused,
        &fresh.cuda_unfused,
        out,
    );
    diff_pipeline(
        &format!("{at} cublas_unfused"),
        &golden.cublas_unfused,
        &fresh.cublas_unfused,
        out,
    );
}

/// Compares two exports and returns one human-readable line (or
/// block) per mismatch; empty means no regression.
#[must_use]
pub fn diff(golden: &SweepMetrics, fresh: &SweepMetrics) -> Vec<String> {
    let mut out = Vec::new();
    if golden.schema_version != fresh.schema_version {
        out.push(format!(
            "schema version mismatch: golden {}, fresh {} — regenerate the golden",
            golden.schema_version, fresh.schema_version
        ));
        return out;
    }
    if golden.n != fresh.n {
        out.push(format!(
            "N mismatch: golden {}, fresh {}",
            golden.n, fresh.n
        ));
    }
    if !close(golden.peak_sp_gflops, fresh.peak_sp_gflops) {
        out.push(format!(
            "device peak drifted: golden {:?}, fresh {:?}",
            golden.peak_sp_gflops, fresh.peak_sp_gflops
        ));
    }
    let gold_pts: Vec<(u64, u64)> = golden.points.iter().map(|p| (p.k, p.m)).collect();
    let fresh_pts: Vec<(u64, u64)> = fresh.points.iter().map(|p| (p.k, p.m)).collect();
    if gold_pts != fresh_pts {
        out.push(format!(
            "point grids differ: golden {gold_pts:?}, fresh {fresh_pts:?}"
        ));
        return out;
    }
    for (g, f) in golden.points.iter().zip(&fresh.points) {
        diff_point(g, f, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SweepMetrics;
    use crate::{Sweep, SweepData};

    fn tiny() -> SweepMetrics {
        let d = SweepData::compute(Sweep {
            k_values: vec![32],
            m_values: vec![1024],
            n: 1024,
        })
        .expect("valid launch");
        SweepMetrics::collect(&d)
    }

    #[test]
    fn identical_exports_have_no_diff() {
        let m = tiny();
        assert!(diff(&m, &m).is_empty());
    }

    #[test]
    fn wall_time_is_ignored() {
        let golden = tiny();
        let mut fresh = golden.clone();
        fresh.points[0].wall_time_ms *= 100.0;
        assert!(diff(&golden, &fresh).is_empty());
    }

    #[test]
    fn counter_drift_is_detected() {
        let golden = tiny();
        let mut fresh = golden.clone();
        fresh.points[0].fused.counters.ffma_insts += 1;
        let d = diff(&golden, &fresh);
        assert!(
            d.iter().any(|l| l.contains("counters drifted")),
            "diff was: {d:?}"
        );
    }

    #[test]
    fn dram_drift_is_detected() {
        let golden = tiny();
        let mut fresh = golden.clone();
        fresh.points[0].cublas_unfused.dram_transactions += 7;
        let d = diff(&golden, &fresh);
        assert!(d.iter().any(|l| l.contains("dram_transactions")));
    }

    #[test]
    fn time_drift_is_detected_but_tiny_jitter_is_not() {
        let golden = tiny();
        let mut fresh = golden.clone();
        fresh.points[0].fused.time_s *= 1.0 + 1e-12;
        assert!(diff(&golden, &fresh).is_empty(), "below tolerance");
        fresh.points[0].fused.time_s *= 1.01;
        let d = diff(&golden, &fresh);
        assert!(d.iter().any(|l| l.contains("time_s drifted")));
    }

    #[test]
    fn schema_mismatch_short_circuits() {
        let golden = tiny();
        let mut fresh = golden.clone();
        fresh.schema_version += 1;
        let d = diff(&golden, &fresh);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("schema version"));
    }
}
