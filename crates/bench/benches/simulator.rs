//! Simulator-substrate throughput benchmarks: how fast the traffic
//! replay, bank-conflict analysis and cache model run on the host —
//! the numbers that determine how long the `--full` paper sweep takes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ks_gpu_kernels::{GpuKernelSummation, GpuVariant};
use ks_gpu_sim::cache::Cache;
use ks_gpu_sim::smem::warp_transactions;
use ks_gpu_sim::GpuDevice;

fn bench_smem_conflict_analysis(c: &mut Criterion) {
    let patterns: Vec<[Option<u32>; 32]> = (0..64)
        .map(|p| std::array::from_fn(|l| Some(((l * (p + 1)) % 256) as u32)))
        .collect();
    let mut g = c.benchmark_group("smem_conflict_analysis");
    g.throughput(Throughput::Elements(patterns.len() as u64));
    g.bench_function("64_patterns", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for p in &patterns {
                acc += warp_transactions(p, 32);
            }
            acc
        });
    });
    g.finish();
}

fn bench_l2_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("l2_cache_model");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("stream_100k_sectors", |b| {
        b.iter_batched(
            || Cache::new(1792 * 1024, 16, 32),
            |mut l2| {
                for i in 0..n {
                    l2.read(i * 32 % (8 * 1024 * 1024));
                }
                l2.stats().read_misses
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_pipeline_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_profile");
    g.sample_size(10);
    for variant in GpuVariant::ALL {
        g.bench_function(variant.label(), |b| {
            let ks = GpuKernelSummation::new(4096, 1024, 32, 1.0);
            b.iter(|| {
                let mut dev = GpuDevice::gtx970();
                ks.profile(&mut dev, variant).unwrap().total_time_s()
            });
        });
    }
    g.finish();
}

fn bench_functional_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional_execution");
    g.sample_size(10);
    let (m, n, k) = (256usize, 256, 16);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 17) as f32 * 0.1).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 13) as f32 * 0.1).collect();
    let w: Vec<f32> = (0..n).map(|i| (i % 7) as f32 * 0.2).collect();
    g.bench_function("fused_256x256x16", |bch| {
        let ks = GpuKernelSummation::new(m, n, k, 1.0);
        bch.iter(|| {
            let mut dev = GpuDevice::gtx970();
            ks.execute(&mut dev, GpuVariant::Fused, &a, &b, &w)
                .unwrap()
                .0
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_smem_conflict_analysis,
    bench_l2_model,
    bench_pipeline_profile,
    bench_functional_execution
);
criterion_main!(benches);
