//! Wall-clock comparison of the CPU kernel-summation solvers — the
//! paper's fusion argument measured on a real memory hierarchy:
//! the fused solver touches `O(M·K + N·K)` memory, the unfused one
//! materialises (and re-reads) the `M×N` intermediate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ks_core::cpu_fused::{self, FusedCpuConfig};
use ks_core::problem::{KernelSumProblem, PointSet};
use ks_core::{cpu_unfused, GaussianKernel};

fn build(m: usize, n: usize, k: usize) -> KernelSumProblem {
    KernelSumProblem::builder()
        .sources(PointSet::uniform_cube(m, k, 1))
        .targets(PointSet::uniform_cube(n, k, 2))
        .weights(PointSet::uniform_cube(n, 1, 3).coords().to_vec())
        .kernel(GaussianKernel { h: 1.0 })
        .build()
}

fn bench_fused_vs_unfused(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_kernel_summation");
    g.sample_size(10);
    for &k in &[16usize, 64] {
        let p = build(2048, 1024, k);
        g.bench_with_input(BenchmarkId::new("unfused", k), &p, |b, p| {
            b.iter(|| cpu_unfused::solve(p));
        });
        g.bench_with_input(BenchmarkId::new("fused", k), &p, |b, p| {
            b.iter(|| cpu_fused::solve(p, &FusedCpuConfig::default()));
        });
    }
    g.finish();
}

fn bench_fused_block_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_fused_blocking");
    g.sample_size(10);
    let p = build(2048, 1024, 32);
    for &(mb, nb) in &[(32usize, 128usize), (128, 512), (512, 1024)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{mb}x{nb}")),
            &p,
            |b, p| {
                b.iter(|| {
                    cpu_fused::solve(
                        p,
                        &FusedCpuConfig {
                            mb,
                            nb,
                            ..Default::default()
                        },
                    )
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fused_vs_unfused, bench_fused_block_sizes);
criterion_main!(benches);
