//! SGEMM substrate benchmarks: naive vs blocked vs parallel, plus the
//! packing / microkernel trade-offs the blocked algorithm depends on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ks_blas::{gemm_blocked, gemm_naive, gemm_parallel, GemmConfig, Layout, Matrix};

fn inputs(m: usize, n: usize, k: usize) -> (Matrix, Matrix, Matrix) {
    let mut state = 42u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    };
    (
        Matrix::from_fn(m, k, Layout::RowMajor, |_, _| next()),
        Matrix::from_fn(k, n, Layout::ColMajor, |_, _| next()),
        Matrix::zeros(m, n, Layout::RowMajor),
    )
}

fn bench_gemm_variants(c: &mut Criterion) {
    let (m, n, k) = (256usize, 256, 128);
    let (a, b, c0) = inputs(m, n, k);
    let mut g = c.benchmark_group("sgemm_256x256x128");
    g.throughput(Throughput::Elements((2 * m * n * k) as u64));
    g.sample_size(10);
    g.bench_function("naive", |bch| {
        bch.iter_batched(
            || c0.clone(),
            |mut c| gemm_naive(1.0, &a, &b, 0.0, &mut c),
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("blocked", |bch| {
        bch.iter_batched(
            || c0.clone(),
            |mut c| gemm_blocked(1.0, &a, &b, 0.0, &mut c, GemmConfig::default()),
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("parallel", |bch| {
        bch.iter_batched(
            || c0.clone(),
            |mut c| gemm_parallel(1.0, &a, &b, 0.0, &mut c, GemmConfig::default()),
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_blocking_parameters(c: &mut Criterion) {
    let (m, n, k) = (512usize, 512, 64);
    let (a, b, c0) = inputs(m, n, k);
    let mut g = c.benchmark_group("sgemm_blocking");
    g.sample_size(10);
    for cfg in [
        GemmConfig {
            mc: 32,
            kc: 32,
            nc: 128,
        },
        GemmConfig {
            mc: 128,
            kc: 256,
            nc: 1024,
        },
        GemmConfig {
            mc: 256,
            kc: 64,
            nc: 256,
        },
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("mc{}_kc{}_nc{}", cfg.mc, cfg.kc, cfg.nc)),
            &cfg,
            |bch, cfg| {
                bch.iter_batched(
                    || c0.clone(),
                    |mut c| gemm_blocked(1.0, &a, &b, 0.0, &mut c, *cfg),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_gemm_variants, bench_blocking_parameters);
criterion_main!(benches);
