//! # ks-analyze — static analysis over recorded warp traces
//!
//! The functional oracles in this workspace prove *numerics*; they
//! cannot prove the scheduling invariants the paper's kernel design
//! rests on, because the block-synchronous interpreter runs warps to
//! completion between barriers — a genuinely racy kernel still
//! produces deterministic, correct-looking numbers. This crate closes
//! that gap by analysing the warp-level access traces recorded by
//! [`ks_gpu_sim::trace::TraceSink`] during `block_traffic` replay:
//!
//! * **Shared-memory race detector** ([`checks::shared_races`]) —
//!   epoch-based happens-before: two accesses are ordered iff they
//!   lie in different barrier epochs or belong to the same warp.
//!   Catches write-write and read-write hazards, including
//!   double-buffer parity bugs in the §III-A pipelined GEMM.
//! * **Bank-conflict lint** ([`checks::bank_conflicts`]) — replays
//!   every recorded shared access through the hardware conflict model
//!   and enforces per-kernel declared budgets (the fused kernel
//!   declares 0, the Fig. 5 guarantee).
//! * **Barrier-divergence check** ([`checks::barrier_divergence`]) —
//!   every barrier must be reached by all warps of the block.
//! * **Bounds/overlap checks** ([`checks::global_bounds`],
//!   [`checks::buffer_overlap`]) — global accesses vs declared buffer
//!   extents and writable-role aliasing.
//! * **Occupancy-budget lint** ([`checks::occupancy_budget`]) — the
//!   fused kernel must achieve exactly 2 blocks/SM, limited by
//!   registers (§III-A).
//!
//! Budgets are declared per kernel via
//! [`ks_gpu_sim::kernel::Kernel::analysis_budget`]. The `ksum lint`
//! CLI subcommand (and the CI `lint-kernels` job) runs
//! [`runner::lint_report`] over every shipped kernel/variant; the
//! [`fixtures`] module holds deliberately-broken kernels proving the
//! detectors fire.

#![warn(missing_docs)]

pub mod checks;
pub mod differential;
pub mod fixtures;
pub mod report;
pub mod runner;
pub mod static_;

pub use report::{Finding, FindingKind, Report};
pub use runner::{lint_kernel, lint_report, record_traces, shipped_probes, Probe};
pub use static_::{lint_kernel_hybrid, lint_report_static, KernelStatic, LintMode, StaticOutcome};
