//! Trace recording and the lint driver.
//!
//! [`record_traces`] replays a kernel's `block_traffic` with a
//! [`TraceSink`] attached and returns the per-block warp traces.
//! [`lint_kernel`] runs every check over those traces;
//! [`lint_report`] does so for the whole registry of shipped
//! kernel/variant probes on a small probe problem.

use ks_gpu_sim::buffer::GlobalMem;
use ks_gpu_sim::cache::Cache;
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::kernel::Kernel;
use ks_gpu_sim::trace::{BlockTrace, TraceSink};
use ks_gpu_sim::traffic::TrafficSink;

use ks_gpu_kernels::aux_kernels::{
    Bandwidth, EvalKernel, EvalSumCoalescedKernel, EvalSumKernel, GemvKernel, NormsKernel,
};
use ks_gpu_kernels::fused::{ReducePartialsKernel, Reduction};
use ks_gpu_kernels::gemm_engine::{GemmOperands, GemmShape};
use ks_gpu_kernels::{
    CudaSgemm, FusedKernelSummation, FusedMultiWeight, Sgemm4x4, SmemLayout, TileGeometry,
    VendorSgemm,
};

use crate::checks;
use crate::report::Report;

/// Blocks traced per kernel. The workspace kernels are
/// traffic-homogeneous, so a handful of blocks (covering every
/// grid-position-dependent address pattern) suffices.
pub const MAX_TRACED_BLOCKS: usize = 4;

/// Replays up to `max_blocks` blocks of `kernel` through a traffic
/// sink with a trace recorder attached, returning the recorded
/// per-block traces.
#[must_use]
pub fn record_traces(kernel: &dyn Kernel, mem: &GlobalMem, max_blocks: usize) -> Vec<BlockTrace> {
    let lc = kernel.launch_config();
    let mut trace = TraceSink::new();
    let mut l2 = Cache::new(64 * 1024, 16, 32);
    {
        let mut sink = TrafficSink::new(mem, &mut l2, 32, 32);
        sink.set_trace(&mut trace);
        for block in lc.grid.iter_indices().take(max_blocks) {
            sink.begin_block(block.linear_in(lc.grid));
            kernel.block_traffic(block, &mut sink);
        }
    }
    trace.into_blocks()
}

/// Runs every static check against one kernel: trace-based checks
/// (races, bank conflicts, barrier divergence, bounds) on up to
/// [`MAX_TRACED_BLOCKS`] blocks, plus the whole-kernel budget checks
/// (buffer overlap, occupancy).
#[must_use]
pub fn lint_kernel(dev: &DeviceConfig, kernel: &dyn Kernel, mem: &GlobalMem) -> Report {
    let name = kernel.name();
    let budget = kernel.analysis_budget();
    let warps = kernel.launch_config().warps_per_block();
    let mut findings = Vec::new();
    findings.extend(checks::buffer_overlap(&name, &budget));
    findings.extend(checks::occupancy_budget(dev, kernel));
    for t in record_traces(kernel, mem, MAX_TRACED_BLOCKS) {
        findings.extend(checks::shared_races(&name, &t));
        findings.extend(checks::bank_conflicts(
            &name,
            &t,
            budget.smem_conflict_budget,
            32,
        ));
        findings.extend(checks::barrier_divergence(&name, &t, warps));
        findings.extend(checks::global_bounds(&name, &t, &budget));
    }
    Report {
        findings,
        checked: vec![name],
    }
}

/// A registered kernel/variant plus the (virtual) device memory its
/// buffers live in.
pub struct Probe {
    /// Short registry name (stable across kernel renames).
    pub name: &'static str,
    /// Memory holding the probe's buffer allocations.
    pub mem: GlobalMem,
    /// The kernel under lint.
    pub kernel: Box<dyn Kernel>,
}

/// Probe problem edge: small enough to trace in milliseconds, large
/// enough for a multi-block grid. Derived from the probes' (default)
/// tile geometry, not a hardcoded 128.
const PROBE_MN: usize = 2 * TileGeometry::paper_default().block_n;

struct FusedBufs {
    ops: GemmOperands,
    a2: ks_gpu_sim::buffer::BufId,
    b2: ks_gpu_sim::buffer::BufId,
    w: ks_gpu_sim::buffer::BufId,
    v: ks_gpu_sim::buffer::BufId,
}

fn fused_bufs(mem: &mut GlobalMem, shape: GemmShape) -> FusedBufs {
    FusedBufs {
        ops: GemmOperands {
            a: mem.alloc_virtual(shape.m * shape.k),
            b: mem.alloc_virtual(shape.k * shape.n),
        },
        a2: mem.alloc_virtual(shape.m),
        b2: mem.alloc_virtual(shape.n),
        w: mem.alloc_virtual(shape.n),
        v: mem.alloc_virtual(shape.m),
    }
}

fn fused_probe(
    name: &'static str,
    k: usize,
    build: impl Fn(FusedKernelSummation) -> FusedKernelSummation,
) -> Probe {
    let shape = GemmShape {
        m: PROBE_MN,
        n: PROBE_MN,
        k,
    };
    let mut mem = GlobalMem::new();
    let b = fused_bufs(&mut mem, shape);
    let kernel = build(FusedKernelSummation::new(
        b.ops,
        b.a2,
        b.b2,
        b.w,
        b.v,
        shape,
        Bandwidth { h: 1.0 },
    ));
    Probe {
        name,
        mem,
        kernel: Box::new(kernel),
    }
}

/// The registry of shipped kernels/variants, each on a probe problem
/// (`M = N = 256`, both double-buffer parities of `K` for the fused
/// kernels). `ksum lint` and the CI `lint-kernels` job run every
/// entry.
#[must_use]
pub fn shipped_probes() -> Vec<Probe> {
    let shape16 = GemmShape {
        m: PROBE_MN,
        n: PROBE_MN,
        k: 16,
    };
    let bw = Bandwidth { h: 1.0 };
    let mut probes = vec![
        // K = 16 (even tile count) and K = 24 (odd): both parities of
        // the double-buffered pipeline, covering the T-scratch parity.
        fused_probe("fused", 16, |k| k),
        fused_probe("fused_k24", 24, |k| k),
        fused_probe("fused_naive_layout", 16, |k| {
            k.with_layout(SmemLayout::NaiveRowMajor)
        }),
        fused_probe("fused_single_buffer", 24, |k| k.with_double_buffer(false)),
    ];

    // Two-pass reduction: the fused kernel writing partials plus the
    // reduce kernel consuming them.
    {
        let mut mem = GlobalMem::new();
        let b = fused_bufs(&mut mem, shape16);
        let n_blocks_x = shape16.n / TileGeometry::paper_default().block_n;
        let partials = mem.alloc_virtual(n_blocks_x * shape16.m);
        let kernel = FusedKernelSummation::new(b.ops, b.a2, b.b2, b.w, b.v, shape16, bw)
            .with_reduction(Reduction::TwoPass { partials });
        probes.push(Probe {
            name: "fused_two_pass",
            mem,
            kernel: Box::new(kernel),
        });
        let mut mem2 = GlobalMem::new();
        let p2 = mem2.alloc_virtual(n_blocks_x * shape16.m);
        let v2 = mem2.alloc_virtual(shape16.m);
        probes.push(Probe {
            name: "reduce_partials",
            mem: mem2,
            kernel: Box::new(ReducePartialsKernel::new(p2, v2, shape16.m, n_blocks_x)),
        });
    }

    // Multi-weight fused kernel, R = 2 (the r >= 2 occupancy point).
    for (name, k) in [("fused_multi_r2", 16), ("fused_multi_r2_k24", 24)] {
        let shape = GemmShape {
            m: PROBE_MN,
            n: PROBE_MN,
            k,
        };
        let mut mem = GlobalMem::new();
        let b = fused_bufs(&mut mem, shape);
        let w = mem.alloc_virtual(shape.n * 2);
        let v = mem.alloc_virtual(shape.m * 2);
        probes.push(Probe {
            name,
            mem,
            kernel: Box::new(FusedMultiWeight::new(b.ops, b.a2, b.b2, w, v, shape, bw, 2)),
        });
    }

    // Plain GEMM kernels.
    {
        let mut mem = GlobalMem::new();
        let ops = GemmOperands {
            a: mem.alloc_virtual(shape16.m * shape16.k),
            b: mem.alloc_virtual(shape16.k * shape16.n),
        };
        let c = mem.alloc_virtual(shape16.m * shape16.n);
        probes.push(Probe {
            name: "sgemm_cuda",
            mem,
            kernel: Box::new(CudaSgemm::new(ops, c, shape16)),
        });
        let mut mem = GlobalMem::new();
        let ops = GemmOperands {
            a: mem.alloc_virtual(shape16.m * shape16.k),
            b: mem.alloc_virtual(shape16.k * shape16.n),
        };
        let c = mem.alloc_virtual(shape16.m * shape16.n);
        probes.push(Probe {
            name: "sgemm_vendor",
            mem,
            kernel: Box::new(VendorSgemm::new(ops, c, shape16)),
        });
        let mut mem = GlobalMem::new();
        let ops = GemmOperands {
            a: mem.alloc_virtual(shape16.m * shape16.k),
            b: mem.alloc_virtual(shape16.k * shape16.n),
        };
        let c = mem.alloc_virtual(shape16.m * shape16.n);
        probes.push(Probe {
            name: "sgemm_4x4_small",
            mem,
            kernel: Box::new(Sgemm4x4::new(ops, c, shape16)),
        });
    }

    // Unfused pipeline stages.
    let (m, n, dim) = (PROBE_MN, PROBE_MN, 16);
    {
        let mut mem = GlobalMem::new();
        let pts = mem.alloc_virtual(m * dim);
        let out = mem.alloc_virtual(m);
        probes.push(Probe {
            name: "norms",
            mem,
            kernel: Box::new(NormsKernel::new(pts, out, m, dim, "a")),
        });
    }
    for coalesced in [false, true] {
        let mut mem = GlobalMem::new();
        let c = mem.alloc_virtual(m * n);
        let (a2, b2, w, v) = (
            mem.alloc_virtual(m),
            mem.alloc_virtual(n),
            mem.alloc_virtual(n),
            mem.alloc_virtual(m),
        );
        let kernel: Box<dyn Kernel> = if coalesced {
            Box::new(EvalSumCoalescedKernel::new(c, a2, b2, w, v, m, n, bw))
        } else {
            Box::new(EvalSumKernel::new(c, a2, b2, w, v, m, n, bw))
        };
        probes.push(Probe {
            name: if coalesced {
                "eval_sum_coalesced"
            } else {
                "eval_sum"
            },
            mem,
            kernel,
        });
    }
    {
        let mut mem = GlobalMem::new();
        let c = mem.alloc_virtual(m * n);
        let kmat = mem.alloc_virtual(m * n);
        let (a2, b2) = (mem.alloc_virtual(m), mem.alloc_virtual(n));
        probes.push(Probe {
            name: "eval",
            mem,
            kernel: Box::new(EvalKernel::new(c, kmat, a2, b2, m, n, bw)),
        });
        let mut mem = GlobalMem::new();
        let kmat = mem.alloc_virtual(m * n);
        let (w, v) = (mem.alloc_virtual(n), mem.alloc_virtual(m));
        probes.push(Probe {
            name: "gemv",
            mem,
            kernel: Box::new(GemvKernel::new(kmat, w, v, m, n)),
        });
    }
    probes
}

/// Lints every shipped probe on `dev`, returning one merged report.
#[must_use]
pub fn lint_report(dev: &DeviceConfig) -> Report {
    let mut report = Report::default();
    for probe in shipped_probes() {
        let mut r = lint_kernel(dev, probe.kernel.as_ref(), &probe.mem);
        // Label by registry name: kernel names collide across variants
        // (e.g. the swizzled and naive-layout probes share one name).
        r.checked = vec![probe.name.to_string()];
        for f in &mut r.findings {
            f.kernel = probe.name.to_string();
        }
        report.merge(r);
    }
    // The registry trips the same (kernel, check, detail) once per
    // traced block; report each once with an occurrence count.
    report.dedup();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_cover_blocks_and_epochs() {
        let probes = shipped_probes();
        let fused = &probes[0];
        let traces = record_traces(fused.kernel.as_ref(), &fused.mem, MAX_TRACED_BLOCKS);
        assert_eq!(traces.len(), 4, "2x2 grid fully traced");
        for t in &traces {
            // k=16 double-buffered: 2 GEMM barriers (one per tile)
            // plus the reduction-phase barriers.
            assert!(t.barriers.len() >= 2, "{} barriers", t.barriers.len());
            assert!(!t.shared.is_empty());
            assert!(!t.global.is_empty());
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let probes = shipped_probes();
        let mut names: Vec<_> = probes.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), probes.len());
    }
}
