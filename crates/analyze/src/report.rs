//! Findings and the lint report.

use std::collections::HashMap;
use std::fmt;

/// What kind of invariant a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum FindingKind {
    /// Two warps touch the same shared word in the same barrier epoch
    /// and at least one of them writes.
    SharedRace,
    /// A shared-memory access phase exceeds the kernel's declared
    /// bank-conflict budget.
    BankConflict,
    /// A barrier was executed by fewer warps than the block holds.
    BarrierDivergence,
    /// A global access lies outside the declared buffer extent (or
    /// writes a buffer declared read-only, or touches an undeclared
    /// buffer).
    OutOfBounds,
    /// Two declared buffer roles alias the same allocation and at
    /// least one of them writes.
    BufferOverlap,
    /// Achieved occupancy disagrees with the kernel's declared
    /// expectation (blocks/SM or limiting resource).
    OccupancyMismatch,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FindingKind::SharedRace => "shared-race",
            FindingKind::BankConflict => "bank-conflict",
            FindingKind::BarrierDivergence => "barrier-divergence",
            FindingKind::OutOfBounds => "out-of-bounds",
            FindingKind::BufferOverlap => "buffer-overlap",
            FindingKind::OccupancyMismatch => "occupancy-mismatch",
        };
        f.write_str(s)
    }
}

/// One lint violation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Finding {
    /// Kernel the finding is about.
    pub kernel: String,
    /// Violated invariant.
    pub kind: FindingKind,
    /// Linear block index the violation was observed in (`None` for
    /// whole-kernel checks like occupancy).
    pub block: Option<u64>,
    /// How many identical occurrences (same kernel, kind, and detail,
    /// blocks aside) this finding stands for after [`Report::dedup`].
    pub count: usize,
    /// Human-readable description.
    pub detail: String,
}

impl Finding {
    /// The detail, suffixed with the occurrence count when this
    /// finding stands for more than one.
    fn detail_with_count(&self) -> String {
        if self.count > 1 {
            format!("{} (x{})", self.detail, self.count)
        } else {
            self.detail.clone()
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            Some(b) => write!(
                f,
                "{}: [{}] block {}: {}",
                self.kernel,
                self.kind,
                b,
                self.detail_with_count()
            ),
            None => write!(
                f,
                "{}: [{}] {}",
                self.kernel,
                self.kind,
                self.detail_with_count()
            ),
        }
    }
}

/// The result of linting one kernel (or, merged, a whole registry).
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct Report {
    /// All violations found.
    pub findings: Vec<Finding>,
    /// Names of the kernels that were checked (clean or not).
    pub checked: Vec<String>,
}

impl Report {
    /// True if no invariant was violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.checked.extend(other.checked);
    }

    /// Findings of a given kind.
    #[must_use]
    pub fn of_kind(&self, kind: FindingKind) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.kind == kind).collect()
    }

    /// Keeps only findings about `kernel` (and its entry in
    /// `checked`). Backs the CLI `--kernel` filter.
    pub fn retain_kernel(&mut self, kernel: &str) {
        self.findings.retain(|f| f.kernel == kernel);
        self.checked.retain(|c| c == kernel);
    }

    /// Collapses findings that are identical up to the block index —
    /// same (kernel, kind, detail) — into the first occurrence, with
    /// `count` accumulating how many it stands for. A registry lint
    /// that trips the same check in every traced block then reports
    /// it once instead of [`crate::runner::MAX_TRACED_BLOCKS`] times.
    pub fn dedup(&mut self) {
        let mut index: HashMap<(String, FindingKind, String), usize> = HashMap::new();
        let mut out: Vec<Finding> = Vec::with_capacity(self.findings.len());
        for f in self.findings.drain(..) {
            let key = (f.kernel.clone(), f.kind, f.detail.clone());
            match index.get(&key) {
                Some(&i) => out[i].count += f.count.max(1),
                None => {
                    index.insert(key, out.len());
                    out.push(f);
                }
            }
        }
        self.findings = out;
    }

    /// Machine-readable findings export (pretty-printed JSON), for
    /// `ksum lint --json` and CI artifacts.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Renders the findings as an aligned text table (one row per
    /// finding; a summary line when clean).
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            out.push_str(&format!(
                "OK: no findings across {} kernel(s)\n",
                self.checked.len()
            ));
            for name in &self.checked {
                out.push_str(&format!("  clean  {name}\n"));
            }
            return out;
        }
        let rows: Vec<[String; 4]> = self
            .findings
            .iter()
            .map(|f| {
                [
                    f.kernel.clone(),
                    f.kind.to_string(),
                    f.block.map_or_else(|| "-".to_string(), |b| b.to_string()),
                    f.detail_with_count(),
                ]
            })
            .collect();
        let header = ["KERNEL", "KIND", "BLOCK", "DETAIL"];
        let width = |col: usize| {
            rows.iter()
                .map(|r| r[col].len())
                .chain(std::iter::once(header[col].len()))
                .max()
                .unwrap_or(0)
        };
        let (w0, w1, w2) = (width(0), width(1), width(2));
        out.push_str(&format!(
            "{:<w0$}  {:<w1$}  {:<w2$}  {}\n",
            header[0], header[1], header[2], header[3]
        ));
        for r in &rows {
            out.push_str(&format!(
                "{:<w0$}  {:<w1$}  {:<w2$}  {}\n",
                r[0], r[1], r[2], r[3]
            ));
        }
        out.push_str(&format!(
            "{} finding(s) across {} kernel(s)\n",
            self.findings.len(),
            self.checked.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(kind: FindingKind) -> Finding {
        Finding {
            kernel: "k".into(),
            kind,
            block: Some(0),
            count: 1,
            detail: "d".into(),
        }
    }

    #[test]
    fn clean_report_renders_summary() {
        let r = Report {
            findings: vec![],
            checked: vec!["a".into(), "b".into()],
        };
        assert!(r.is_clean());
        let t = r.table();
        assert!(t.contains("no findings across 2"));
        assert!(t.contains("clean  a"));
    }

    #[test]
    fn findings_render_as_rows() {
        let mut r = Report::default();
        r.merge(Report {
            findings: vec![finding(FindingKind::SharedRace)],
            checked: vec!["k".into()],
        });
        assert!(!r.is_clean());
        assert_eq!(r.of_kind(FindingKind::SharedRace).len(), 1);
        assert_eq!(r.of_kind(FindingKind::BankConflict).len(), 0);
        let t = r.table();
        assert!(t.contains("KERNEL"));
        assert!(t.contains("shared-race"));
        assert!(t.contains("1 finding(s)"));
    }

    #[test]
    fn display_forms() {
        let f = finding(FindingKind::OutOfBounds);
        assert!(f.to_string().contains("[out-of-bounds] block 0"));
        let g = Finding {
            block: None,
            ..finding(FindingKind::OccupancyMismatch)
        };
        assert!(g.to_string().contains("[occupancy-mismatch] d"));
    }
}
