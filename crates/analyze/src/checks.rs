//! The individual static checks, each a pure function over a recorded
//! [`BlockTrace`] (plus the kernel's declared [`AnalysisBudget`]).
//!
//! ## Epoch-based happens-before
//!
//! The simulator executes warps of a block to completion between
//! barriers, so a real data race still produces deterministic (and
//! usually correct-looking) numbers — exactly the bug class that is
//! invisible to the functional oracles. The race detector therefore
//! works on the *trace*: two shared-memory accesses are ordered iff
//! they lie in different barrier epochs or were issued by the same
//! warp. Same epoch + different warps + at least one write = race.

use std::collections::BTreeMap;
use std::collections::HashMap;

use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::kernel::{AnalysisBudget, Kernel};
use ks_gpu_sim::occupancy::occupancy;
use ks_gpu_sim::smem::conflict_degree;
use ks_gpu_sim::trace::BlockTrace;

use crate::report::{Finding, FindingKind};

/// Renders a warp bitmask as a sorted list, e.g. `[0, 3, 7]`.
fn warp_list(mask: u64) -> String {
    let warps: Vec<String> = (0..64)
        .filter(|w| mask & (1 << w) != 0)
        .map(|w| w.to_string())
        .collect();
    format!("[{}]", warps.join(", "))
}

/// Shared-memory race detection (see module docs). Reports at most one
/// write-write and one read-write finding per block, each carrying the
/// first racy word as an example plus the total count.
#[must_use]
pub fn shared_races(kernel: &str, t: &BlockTrace) -> Vec<Finding> {
    // (epoch, word) -> (writer-warp mask, reader-warp mask).
    let mut words: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
    for a in &t.shared {
        let bit = 1u64 << (a.warp % 64);
        for base in a.words.iter().flatten() {
            for j in 0..a.vlen {
                let slot = words.entry((a.epoch, base + j)).or_insert((0, 0));
                if a.dir.is_write() {
                    slot.0 |= bit;
                } else {
                    slot.1 |= bit;
                }
            }
        }
    }

    let mut ww: Option<((u32, u32), u64)> = None;
    let mut ww_count = 0usize;
    let mut rw: Option<((u32, u32), (u64, u64))> = None;
    let mut rw_count = 0usize;
    for (&key, &(writers, readers)) in &words {
        if writers.count_ones() >= 2 {
            ww_count += 1;
            ww.get_or_insert((key, writers));
        }
        // A read races with a write from any *other* warp.
        if writers != 0 && readers & !writers != 0 {
            rw_count += 1;
            rw.get_or_insert((key, (writers, readers & !writers)));
        }
    }

    let mut findings = Vec::new();
    if let Some(((epoch, word), writers)) = ww {
        findings.push(Finding {
            kernel: kernel.to_string(),
            kind: FindingKind::SharedRace,
            block: Some(t.block),
            count: 1,
            detail: format!(
                "write-write: {ww_count} shared word(s) written by multiple warps in one epoch; \
                 e.g. word {word} in epoch {epoch} written by warps {}",
                warp_list(writers)
            ),
        });
    }
    if let Some(((epoch, word), (writers, readers))) = rw {
        findings.push(Finding {
            kernel: kernel.to_string(),
            kind: FindingKind::SharedRace,
            block: Some(t.block),
            count: 1,
            detail: format!(
                "read-write: {rw_count} shared word(s) read and written by different warps in one \
                 epoch; e.g. word {word} in epoch {epoch}: writers {}, unordered readers {}",
                warp_list(writers),
                warp_list(readers)
            ),
        });
    }
    findings
}

/// Bank-conflict lint: replays every recorded shared access, one
/// word-phase at a time, through the hardware conflict model and
/// compares the conflict degree against the kernel's declared budget.
/// Reports one finding per block carrying the worst offender.
#[must_use]
pub fn bank_conflicts(kernel: &str, t: &BlockTrace, budget: u32, num_banks: u32) -> Vec<Finding> {
    let mut worst = (0u32, 0u32, 0u32); // (degree, warp, epoch)
    let mut violations = 0usize;
    for a in &t.shared {
        for j in 0..a.vlen {
            let phase: [Option<u32>; 32] = std::array::from_fn(|l| a.words[l].map(|w| w + j));
            let degree = conflict_degree(&phase, num_banks);
            if degree > budget {
                violations += 1;
                if degree > worst.0 {
                    worst = (degree, a.warp, a.epoch);
                }
            }
        }
    }
    match violations {
        0 => Vec::new(),
        _ => vec![Finding {
            kernel: kernel.to_string(),
            kind: FindingKind::BankConflict,
            block: Some(t.block),
            count: 1,
            detail: format!(
                "{violations} access phase(s) over the declared budget of {budget}; worst is \
                 {}-way extra conflict (warp {}, epoch {})",
                worst.0, worst.1, worst.2
            ),
        }],
    }
}

/// Barrier-divergence check: every recorded barrier must have been
/// reached by all warps of the block (a barrier inside divergent
/// control flow deadlocks real hardware).
#[must_use]
pub fn barrier_divergence(kernel: &str, t: &BlockTrace, warps_per_block: u64) -> Vec<Finding> {
    for (seq, b) in t.barriers.iter().enumerate() {
        if b.warps != warps_per_block {
            return vec![Finding {
                kernel: kernel.to_string(),
                kind: FindingKind::BarrierDivergence,
                block: Some(t.block),
                count: 1,
                detail: format!(
                    "barrier #{seq} (closing epoch {}) reached by {} of {warps_per_block} warps",
                    b.epoch, b.warps
                ),
            }];
        }
    }
    Vec::new()
}

/// Out-of-bounds check for global accesses against the declared buffer
/// extents. Skipped entirely when the kernel declares no buffers.
/// Also flags writes to buffers declared read-only and accesses to
/// undeclared buffers.
#[must_use]
pub fn global_bounds(kernel: &str, t: &BlockTrace, budget: &AnalysisBudget) -> Vec<Finding> {
    if budget.buffers.is_empty() {
        return Vec::new();
    }
    let decls: HashMap<_, _> = budget.buffers.iter().map(|b| (b.buf, b)).collect();
    let mut violations: Vec<String> = Vec::new();
    for a in &t.global {
        let Some(decl) = decls.get(&a.buf) else {
            violations.push(format!(
                "warp {} accesses undeclared buffer {:?}",
                a.warp, a.buf
            ));
            continue;
        };
        if a.dir.is_write() && !decl.writes {
            violations.push(format!(
                "warp {} writes read-only buffer '{}'",
                a.warp, decl.label
            ));
        }
        for idx in a.idx.iter().flatten() {
            if idx + a.vlen as usize > decl.len {
                violations.push(format!(
                    "warp {} touches '{}'[{}..{}] past extent {}",
                    a.warp,
                    decl.label,
                    idx,
                    idx + a.vlen as usize,
                    decl.len
                ));
            }
        }
    }
    if violations.is_empty() {
        return Vec::new();
    }
    let total = violations.len();
    vec![Finding {
        kernel: kernel.to_string(),
        kind: FindingKind::OutOfBounds,
        block: Some(t.block),
        count: 1,
        detail: format!("{total} violation(s); first: {}", violations[0]),
    }]
}

/// Buffer-overlap check: two declared roles naming the same allocation
/// while at least one writes (the allocator never hands out physically
/// overlapping ranges, so same-`BufId` aliasing is the only way global
/// ranges can overlap).
#[must_use]
pub fn buffer_overlap(kernel: &str, budget: &AnalysisBudget) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, x) in budget.buffers.iter().enumerate() {
        for y in budget.buffers.iter().skip(i + 1) {
            if x.buf == y.buf && (x.writes || y.writes) {
                findings.push(Finding {
                    kernel: kernel.to_string(),
                    kind: FindingKind::BufferOverlap,
                    block: None,
                    count: 1,
                    detail: format!(
                        "roles '{}' and '{}' alias one allocation and at least one writes",
                        x.label, y.label
                    ),
                });
            }
        }
    }
    findings
}

/// Occupancy-budget lint: computes the achieved occupancy on `dev` and
/// compares it against the kernel's declared expectation (blocks/SM
/// and limiting resource). Skipped when the kernel declares neither.
#[must_use]
pub fn occupancy_budget(dev: &DeviceConfig, kernel: &dyn Kernel) -> Vec<Finding> {
    let budget = kernel.analysis_budget();
    if budget.expected_blocks_per_sm.is_none() && budget.expected_limiter.is_none() {
        return Vec::new();
    }
    let occ = occupancy(dev, &kernel.resources());
    let mut findings = Vec::new();
    if let Some(expected) = budget.expected_blocks_per_sm {
        if occ.blocks_per_sm != expected {
            findings.push(Finding {
                kernel: kernel.name(),
                kind: FindingKind::OccupancyMismatch,
                block: None,
                count: 1,
                detail: format!(
                    "expected {expected} block(s)/SM on {}, achieved {}",
                    dev.name, occ.blocks_per_sm
                ),
            });
        }
    }
    if let Some(expected) = budget.expected_limiter {
        if occ.limiter != expected {
            findings.push(Finding {
                kernel: kernel.name(),
                kind: FindingKind::OccupancyMismatch,
                block: None,
                count: 1,
                detail: format!(
                    "expected occupancy limiter {expected:?}, computed {:?}",
                    occ.limiter
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::trace::{AccessDir, TraceSink};

    fn words(f: impl Fn(usize) -> u32) -> [Option<u32>; 32] {
        std::array::from_fn(|l| Some(f(l)))
    }

    #[test]
    fn same_epoch_cross_warp_write_is_ww_race() {
        let mut t = TraceSink::new();
        t.begin_block(0);
        t.begin_warp(0);
        t.shared(&words(|l| l as u32), 1, AccessDir::Write);
        t.begin_warp(1);
        t.shared(&words(|l| l as u32), 1, AccessDir::Write);
        let f = shared_races("k", &t.blocks()[0]);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("write-write"));
        assert!(f[0].detail.contains("[0, 1]"));
    }

    #[test]
    fn barrier_orders_accesses() {
        let mut t = TraceSink::new();
        t.begin_block(0);
        t.begin_warp(0);
        t.shared(&words(|l| l as u32), 1, AccessDir::Write);
        t.barrier(2);
        t.begin_warp(1);
        t.shared(&words(|l| l as u32), 1, AccessDir::Read);
        assert!(shared_races("k", &t.blocks()[0]).is_empty());
    }

    #[test]
    fn unordered_read_of_written_word_is_rw_race() {
        let mut t = TraceSink::new();
        t.begin_block(0);
        t.begin_warp(0);
        t.shared(&words(|_| 7), 1, AccessDir::Write);
        t.begin_warp(3);
        t.shared(&words(|_| 7), 1, AccessDir::Read);
        let f = shared_races("k", &t.blocks()[0]);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("read-write"));
    }

    #[test]
    fn same_warp_read_after_write_is_ordered() {
        let mut t = TraceSink::new();
        t.begin_block(0);
        t.begin_warp(2);
        t.shared(&words(|_| 7), 1, AccessDir::Write);
        t.shared(&words(|_| 7), 1, AccessDir::Read);
        assert!(shared_races("k", &t.blocks()[0]).is_empty());
    }

    #[test]
    fn vector_access_races_on_expanded_words() {
        // Warp 0 stores words 0..4 (LDS.128 footprint at base 0); warp
        // 1 reads scalar word 3 — the overlap is only visible after
        // vlen expansion.
        let mut t = TraceSink::new();
        t.begin_block(0);
        t.begin_warp(0);
        let mut base: [Option<u32>; 32] = [None; 32];
        base[0] = Some(0);
        t.shared(&base, 4, AccessDir::Write);
        t.begin_warp(1);
        let mut rd: [Option<u32>; 32] = [None; 32];
        rd[0] = Some(3);
        t.shared(&rd, 1, AccessDir::Read);
        assert_eq!(shared_races("k", &t.blocks()[0]).len(), 1);
    }

    #[test]
    fn stride_conflicts_flagged_against_budget() {
        let mut t = TraceSink::new();
        t.begin_block(0);
        t.shared(&words(|l| (l as u32) * 2), 1, AccessDir::Read);
        let b = &t.blocks()[0];
        // Stride 2 over 32 banks: 2-way conflict (degree 1).
        assert!(bank_conflicts("k", b, 1, 32).is_empty());
        let f = bank_conflicts("k", b, 0, 32);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("1-way"), "{}", f[0].detail);
    }

    #[test]
    fn partial_barrier_is_divergence() {
        let mut t = TraceSink::new();
        t.begin_block(0);
        t.barrier(8);
        t.barrier(5);
        let f = barrier_divergence("k", &t.blocks()[0], 8);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("5 of 8"));
    }
}
