//! The zero-execution ("static") lint pass over declared access specs.
//!
//! Where [`crate::runner::lint_kernel`] replays a kernel's traffic and
//! inspects the recorded trace, this module proves the same properties
//! symbolically from the kernel's [`AccessSpec`] — no block is ever
//! executed or replayed:
//!
//! * **Bank conflicts** — every [`SharedPattern`] is expanded one
//!   word-phase at a time through the same hardware
//!   [`conflict_degree`] model the dynamic lint uses, weighted by its
//!   per-block issue count.
//! * **DRAM sectors** — each affine [`GlobalPattern`]'s launch-total
//!   sector count is computed exactly by residue arithmetic (see
//!   [`pattern_sectors`]), reproducing what a Full-mode
//!   `TrafficSink` with no caches attached would count.
//! * **Bounds** — [`GlobalPattern::index_range`] gives the inclusive
//!   hull of every index the pattern can produce over all blocks and
//!   loop iterations; comparing the hull against the declared
//!   [`BufferUse`] extents proves (not samples) in-bounds-ness.
//!   Writes to read-only roles and undeclared buffers are flagged the
//!   same way the dynamic check flags them.
//! * **Barriers** — the declared [`ks_gpu_sim::access::BarrierSpec`]
//!   warp count must equal the block's warp count.
//! * **Occupancy / overlap** — the trace-free checks from
//!   [`crate::checks`] are reused unchanged.
//!
//! ## The honest-downgrade contract
//!
//! Specs are *claims*. A kernel with no spec, or whose spec contains
//! an [`GlobalPattern::indirect`] pattern, is **downgraded** to the
//! dynamic trace-based lint ([`LintMode::Dynamic`] records why). The
//! static pass never silently passes a kernel it cannot reason about,
//! and the differential validator (`crate::differential`) cross-checks
//! every static verdict against recorded traces and replay counters.
//!
//! ## Why dropping the buffer base is sound
//!
//! Sector prediction works in buffer-relative words and ignores the
//! allocation base. That is exact, not approximate: `GlobalMem` aligns
//! every allocation to 256 bytes, so each base is a whole number of
//! 32-byte sectors and translating a footprint by it never merges or
//! splits sectors.

use std::collections::HashMap;

use ks_gpu_sim::access::{convolve_residues, residue_histogram, AccessSpec, GlobalPattern};
use ks_gpu_sim::buffer::GlobalMem;
use ks_gpu_sim::coalesce;
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::kernel::{BufferUse, Kernel};
use ks_gpu_sim::smem::conflict_degree;
use ks_gpu_sim::trace::AccessDir;

use crate::checks;
use crate::report::{Finding, FindingKind, Report};
use crate::runner;

/// Words per 32-byte DRAM/L2 sector (4-byte words).
pub const SECTOR_WORDS: usize = 8;
const SECTOR_BYTES: u32 = 32;
const NUM_BANKS: u32 = 32;

/// How a kernel was linted by the hybrid entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintMode {
    /// Affine spec: every verdict proved without executing a block.
    Static,
    /// No spec, or a non-affine one: honest downgrade to the dynamic
    /// (trace-replay) lint, with the reason recorded. Never a silent
    /// pass.
    Dynamic(String),
}

impl LintMode {
    /// True when the kernel was proved statically.
    #[must_use]
    pub fn is_static(&self) -> bool {
        matches!(self, LintMode::Static)
    }
}

impl serde::Serialize for LintMode {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Str(match self {
            LintMode::Static => "static".to_string(),
            LintMode::Dynamic(reason) => format!("dynamic: {reason}"),
        })
    }
}

/// Predicted launch-total sector traffic: what a Full-mode
/// `TrafficSink` with no L1s attached would accumulate in
/// `l2_read_sectors` / `l2_write_sectors` / `atomic_sectors` over
/// every block of the grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct SectorPrediction {
    /// Sectors reaching L2 from global loads.
    pub read_sectors: u64,
    /// Sectors written through to L2.
    pub write_sectors: u64,
    /// Sectors touched by L2 atomic read-modify-writes.
    pub atomic_sectors: u64,
}

/// Per-pattern coalescing summary: how many sectors the pattern
/// actually touches per launch versus the perfectly coalesced floor
/// for its active-lane footprint. Summary data, **not** a finding —
/// shipped kernels are allowed to be uncoalesced (the paper's
/// `eval_sum` baseline deliberately is).
#[derive(Debug, Clone, serde::Serialize)]
pub struct PatternCoalescing {
    /// Operand label from the pattern.
    pub label: String,
    /// `"read"`, `"write"`, or `"atomic"`.
    pub dir: &'static str,
    /// Warp instructions issued per launch.
    pub issues: u64,
    /// Predicted sectors per launch.
    pub sectors: u64,
    /// Perfectly coalesced floor (active lanes × access bytes, rounded
    /// up to sectors) per launch.
    pub ideal_sectors: u64,
}

/// Everything the static pass concluded about one kernel.
#[derive(Debug, Clone, serde::Serialize)]
pub struct KernelStatic {
    /// Kernel (or probe registry) name.
    pub kernel: String,
    /// Static proof or recorded downgrade.
    pub mode: LintMode,
    /// Worst shared-memory conflict degree over all phases (static
    /// mode only; the Fig. 5 swizzle pins this to 0 for the fused
    /// kernel, 3 for the naive layout).
    pub max_conflict_degree: u32,
    /// Histogram of per-block shared access phases by conflict degree:
    /// `conflict_hist[d]` = phases/block with degree `d`.
    pub conflict_hist: Vec<u64>,
    /// Predicted launch-total sectors (static mode only).
    pub predicted: Option<SectorPrediction>,
    /// Per-pattern coalescing summaries (static mode only).
    pub coalescing: Vec<PatternCoalescing>,
}

fn dir_str(dir: AccessDir) -> &'static str {
    match dir {
        AccessDir::Read => "read",
        AccessDir::Write => "write",
        AccessDir::Atomic => "atomic",
    }
}

/// Bytes each lane moves per instruction, mirroring the traffic
/// model: atomics are word-sized regardless of declared width.
fn access_bytes(p: &GlobalPattern) -> u32 {
    match p.dir {
        AccessDir::Atomic => 4,
        _ => p.vlen.words() * 4,
    }
}

/// Exact launch-total sector count for one affine pattern, plus the
/// perfectly coalesced floor.
///
/// Sector footprints are invariant under shifts by whole sectors
/// ([`SECTOR_WORDS`] words), so the only thing that matters about the
/// block/loop offset `bx·bx_step + by·by_step + Σ i_j·step_j` is its
/// residue mod 8. The residue distribution over the whole launch is
/// the convolution of each symbol's [`residue_histogram`]; the total
/// is `Σ_r dist[r] · sectors(lanes + r)` with the eight shifted
/// footprints evaluated through the same [`coalesce::warp_sectors`]
/// model the replay uses.
#[must_use]
pub fn pattern_sectors(p: &GlobalPattern, grid_x: u64, grid_y: u64) -> (u64, u64) {
    let mut dist = residue_histogram(grid_x, p.bx_step, SECTOR_WORDS);
    dist = convolve_residues(&dist, &residue_histogram(grid_y, p.by_step, SECTOR_WORDS));
    for l in &p.loops {
        dist = convolve_residues(&dist, &residue_histogram(l.trip, l.step, SECTOR_WORDS));
    }

    // Shift lanes into non-negative territory by a whole number of
    // sectors so byte addresses stay unsigned (footprint-preserving).
    let min_lane = p.lanes.iter().flatten().copied().min().unwrap_or(0);
    let off = if min_lane < 0 {
        (-min_lane + SECTOR_WORDS as i64 - 1) / SECTOR_WORDS as i64 * SECTOR_WORDS as i64
    } else {
        0
    };
    let bytes = access_bytes(p);
    let mut total = 0u64;
    for (r, &n) in dist.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let addrs: [Option<u64>; 32] =
            std::array::from_fn(|l| p.lanes[l].map(|i| ((i + off + r as i64) * 4) as u64));
        let mut buf = [0u64; coalesce::MAX_SECTORS_PER_WARP * 2];
        let sectors = coalesce::warp_sectors(&addrs, bytes, SECTOR_BYTES, &mut buf).len() as u64;
        total += n * sectors;
    }

    let active = p.lanes.iter().flatten().count() as u64;
    let per_issue_floor = (active * u64::from(bytes))
        .div_ceil(u64::from(SECTOR_BYTES))
        .max(1);
    (total, per_issue_floor * p.issues_per_launch(grid_x, grid_y))
}

/// Runs every static check against `kernel`'s declared affine `spec`
/// without executing or replaying a single block. Callers are
/// responsible for the affinity gate — use [`lint_kernel_hybrid`] for
/// the spec-or-fallback entry.
#[must_use]
pub fn analyze_spec(
    dev: &DeviceConfig,
    kernel: &dyn Kernel,
    spec: &AccessSpec,
) -> (Report, KernelStatic) {
    let name = kernel.name();
    let budget = kernel.analysis_budget();
    let lc = kernel.launch_config();
    let (gx, gy) = (u64::from(lc.grid.x), u64::from(lc.grid.y));
    let mut findings = Vec::new();
    findings.extend(checks::buffer_overlap(&name, &budget));
    findings.extend(checks::occupancy_budget(dev, kernel));

    // Shared-memory bank conflicts, one word-phase at a time through
    // the same hardware model the dynamic lint replays traces into.
    let mut conflict_hist = vec![0u64; NUM_BANKS as usize + 1];
    let mut max_degree = 0u32;
    let mut violations = 0u64;
    let mut worst_over = 0u32;
    for s in &spec.shared {
        for j in 0..s.vlen.words() {
            let phase: [Option<u32>; 32] = std::array::from_fn(|l| s.lanes[l].map(|w| w + j));
            let degree = conflict_degree(&phase, NUM_BANKS);
            conflict_hist[degree as usize] += s.issues;
            max_degree = max_degree.max(degree);
            if degree > budget.smem_conflict_budget {
                violations += s.issues;
                worst_over = worst_over.max(degree);
            }
        }
    }
    if violations > 0 {
        findings.push(Finding {
            kernel: name.clone(),
            kind: FindingKind::BankConflict,
            block: None,
            count: 1,
            detail: format!(
                "proved {violations} access phase(s)/block over the declared budget of {}; worst \
                 is {worst_over}-way extra conflict",
                budget.smem_conflict_budget
            ),
        });
    }

    // Bounds proofs over the index hull. Mirrors the dynamic
    // convention: no declared buffers = bounds checking skipped.
    if !budget.buffers.is_empty() {
        let decls: HashMap<_, &BufferUse> = budget.buffers.iter().map(|b| (b.buf, b)).collect();
        for g in &spec.global {
            let Some(decl) = decls.get(&g.buf) else {
                findings.push(Finding {
                    kernel: name.clone(),
                    kind: FindingKind::OutOfBounds,
                    block: None,
                    count: 1,
                    detail: format!(
                        "pattern '{}' touches undeclared buffer {:?}",
                        g.label, g.buf
                    ),
                });
                continue;
            };
            if g.dir.is_write() && !decl.writes {
                findings.push(Finding {
                    kernel: name.clone(),
                    kind: FindingKind::OutOfBounds,
                    block: None,
                    count: 1,
                    detail: format!(
                        "pattern '{}' writes read-only buffer '{}'",
                        g.label, decl.label
                    ),
                });
            }
            if let Some((lo, hi)) = g.index_range(gx, gy) {
                let last = hi + i64::from(g.vlen.words());
                if lo < 0 || last > decl.len as i64 {
                    findings.push(Finding {
                        kernel: name.clone(),
                        kind: FindingKind::OutOfBounds,
                        block: None,
                        count: 1,
                        detail: format!(
                            "pattern '{}' index hull [{lo}, {last}) escapes '{}' extent {}",
                            g.label, decl.label, decl.len
                        ),
                    });
                }
            }
        }
    }

    // Barrier shape: every declared barrier must involve the whole
    // block (partial barriers deadlock real hardware).
    if let Some(b) = spec.barriers {
        let warps = lc.warps_per_block();
        if b.warps != warps {
            findings.push(Finding {
                kernel: name.clone(),
                kind: FindingKind::BarrierDivergence,
                block: None,
                count: 1,
                detail: format!(
                    "spec declares {} warp(s) per barrier, block has {warps}",
                    b.warps
                ),
            });
        }
    }

    // Launch-total sector prediction + coalescing summaries.
    let mut predicted = SectorPrediction::default();
    let mut coalescing = Vec::with_capacity(spec.global.len());
    for g in &spec.global {
        let (sectors, ideal) = pattern_sectors(g, gx, gy);
        match g.dir {
            AccessDir::Read => predicted.read_sectors += sectors,
            AccessDir::Write => predicted.write_sectors += sectors,
            AccessDir::Atomic => predicted.atomic_sectors += sectors,
        }
        coalescing.push(PatternCoalescing {
            label: g.label.to_string(),
            dir: dir_str(g.dir),
            issues: g.issues_per_launch(gx, gy),
            sectors,
            ideal_sectors: ideal,
        });
    }

    (
        Report {
            findings,
            checked: vec![name.clone()],
        },
        KernelStatic {
            kernel: name,
            mode: LintMode::Static,
            max_conflict_degree: max_degree,
            conflict_hist,
            predicted: Some(predicted),
            coalescing,
        },
    )
}

fn downgrade(
    dev: &DeviceConfig,
    kernel: &dyn Kernel,
    mem: &GlobalMem,
    reason: &str,
) -> (Report, KernelStatic) {
    let report = runner::lint_kernel(dev, kernel, mem);
    (
        report,
        KernelStatic {
            kernel: kernel.name(),
            mode: LintMode::Dynamic(reason.to_string()),
            max_conflict_degree: 0,
            conflict_hist: Vec::new(),
            predicted: None,
            coalescing: Vec::new(),
        },
    )
}

/// Static-or-fallback lint for one kernel: proves everything from the
/// declared spec when it exists and is affine, otherwise downgrades
/// honestly to the dynamic trace-based lint (see the module docs).
#[must_use]
pub fn lint_kernel_hybrid(
    dev: &DeviceConfig,
    kernel: &dyn Kernel,
    mem: &GlobalMem,
) -> (Report, KernelStatic) {
    match kernel.access_spec() {
        Some(spec) if spec.is_affine() => analyze_spec(dev, kernel, &spec),
        Some(_) => downgrade(dev, kernel, mem, "non-affine (indirect) access pattern"),
        None => downgrade(dev, kernel, mem, "no access spec declared"),
    }
}

/// The result of statically linting a whole registry.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StaticOutcome {
    /// Merged findings (deduplicated).
    pub report: Report,
    /// Per-kernel static summaries, in registry order.
    pub kernels: Vec<KernelStatic>,
}

impl StaticOutcome {
    /// Names of kernels that were downgraded to the dynamic lint.
    #[must_use]
    pub fn downgraded(&self) -> Vec<&str> {
        self.kernels
            .iter()
            .filter(|k| !k.mode.is_static())
            .map(|k| k.kernel.as_str())
            .collect()
    }

    /// Machine-readable export (pretty-printed JSON): the merged
    /// report plus every per-kernel static summary.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("static outcome serialises")
    }

    /// Renders the per-kernel summary as an aligned text table.
    #[must_use]
    pub fn summary_table(&self) -> String {
        let rows: Vec<[String; 5]> = self
            .kernels
            .iter()
            .map(|k| {
                let (mode, conflict, sectors) = match (&k.mode, k.predicted) {
                    (LintMode::Static, Some(p)) => (
                        "static".to_string(),
                        k.max_conflict_degree.to_string(),
                        format!(
                            "{}r+{}w+{}a",
                            p.read_sectors, p.write_sectors, p.atomic_sectors
                        ),
                    ),
                    _ => {
                        let reason = match &k.mode {
                            LintMode::Dynamic(r) => r.clone(),
                            LintMode::Static => String::new(),
                        };
                        (format!("dynamic ({reason})"), "-".into(), "-".into())
                    }
                };
                let issues: u64 = k.coalescing.iter().map(|c| c.issues).sum();
                [
                    k.kernel.clone(),
                    mode,
                    conflict,
                    sectors,
                    issues.to_string(),
                ]
            })
            .collect();
        let header = [
            "KERNEL",
            "MODE",
            "CONFLICT",
            "SECTORS(LAUNCH)",
            "GLOBAL ISSUES",
        ];
        let width = |c: usize| {
            rows.iter()
                .map(|r| r[c].len())
                .chain(std::iter::once(header[c].len()))
                .max()
                .unwrap_or(0)
        };
        let w: Vec<usize> = (0..5).map(width).collect();
        let mut out = String::new();
        let fmt_row = |r: [&str; 5]| {
            format!(
                "{:<w0$}  {:<w1$}  {:>w2$}  {:>w3$}  {:>w4$}\n",
                r[0],
                r[1],
                r[2],
                r[3],
                r[4],
                w0 = w[0],
                w1 = w[1],
                w2 = w[2],
                w3 = w[3],
                w4 = w[4]
            )
        };
        out.push_str(&fmt_row([
            header[0], header[1], header[2], header[3], header[4],
        ]));
        for r in &rows {
            out.push_str(&fmt_row([&r[0], &r[1], &r[2], &r[3], &r[4]]));
        }
        out
    }
}

/// Statically lints every shipped probe (the `ksum lint --static`
/// entry): spec-proved where possible, trace-downgraded where not,
/// with one merged, deduplicated report.
#[must_use]
pub fn lint_report_static(dev: &DeviceConfig) -> StaticOutcome {
    let mut report = Report::default();
    let mut kernels = Vec::new();
    for probe in runner::shipped_probes() {
        let (mut r, mut s) = lint_kernel_hybrid(dev, probe.kernel.as_ref(), &probe.mem);
        r.checked = vec![probe.name.to_string()];
        for f in &mut r.findings {
            f.kernel = probe.name.to_string();
        }
        s.kernel = probe.name.to_string();
        report.merge(r);
        kernels.push(s);
    }
    report.dedup();
    StaticOutcome { report, kernels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::access::affine_lanes;
    use ks_gpu_sim::kernel::VecWidth;

    fn probe_pattern(lanes: [Option<i64>; 32], vlen: VecWidth) -> GlobalPattern {
        let mut mem = GlobalMem::new();
        let buf = mem.alloc_virtual(1 << 20);
        GlobalPattern::new(buf, "t", AccessDir::Read, vlen, lanes)
    }

    #[test]
    fn coalesced_v4_pattern_is_four_sectors_per_issue() {
        // 32 lanes × float4 = 512 contiguous bytes = 16 sectors.
        let p = probe_pattern(affine_lanes(|l| 4 * l as i64), VecWidth::V4).with_bx(128);
        let (sectors, ideal) = pattern_sectors(&p, 5, 1);
        assert_eq!(sectors, 5 * 16);
        assert_eq!(ideal, 5 * 16);
    }

    #[test]
    fn odd_shift_splits_sectors() {
        // A unit-stride scalar warp normally touches 4 sectors; shifted
        // by a non-sector-multiple it straddles 5.
        let p = probe_pattern(affine_lanes(|l| l as i64), VecWidth::V1).with_bx(3);
        let (sectors, _) = pattern_sectors(&p, 2, 1);
        assert_eq!(sectors, 4 + 5);
    }

    #[test]
    fn broadcast_pattern_hits_one_sector() {
        let p = probe_pattern(affine_lanes(|_| 0), VecWidth::V1).with_loop(7, 8);
        let (sectors, ideal) = pattern_sectors(&p, 1, 1);
        assert_eq!(sectors, 7);
        // The floor is defined on active lanes (32 × 4 B = 4 sectors
        // per issue), so overlapping broadcasts beat it.
        assert_eq!(ideal, 7 * 4);
    }

    #[test]
    fn negative_loop_steps_stay_exact() {
        let p = probe_pattern(affine_lanes(|l| l as i64), VecWidth::V1).with_loop(3, -8);
        let (sectors, _) = pattern_sectors(&p, 1, 1);
        assert_eq!(sectors, 3 * 4);
    }
}
