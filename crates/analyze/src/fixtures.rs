//! Seeded-broken kernels used to prove the detectors actually fire.
//!
//! Shipping a race detector that has only ever been run on correct
//! kernels proves nothing, so this module deliberately re-creates the
//! two §III bug classes the paper's design rules out:
//!
//! * [`BrokenFusedGemm`] — the double-buffered GEMM pipeline with one
//!   `__syncthreads()` swallowed ([`DropNthSync`]), merging a load
//!   epoch into the preceding compute epoch: a read-write race.
//! * [`Stride16Kernel`] — a stride-16 shared-memory placement, the
//!   layout pathology Fig. 5's swizzle exists to prevent: 16-way bank
//!   conflicts against a declared budget of zero.

use ks_gpu_sim::access::{affine_lanes, AccessSpec, GlobalPattern, SharedPattern};
use ks_gpu_sim::buffer::{BufId, GlobalMem};
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::{AnalysisBudget, BufferUse, Kernel, KernelResources, VecWidth};
use ks_gpu_sim::trace::AccessDir;
use ks_gpu_sim::traffic::{TrafficSink, WarpIdx};

use crate::runner::Probe;

use ks_gpu_kernels::gemm_engine::{self, AccGrid, GemmOperands, GemmShape, SmemMap};
use ks_gpu_kernels::layout::SmemLayout;
use ks_gpu_kernels::machine::{FunctionalMachine, TrafficMachine, WarpMachine};
use ks_gpu_kernels::sgemm::GEMM_REGS_PER_THREAD;
use ks_gpu_kernels::TileGeometry;

/// Warp-machine wrapper that forwards everything except the `nth`
/// `syncthreads` (0-based), which it silently swallows — the
/// trace-level model of deleting one barrier from a kernel.
pub struct DropNthSync<M> {
    inner: M,
    nth: usize,
    seen: usize,
}

impl<M> DropNthSync<M> {
    /// Wraps `inner`, dropping barrier number `nth`.
    pub fn new(inner: M, nth: usize) -> Self {
        Self {
            inner,
            nth,
            seen: 0,
        }
    }
}

impl<M: WarpMachine> WarpMachine for DropNthSync<M> {
    const FUNCTIONAL: bool = M::FUNCTIONAL;

    fn begin_warp(&mut self, warp: u32) {
        self.inner.begin_warp(warp);
    }
    fn ld_global(&mut self, buf: BufId, idx: &WarpIdx, vlen: VecWidth) -> [[f32; 4]; 32] {
        self.inner.ld_global(buf, idx, vlen)
    }
    fn st_global(&mut self, buf: BufId, idx: &WarpIdx, vlen: VecWidth, vals: &[[f32; 4]; 32]) {
        self.inner.st_global(buf, idx, vlen, vals);
    }
    fn atomic_add(&mut self, buf: BufId, idx: &WarpIdx, vals: &[f32; 32]) {
        self.inner.atomic_add(buf, idx, vals);
    }
    fn ld_shared(&mut self, word: &[Option<u32>; 32], vlen: VecWidth) -> [[f32; 4]; 32] {
        self.inner.ld_shared(word, vlen)
    }
    fn st_shared(&mut self, word: &[Option<u32>; 32], vlen: VecWidth, vals: &[[f32; 4]; 32]) {
        self.inner.st_shared(word, vlen, vals);
    }
    fn ffma(&mut self, n: u64) {
        self.inner.ffma(n);
    }
    fn falu(&mut self, n: u64) {
        self.inner.falu(n);
    }
    fn alu(&mut self, n: u64) {
        self.inner.alu(n);
    }
    fn sfu(&mut self, n: u64) {
        self.inner.sfu(n);
    }
    fn syncthreads(&mut self, warps: u64) {
        let idx = self.seen;
        self.seen += 1;
        if idx == self.nth {
            return;
        }
        self.inner.syncthreads(warps);
    }
}

/// The shared double-buffered GEMM block with barrier `drop_sync`
/// removed. Dropping barrier 0 (after the prologue load) lets the
/// tile-1 loads and the tile-0 compute share one epoch: the loader
/// warps' stores race with every warp's reads of the *other* buffer
/// only at the barrier — and with their own buffer immediately.
pub struct BrokenFusedGemm {
    ops: GemmOperands,
    shape: GemmShape,
    /// Which `syncthreads` to drop (0-based).
    pub drop_sync: usize,
}

impl BrokenFusedGemm {
    /// Creates the fixture.
    #[must_use]
    pub fn new(ops: GemmOperands, shape: GemmShape, drop_sync: usize) -> Self {
        shape.validate();
        Self {
            ops,
            shape,
            drop_sync,
        }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: M, acc: &mut AccGrid) {
        let mut broken = DropNthSync::new(mach, self.drop_sync);
        gemm_engine::gemm_block(
            &mut broken,
            &TileGeometry::paper_default(),
            &self.ops,
            &self.shape,
            SmemLayout::Swizzled,
            block.x as usize,
            block.y as usize,
            acc,
        );
    }
}

impl Kernel for BrokenFusedGemm {
    fn name(&self) -> String {
        format!("broken_fused_drop_sync{}", self.drop_sync)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(self.shape.grid(), (16u32, 16u32))
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 256,
            regs_per_thread: GEMM_REGS_PER_THREAD,
            smem_bytes_per_block: SmemMap::new(true).bytes(),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        let mut acc = AccGrid::for_geometry(&TileGeometry::paper_default());
        self.body(block, FunctionalMachine::new(ctx), &mut acc);
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        let mut acc = AccGrid::empty(&TileGeometry::paper_default());
        self.body(block, TrafficMachine::new(sink), &mut acc);
    }
}

/// A kernel staging data with a stride-16 shared layout: lane `l` of
/// every warp touches word `warp·512 + 16·l`, hitting only banks 0 and
/// 16 — a 16-way conflict on every access, against the default budget
/// of zero.
pub struct Stride16Kernel {
    buf: BufId,
    n: usize,
}

impl Stride16Kernel {
    /// Creates the fixture over a buffer of `n >= 2048` elements.
    #[must_use]
    pub fn new(buf: BufId, n: usize) -> Self {
        assert!(n >= 2048, "need at least one element per thread");
        Self { buf, n }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        for w in 0..8u32 {
            mach.begin_warp(w);
            let idx: WarpIdx =
                std::array::from_fn(|l| Some(block.x as usize * 2048 + w as usize * 32 + l));
            let v = mach.ld_global(self.buf, &idx, VecWidth::V1);
            // Disjoint words per warp (no races) but stride 16 within
            // the warp: banks (512w + 16l) mod 32 ∈ {0, 16}.
            let words: [Option<u32>; 32] = std::array::from_fn(|l| Some(w * 512 + 16 * l as u32));
            mach.st_shared(&words, VecWidth::V1, &v);
            let _ = mach.ld_shared(&words, VecWidth::V1);
        }
    }
}

impl Kernel for Stride16Kernel {
    fn name(&self) -> String {
        "stride16_smem".to_string()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n / 2048) as u32, 256u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 256,
            regs_per_thread: 16,
            smem_bytes_per_block: 8 * 512 * 4,
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let mut spec = AccessSpec::default();
        for w in 0..8u32 {
            spec.global.push(
                GlobalPattern::new(
                    self.buf,
                    "data",
                    AccessDir::Read,
                    VecWidth::V1,
                    affine_lanes(|l| i64::from(w) * 32 + l as i64),
                )
                .with_bx(2048),
            );
            let words: [Option<u32>; 32] = std::array::from_fn(|l| Some(w * 512 + 16 * l as u32));
            spec.shared
                .push(SharedPattern::new(words, VecWidth::V1, AccessDir::Write));
            spec.shared
                .push(SharedPattern::new(words, VecWidth::V1, AccessDir::Read));
        }
        Some(spec)
    }
}

/// A kernel whose access pattern provably escapes its declared buffer
/// extent: each block reads 256 contiguous elements, but the declared
/// [`BufferUse`] extent is 64 elements short of what the grid covers.
/// Both the static bounds proof (index hull vs extent) and the dynamic
/// trace check (observed indices vs extent) must flag it.
pub struct OverrunKernel {
    buf: BufId,
    n: usize,
}

impl OverrunKernel {
    /// Creates the fixture over a buffer of `n` elements (a multiple
    /// of 256, at least 512 so the overrunning block is traced).
    #[must_use]
    pub fn new(buf: BufId, n: usize) -> Self {
        assert!(n >= 512 && n.is_multiple_of(256), "need a multi-block grid");
        Self { buf, n }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        for w in 0..8usize {
            mach.begin_warp(w as u32);
            let idx: WarpIdx = std::array::from_fn(|l| Some(block.x as usize * 256 + w * 32 + l));
            let _ = mach.ld_global(self.buf, &idx, VecWidth::V1);
        }
    }
}

impl Kernel for OverrunKernel {
    fn name(&self) -> String {
        "overrun_reader".to_string()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n / 256) as u32, 256u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 256,
            regs_per_thread: 16,
            smem_bytes_per_block: 0,
        }
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        AnalysisBudget {
            buffers: vec![BufferUse {
                buf: self.buf,
                len: self.n - 64,
                writes: false,
                label: "data",
            }],
            ..AnalysisBudget::default()
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let mut spec = AccessSpec::default();
        for w in 0..8usize {
            spec.global.push(
                GlobalPattern::new(
                    self.buf,
                    "data",
                    AccessDir::Read,
                    VecWidth::V1,
                    affine_lanes(|l| (w * 32 + l) as i64),
                )
                .with_bx(256),
            );
        }
        Some(spec)
    }
}

/// Static-only fixture with a genuinely data-dependent gather (a
/// modular permutation the affine IR cannot express). Its spec
/// honestly marks the pattern [`GlobalPattern::indirect`], which must
/// force the analyzer's downgrade to the dynamic lint — never a
/// silent static pass.
pub struct IndirectGatherKernel {
    buf: BufId,
    n: usize,
}

impl IndirectGatherKernel {
    /// Creates the fixture over a buffer of `n >= 256` elements.
    #[must_use]
    pub fn new(buf: BufId, n: usize) -> Self {
        assert!(n >= 256, "need one element per thread");
        Self { buf, n }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        for w in 0..4usize {
            mach.begin_warp(w as u32);
            // In-bounds but non-affine: a stride-37 modular walk.
            let idx: WarpIdx = std::array::from_fn(|l| {
                Some((block.x as usize * 128 + (w * 32 + l) * 37) % self.n)
            });
            let _ = mach.ld_global(self.buf, &idx, VecWidth::V1);
        }
    }
}

impl Kernel for IndirectGatherKernel {
    fn name(&self) -> String {
        "indirect_gather".to_string()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(2u32, 128u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 128,
            regs_per_thread: 16,
            smem_bytes_per_block: 0,
        }
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        AnalysisBudget {
            buffers: vec![BufferUse {
                buf: self.buf,
                len: self.n,
                writes: false,
                label: "data",
            }],
            ..AnalysisBudget::default()
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let mut spec = AccessSpec::default();
        // The lane values here are placeholders; `indirect` tells the
        // analyzer not to trust them.
        spec.global.push(
            GlobalPattern::new(
                self.buf,
                "data",
                AccessDir::Read,
                VecWidth::V1,
                affine_lanes(|l| l as i64),
            )
            .into_indirect(),
        );
        Some(spec)
    }
}

/// The fixture registry: deliberately broken (or deliberately
/// unprovable) kernels on probe-sized problems, in the same [`Probe`]
/// shape as [`crate::runner::shipped_probes`]. CI lints these
/// expecting findings — a detector that has only ever seen clean
/// kernels proves nothing.
#[must_use]
pub fn fixture_probes() -> Vec<Probe> {
    let mut probes = Vec::new();
    {
        let mut mem = GlobalMem::new();
        let buf = mem.alloc_virtual(4096);
        probes.push(Probe {
            name: "fixture_stride16",
            mem,
            kernel: Box::new(Stride16Kernel::new(buf, 4096)),
        });
    }
    {
        let mut mem = GlobalMem::new();
        let buf = mem.alloc_virtual(512);
        probes.push(Probe {
            name: "fixture_overrun",
            mem,
            kernel: Box::new(OverrunKernel::new(buf, 512)),
        });
    }
    {
        let mut mem = GlobalMem::new();
        let buf = mem.alloc_virtual(1024);
        probes.push(Probe {
            name: "fixture_indirect",
            mem,
            kernel: Box::new(IndirectGatherKernel::new(buf, 1024)),
        });
    }
    probes
}
