//! Differential validation: every static verdict cross-checked
//! against the dynamic machinery it claims to replace.
//!
//! The static pass (`crate::static_`) derives bank-conflict degrees,
//! launch-total DRAM sectors, and barrier shapes from declared
//! [`ks_gpu_sim::access::AccessSpec`]s alone. Specs are claims, so
//! this module replays each probe the *old* way and demands exact
//! agreement:
//!
//! * **Sectors** — the whole grid is replayed through a Full-mode
//!   [`TrafficSink`] (no L1s; L2 sector counters are cache-state
//!   independent) and the launch totals must equal the static
//!   prediction **exactly**, counter by counter.
//! * **Bank conflicts** — each traced block's shared accesses are
//!   expanded phase-by-phase into a conflict-degree histogram, which
//!   must equal the spec-derived histogram **exactly** (the Fig. 5
//!   numbers — fused 0, naive layout 3 — fall out of this).
//! * **Barriers** — each traced block's barrier count and per-barrier
//!   warp count must match the declared
//!   [`ks_gpu_sim::access::BarrierSpec`].
//!
//! Kernels the static pass downgrades (no spec / non-affine) are
//! reported as `n/a` rather than silently passing — the agreement
//! table shows exactly which kernels are proved and which are merely
//! replayed.

use ks_gpu_sim::buffer::GlobalMem;
use ks_gpu_sim::cache::Cache;
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::kernel::Kernel;
use ks_gpu_sim::profiler::Counters;
use ks_gpu_sim::smem::conflict_degree;
use ks_gpu_sim::traffic::TrafficSink;

use crate::runner::{self, MAX_TRACED_BLOCKS};
use crate::static_::{analyze_spec, LintMode, SectorPrediction};

/// Agreement record for one probe.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ProbeAgreement {
    /// Probe registry name.
    pub probe: String,
    /// How the static pass handled the kernel.
    pub mode: LintMode,
    /// Static launch-total sector prediction (`None` when downgraded).
    pub static_sectors: Option<SectorPrediction>,
    /// Replayed launch-total sectors (ground truth).
    pub replay_sectors: SectorPrediction,
    /// Static == replay, counter by counter.
    pub sectors_agree: bool,
    /// Spec-derived conflict-degree histogram == per-block trace
    /// histogram for every traced block.
    pub conflicts_agree: bool,
    /// Declared barrier count/warps == every traced block's barriers.
    pub barriers_agree: bool,
    /// Human-readable mismatch details (empty when all agree).
    pub notes: Vec<String>,
}

impl ProbeAgreement {
    /// True when every applicable cross-check passed.
    #[must_use]
    pub fn agrees(&self) -> bool {
        self.sectors_agree && self.conflicts_agree && self.barriers_agree
    }
}

/// Agreement records for a whole registry.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct AgreementReport {
    /// One record per probe, in registry order.
    pub probes: Vec<ProbeAgreement>,
}

impl AgreementReport {
    /// True when every probe's static verdicts match the replay.
    #[must_use]
    pub fn all_agree(&self) -> bool {
        self.probes.iter().all(ProbeAgreement::agrees)
    }

    /// Probes whose static verdicts disagreed with the replay.
    #[must_use]
    pub fn disagreements(&self) -> Vec<&ProbeAgreement> {
        self.probes.iter().filter(|p| !p.agrees()).collect()
    }

    /// Machine-readable export (pretty-printed JSON), for the CI
    /// agreement artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("agreement report serialises")
    }

    /// Renders the agreement matrix as an aligned text table.
    #[must_use]
    pub fn table(&self) -> String {
        let mark = |applicable: bool, ok: bool| match (applicable, ok) {
            (false, _) => "n/a",
            (true, true) => "ok",
            (true, false) => "MISMATCH",
        };
        let rows: Vec<[String; 5]> = self
            .probes
            .iter()
            .map(|p| {
                let is_static = p.mode.is_static();
                [
                    p.probe.clone(),
                    if is_static { "static" } else { "dynamic" }.to_string(),
                    mark(is_static, p.sectors_agree).to_string(),
                    mark(is_static, p.conflicts_agree).to_string(),
                    mark(is_static, p.barriers_agree).to_string(),
                ]
            })
            .collect();
        let header = ["PROBE", "MODE", "SECTORS", "CONFLICTS", "BARRIERS"];
        let width = |c: usize| {
            rows.iter()
                .map(|r| r[c].len())
                .chain(std::iter::once(header[c].len()))
                .max()
                .unwrap_or(0)
        };
        let w: Vec<usize> = (0..5).map(width).collect();
        let fmt_row = |r: [&str; 5]| {
            format!(
                "{:<a$}  {:<b$}  {:<c$}  {:<d$}  {:<e$}\n",
                r[0],
                r[1],
                r[2],
                r[3],
                r[4],
                a = w[0],
                b = w[1],
                c = w[2],
                d = w[3],
                e = w[4]
            )
        };
        let mut out = fmt_row([header[0], header[1], header[2], header[3], header[4]]);
        for r in &rows {
            out.push_str(&fmt_row([&r[0], &r[1], &r[2], &r[3], &r[4]]));
        }
        for p in self.disagreements() {
            for n in &p.notes {
                out.push_str(&format!("  {}: {}\n", p.probe, n));
            }
        }
        out
    }
}

/// Replays every block of the launch through a Full-mode traffic sink
/// and returns the accumulated counters. Sector counters are
/// independent of L2 cache state (they count sectors *reaching* L2,
/// not misses), so this is exact ground truth for the static
/// prediction.
#[must_use]
pub fn replay_counters(kernel: &dyn Kernel, mem: &GlobalMem) -> Counters {
    let lc = kernel.launch_config();
    let mut l2 = Cache::new(64 * 1024, 16, 32);
    let mut sink = TrafficSink::new(mem, &mut l2, 32, 32);
    for block in lc.grid.iter_indices() {
        sink.begin_block(block.linear_in(lc.grid));
        kernel.block_traffic(block, &mut sink);
    }
    sink.counters
}

fn not_applicable(name: &str, reason: &str, replay_sectors: SectorPrediction) -> ProbeAgreement {
    ProbeAgreement {
        probe: name.to_string(),
        mode: LintMode::Dynamic(reason.to_string()),
        static_sectors: None,
        replay_sectors,
        sectors_agree: true,
        conflicts_agree: true,
        barriers_agree: true,
        notes: vec!["static pass not applicable (downgraded)".into()],
    }
}

/// Cross-checks one kernel's static verdicts against replay + traces.
#[must_use]
pub fn validate_probe(
    dev: &DeviceConfig,
    name: &str,
    kernel: &dyn Kernel,
    mem: &GlobalMem,
) -> ProbeAgreement {
    let counters = replay_counters(kernel, mem);
    let replay_sectors = SectorPrediction {
        read_sectors: counters.l2_read_sectors,
        write_sectors: counters.l2_write_sectors,
        atomic_sectors: counters.atomic_sectors,
    };

    let spec = match kernel.access_spec() {
        Some(s) if s.is_affine() => s,
        Some(_) => {
            return not_applicable(name, "non-affine (indirect) access pattern", replay_sectors)
        }
        None => return not_applicable(name, "no access spec declared", replay_sectors),
    };

    let mut notes = Vec::new();

    // The sector prediction drops allocation bases; that is exact only
    // because every base is sector-aligned. Verify the precondition
    // instead of assuming it.
    for g in &spec.global {
        let base = mem.addr_of(g.buf, 0);
        if !base.is_multiple_of(32) {
            notes.push(format!(
                "buffer '{}' base {base} not sector-aligned; prediction unsound",
                g.label
            ));
        }
    }

    let (_, ks) = analyze_spec(dev, kernel, &spec);
    let static_sectors = ks.predicted;
    let mut sectors_agree = notes.is_empty();
    if static_sectors != Some(replay_sectors) {
        sectors_agree = false;
        notes.push(format!(
            "sectors: static {static_sectors:?} vs replay {replay_sectors:?}"
        ));
    }

    let mut conflicts_agree = true;
    let mut barriers_agree = true;
    let traces = runner::record_traces(kernel, mem, MAX_TRACED_BLOCKS);
    for t in &traces {
        let mut hist = vec![0u64; ks.conflict_hist.len()];
        for a in &t.shared {
            for j in 0..a.vlen {
                let phase: [Option<u32>; 32] = std::array::from_fn(|l| a.words[l].map(|w| w + j));
                hist[conflict_degree(&phase, 32) as usize] += 1;
            }
        }
        if hist != ks.conflict_hist {
            conflicts_agree = false;
            let diff: Vec<String> = hist
                .iter()
                .zip(&ks.conflict_hist)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(d, (a, b))| format!("degree {d}: trace {a} vs static {b}"))
                .collect();
            notes.push(format!(
                "conflict histogram mismatch in block {}: {}",
                t.block,
                diff.join(", ")
            ));
        }
        match spec.barriers {
            Some(b) => {
                if t.barriers.len() as u64 != b.count {
                    barriers_agree = false;
                    notes.push(format!(
                        "block {}: {} barrier(s) traced, spec declares {}",
                        t.block,
                        t.barriers.len(),
                        b.count
                    ));
                }
                if let Some(e) = t.barriers.iter().find(|e| e.warps != b.warps) {
                    barriers_agree = false;
                    notes.push(format!(
                        "block {}: barrier reached by {} warp(s), spec declares {}",
                        t.block, e.warps, b.warps
                    ));
                }
            }
            None => {
                if !t.barriers.is_empty() {
                    barriers_agree = false;
                    notes.push(format!(
                        "block {}: {} barrier(s) traced, spec declares none",
                        t.block,
                        t.barriers.len()
                    ));
                }
            }
        }
    }

    ProbeAgreement {
        probe: name.to_string(),
        mode: LintMode::Static,
        static_sectors,
        replay_sectors,
        sectors_agree,
        conflicts_agree,
        barriers_agree,
        notes,
    }
}

/// Runs the differential validation over the whole shipped-probe
/// registry plus the lint fixtures.
#[must_use]
pub fn differential_report(dev: &DeviceConfig) -> AgreementReport {
    let mut probes = runner::shipped_probes();
    probes.extend(crate::fixtures::fixture_probes());
    AgreementReport {
        probes: probes
            .iter()
            .map(|p| validate_probe(dev, p.name, p.kernel.as_ref(), &p.mem))
            .collect(),
    }
}
