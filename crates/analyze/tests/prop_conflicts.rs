//! Property tests of the bank-conflict model the lint is built on,
//! plus the Fig. 5 regression: the shipped fused kernel's recorded
//! shared traffic is conflict-free phase by phase.

use ks_analyze::{record_traces, shipped_probes};
use ks_gpu_sim::smem::conflict_degree;
use proptest::prelude::*;

fn warp_words() -> impl Strategy<Value = [Option<u32>; 32]> {
    proptest::collection::vec(proptest::option::of(0u32..4096), 32)
        .prop_map(|v| std::array::from_fn(|i| v[i]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn conflict_degree_is_invariant_under_lane_permutation(
        words in warp_words(),
        seed in 0u64..10_000,
    ) {
        // Which lane holds which word is irrelevant to banking: only
        // the multiset of words matters.
        let mut lanes: Vec<usize> = (0..32).collect();
        let mut state = seed | 1;
        for i in (1..32usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            lanes.swap(i, j);
        }
        let permuted: [Option<u32>; 32] = std::array::from_fn(|i| words[lanes[i]]);
        prop_assert_eq!(
            conflict_degree(&words, 32),
            conflict_degree(&permuted, 32)
        );
    }

    #[test]
    fn odd_strides_are_conflict_free(
        half_stride in 0u32..64,
        base in 0u32..1024,
    ) {
        // Any stride coprime to the 32 banks — i.e. any odd stride —
        // maps the 32 lanes onto 32 distinct banks.
        let stride = 2 * half_stride + 1;
        let words: [Option<u32>; 32] =
            std::array::from_fn(|l| Some(base + l as u32 * stride));
        prop_assert_eq!(conflict_degree(&words, 32), 0);
    }

    #[test]
    fn even_strides_always_conflict(half_stride in 1u32..32, base in 0u32..1024) {
        // The converse: any non-zero even stride shares a factor with
        // 32 and must collide somewhere.
        let stride = 2 * half_stride;
        let words: [Option<u32>; 32] =
            std::array::from_fn(|l| Some(base + l as u32 * stride));
        prop_assert!(conflict_degree(&words, 32) >= 1);
    }
}

#[test]
fn fig5_fused_smem_traffic_is_conflict_free() {
    // Regression for the paper's Fig. 5 guarantee: the swizzled shared
    // layout of the real fused kernel produces zero bank conflicts in
    // every access phase of every recorded block.
    let probe = shipped_probes()
        .into_iter()
        .find(|p| p.name == "fused")
        .expect("fused probe registered");
    let traces = record_traces(probe.kernel.as_ref(), &probe.mem, 4);
    assert!(!traces.is_empty());
    let mut phases = 0u64;
    for t in &traces {
        assert!(!t.shared.is_empty(), "fused kernel must stage through SMEM");
        for a in &t.shared {
            for j in 0..a.vlen {
                let phase: [Option<u32>; 32] = std::array::from_fn(|l| a.words[l].map(|w| w + j));
                assert_eq!(
                    conflict_degree(&phase, 32),
                    0,
                    "conflict in warp {} epoch {} phase {j}",
                    a.warp,
                    a.epoch
                );
                phases += 1;
            }
        }
    }
    assert!(phases > 100, "suspiciously few phases checked: {phases}");
}
