//! End-to-end lint acceptance: every shipped kernel/variant is clean,
//! and the seeded-broken fixtures are flagged with the right finding
//! kinds.

use ks_analyze::fixtures::{BrokenFusedGemm, Stride16Kernel};
use ks_analyze::{lint_kernel, lint_report, FindingKind};
use ks_gpu_sim::buffer::GlobalMem;
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::{AnalysisBudget, BufferUse, Kernel, KernelResources};
use ks_gpu_sim::occupancy::OccupancyLimiter;
use ks_gpu_sim::traffic::TrafficSink;

use ks_gpu_kernels::gemm_engine::{GemmOperands, GemmShape};

#[test]
fn all_shipped_kernels_lint_clean() {
    let dev = DeviceConfig::gtx970();
    let report = lint_report(&dev);
    assert!(
        report.is_clean(),
        "shipped kernels must lint clean:\n{}",
        report.table()
    );
    // The registry actually covers the variants the paper ships.
    assert!(report.checked.len() >= 12, "{:?}", report.checked);
}

fn gemm_fixture_mem(shape: GemmShape) -> (GlobalMem, GemmOperands) {
    let mut mem = GlobalMem::new();
    let ops = GemmOperands {
        a: mem.alloc_virtual(shape.m * shape.k),
        b: mem.alloc_virtual(shape.k * shape.n),
    };
    (mem, ops)
}

#[test]
fn dropped_sync_is_flagged_as_shared_race() {
    let dev = DeviceConfig::gtx970();
    let shape = GemmShape {
        m: 256,
        n: 256,
        k: 16,
    };
    let (mem, ops) = gemm_fixture_mem(shape);
    let broken = BrokenFusedGemm::new(ops, shape, 0);
    let report = lint_kernel(&dev, &broken, &mem);
    assert!(!report.is_clean());
    let races = report.of_kind(FindingKind::SharedRace);
    assert!(!races.is_empty(), "expected a race:\n{}", report.table());
    // Dropping the prologue barrier merges the tile-0 loads into the
    // epoch where every warp reads them back: a read-write hazard.
    assert!(
        races.iter().any(|f| f.detail.contains("read-write")),
        "{}",
        report.table()
    );
}

#[test]
fn intact_gemm_engine_has_no_race_finding() {
    // Control: the same fixture with a sync index past the end drops
    // nothing and must be clean (drop_sync = 99 never fires).
    let dev = DeviceConfig::gtx970();
    let shape = GemmShape {
        m: 256,
        n: 256,
        k: 16,
    };
    let (mem, ops) = gemm_fixture_mem(shape);
    let intact = BrokenFusedGemm::new(ops, shape, 99);
    let report = lint_kernel(&dev, &intact, &mem);
    assert!(report.is_clean(), "{}", report.table());
}

#[test]
fn every_dropped_sync_position_races() {
    // Any single dropped barrier in the k=32 pipeline must produce a
    // race — there are no redundant barriers to remove.
    let dev = DeviceConfig::gtx970();
    let shape = GemmShape {
        m: 128,
        n: 128,
        k: 32,
    };
    for nth in 0..4 {
        let (mem, ops) = gemm_fixture_mem(shape);
        let broken = BrokenFusedGemm::new(ops, shape, nth);
        let report = lint_kernel(&dev, &broken, &mem);
        assert!(
            !report.of_kind(FindingKind::SharedRace).is_empty(),
            "dropping sync #{nth} went undetected"
        );
    }
}

#[test]
fn stride16_layout_is_flagged_as_bank_conflict() {
    let dev = DeviceConfig::gtx970();
    let mut mem = GlobalMem::new();
    let buf = mem.alloc_virtual(4096);
    let k = Stride16Kernel::new(buf, 4096);
    let report = lint_kernel(&dev, &k, &mem);
    let conflicts = report.of_kind(FindingKind::BankConflict);
    assert!(!conflicts.is_empty(), "{}", report.table());
    // Stride 16 over 32 banks: 16 transactions, degree 15.
    assert!(
        conflicts[0].detail.contains("15-way"),
        "{}",
        conflicts[0].detail
    );
    // The conflicts must be the only findings (no false races).
    assert_eq!(conflicts.len(), report.findings.len(), "{}", report.table());
}

/// Minimal hand-rolled kernel driving the sink directly, for the
/// checks the shipped kernels never trip.
struct RawKernel {
    budget: AnalysisBudget,
    drive: Box<dyn Fn(&mut TrafficSink) + Sync>,
}

impl Kernel for RawKernel {
    fn name(&self) -> String {
        "raw_fixture".to_string()
    }
    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(1u32, 256u32)
    }
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 256,
            regs_per_thread: 32,
            smem_bytes_per_block: 0,
        }
    }
    fn execute_block(&self, _: Dim3, _: &mut BlockCtx) {
        unreachable!("traffic-only fixture");
    }
    fn block_traffic(&self, _: Dim3, sink: &mut TrafficSink) {
        (self.drive)(sink);
    }
    fn analysis_budget(&self) -> AnalysisBudget {
        self.budget.clone()
    }
}

#[test]
fn partial_barrier_is_flagged_as_divergence() {
    let dev = DeviceConfig::gtx970();
    let mem = GlobalMem::new();
    let k = RawKernel {
        budget: AnalysisBudget::default(),
        drive: Box::new(|sink| sink.syncthreads(5)), // 8 warps in the block
    };
    let report = lint_kernel(&dev, &k, &mem);
    assert_eq!(report.of_kind(FindingKind::BarrierDivergence).len(), 1);
}

#[test]
fn out_of_bounds_access_is_flagged() {
    let dev = DeviceConfig::gtx970();
    let mut mem = GlobalMem::new();
    let buf = mem.alloc_virtual(64);
    let budget = AnalysisBudget {
        buffers: vec![BufferUse {
            buf,
            len: 32, // declared smaller than the allocation
            writes: false,
            label: "x",
        }],
        ..AnalysisBudget::default()
    };
    let k = RawKernel {
        budget,
        drive: Box::new(move |sink| {
            let idx: [Option<usize>; 32] = std::array::from_fn(|l| Some(l + 16));
            sink.global_read(buf, &idx, 1);
        }),
    };
    let report = lint_kernel(&dev, &k, &mem);
    let oob = report.of_kind(FindingKind::OutOfBounds);
    assert_eq!(oob.len(), 1, "{}", report.table());
    assert!(
        oob[0].detail.contains("past extent 32"),
        "{}",
        oob[0].detail
    );
}

#[test]
fn aliased_writable_roles_are_flagged_as_overlap() {
    let dev = DeviceConfig::gtx970();
    let mut mem = GlobalMem::new();
    let buf = mem.alloc_virtual(64);
    let budget = AnalysisBudget {
        buffers: vec![
            BufferUse {
                buf,
                len: 64,
                writes: false,
                label: "in",
            },
            BufferUse {
                buf,
                len: 64,
                writes: true,
                label: "out",
            },
        ],
        ..AnalysisBudget::default()
    };
    let k = RawKernel {
        budget,
        drive: Box::new(|_| {}),
    };
    let report = lint_kernel(&dev, &k, &mem);
    assert_eq!(report.of_kind(FindingKind::BufferOverlap).len(), 1);
}

#[test]
fn wrong_occupancy_expectation_is_flagged() {
    let dev = DeviceConfig::gtx970();
    let mem = GlobalMem::new();
    let k = RawKernel {
        budget: AnalysisBudget {
            expected_blocks_per_sm: Some(99),
            expected_limiter: Some(OccupancyLimiter::SharedMemory),
            ..AnalysisBudget::default()
        },
        drive: Box::new(|_| {}),
    };
    let report = lint_kernel(&dev, &k, &mem);
    // Both the blocks/SM count and the limiter disagree.
    assert_eq!(report.of_kind(FindingKind::OccupancyMismatch).len(), 2);
}
