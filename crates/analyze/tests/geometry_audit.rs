//! Lint-style guard (the geometry-literal audit satellite): the
//! analyzer must stay geometry-agnostic. Everything it knows about a
//! kernel's tiling comes from the kernel's declared access spec and
//! launch config — never from the paper-point constants, whose
//! reappearance here would mean a hardcoded 128/16/8 assumption crept
//! back in. Probe fixtures size themselves off
//! `TileGeometry::paper_default()` fields, which is explicit and
//! follows the geometry if the default ever moves.

#[test]
fn analyzer_sources_do_not_use_paper_point_constants() {
    let banned = [
        "BLOCK_TILE",
        "K_TILE",
        "MICRO_TILE",
        "THREADS_XY",
        "THREADS_PER_BLOCK",
        "WARPS_PER_BLOCK",
        "TILE_WORDS",
    ];
    for (name, src) in [
        ("checks.rs", include_str!("../src/checks.rs")),
        ("differential.rs", include_str!("../src/differential.rs")),
        ("fixtures.rs", include_str!("../src/fixtures.rs")),
        ("lib.rs", include_str!("../src/lib.rs")),
        ("report.rs", include_str!("../src/report.rs")),
        ("runner.rs", include_str!("../src/runner.rs")),
        ("static_.rs", include_str!("../src/static_.rs")),
    ] {
        for b in banned {
            assert!(
                !src.contains(b),
                "{name} references paper-point constant {b}; derive from \
                 TileGeometry or the kernel's access spec instead"
            );
        }
    }
}

/// The probes' geometry-derived sizing must still equal the paper
/// point (the goldens pin 128-row blocks); this fails loudly if the
/// default geometry drifts out from under the probe registry.
#[test]
fn probe_sizing_tracks_the_default_geometry() {
    let g = ks_gpu_kernels::TileGeometry::paper_default();
    assert_eq!(g.block_n, 128);
    assert_eq!(g.block_m, 128);
}
