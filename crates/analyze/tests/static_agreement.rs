//! Differential validation of the static analyzer: every
//! spec-derived verdict must agree exactly with trace replay, and the
//! paper's Fig. 5 invariants must be reproduced with zero execution.

use ks_analyze::differential::{differential_report, validate_probe};
use ks_analyze::fixtures::fixture_probes;
use ks_analyze::static_::{lint_kernel_hybrid, lint_report_static, LintMode};
use ks_analyze::{shipped_probes, FindingKind};
use ks_gpu_sim::config::DeviceConfig;

/// Every probe in the registry (and every fixture) whose spec is
/// affine must agree with the replay on sectors, conflict histograms,
/// and barriers — exactly, not approximately.
#[test]
fn differential_agreement_is_exact() {
    let dev = DeviceConfig::gtx970();
    let report = differential_report(&dev);
    assert!(
        report.all_agree(),
        "static/dynamic disagreement:\n{}",
        report.table()
    );
    // The registry itself must be statically provable: no shipped
    // kernel may silently ride on the dynamic fallback.
    let static_probes = report.probes.iter().filter(|p| p.mode.is_static()).count();
    let shipped = shipped_probes().len();
    assert!(
        static_probes >= shipped,
        "only {static_probes} of {shipped} shipped probes proved statically"
    );
}

/// The Fig. 5 shared-memory budgets, proved with zero trace replay:
/// swizzled fused layout 0-conflict, naive row-major layout 3-way.
#[test]
fn fig5_conflict_degrees_proved_statically() {
    let dev = DeviceConfig::gtx970();
    let outcome = lint_report_static(&dev);
    let degree = |name: &str| {
        let k = outcome
            .kernels
            .iter()
            .find(|k| k.kernel == name)
            .unwrap_or_else(|| panic!("probe {name} missing"));
        assert!(k.mode.is_static(), "{name} was downgraded");
        k.max_conflict_degree
    };
    assert_eq!(degree("fused"), 0, "swizzled layout must be conflict-free");
    assert_eq!(degree("fused_naive_layout"), 3, "naive layout is 3-way");
    // And the shipped registry lints clean statically.
    assert!(
        outcome.report.is_clean(),
        "static findings on shipped kernels:\n{}",
        outcome.report.table()
    );
}

/// The fixtures prove the static detectors fire: the stride-16 layout
/// trips the bank-conflict proof, the overrun kernel trips the bounds
/// proof, and the indirect kernel is downgraded (never silently
/// passed).
#[test]
fn fixtures_flagged_statically() {
    let dev = DeviceConfig::gtx970();
    let probes = fixture_probes();
    let by_name = |n: &str| probes.iter().find(|p| p.name == n).unwrap();

    let p = by_name("fixture_stride16");
    let (report, summary) = lint_kernel_hybrid(&dev, p.kernel.as_ref(), &p.mem);
    assert!(summary.mode.is_static());
    assert_eq!(summary.max_conflict_degree, 15, "stride-16 is 16-way");
    assert!(
        !report.of_kind(FindingKind::BankConflict).is_empty(),
        "static bank-conflict proof must fire"
    );

    let p = by_name("fixture_overrun");
    let (report, summary) = lint_kernel_hybrid(&dev, p.kernel.as_ref(), &p.mem);
    assert!(summary.mode.is_static());
    assert!(
        !report.of_kind(FindingKind::OutOfBounds).is_empty(),
        "static bounds proof must fire"
    );
    // The dynamic lint agrees on the same kernel.
    let dynamic = ks_analyze::lint_kernel(&dev, p.kernel.as_ref(), &p.mem);
    assert!(!dynamic.of_kind(FindingKind::OutOfBounds).is_empty());

    let p = by_name("fixture_indirect");
    let (report, summary) = lint_kernel_hybrid(&dev, p.kernel.as_ref(), &p.mem);
    match &summary.mode {
        LintMode::Dynamic(reason) => assert!(
            reason.contains("non-affine"),
            "downgrade reason should name the cause, got: {reason}"
        ),
        LintMode::Static => panic!("indirect kernel must not be statically proved"),
    }
    assert!(summary.predicted.is_none(), "no prediction when downgraded");
    assert!(report.is_clean(), "the gather itself is in bounds");
    // The differential validator marks it not-applicable, not agreeing
    // by accident.
    let agreement = validate_probe(&dev, p.name, p.kernel.as_ref(), &p.mem);
    assert!(!agreement.mode.is_static());
}

/// Occupancy expectations ride along unchanged in static mode: the
/// fused kernel still proves 2 blocks/SM on the reference device.
#[test]
fn occupancy_checked_in_static_mode() {
    let dev = DeviceConfig::gtx970();
    let probes = shipped_probes();
    let fused = probes.iter().find(|p| p.name == "fused").unwrap();
    let (report, summary) = lint_kernel_hybrid(&dev, fused.kernel.as_ref(), &fused.mem);
    assert!(summary.mode.is_static());
    assert!(report.is_clean(), "{}", report.table());
    // Break the device so the expectation fails: fewer registers per
    // SM halves the achievable blocks.
    let mut small = DeviceConfig::gtx970();
    small.regs_per_sm /= 2;
    let (report, _) = lint_kernel_hybrid(&small, fused.kernel.as_ref(), &fused.mem);
    assert!(
        !report.of_kind(FindingKind::OccupancyMismatch).is_empty(),
        "occupancy mismatch must surface statically"
    );
}
