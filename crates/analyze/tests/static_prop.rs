//! Property tests of the static analyzer: on randomized strided
//! synthetic kernels the spec-derived verdicts must match the dynamic
//! machinery exactly — conflict degrees against trace replay, and
//! DRAM-sector predictions against full traffic replay.

use ks_analyze::differential::replay_counters;
use ks_analyze::record_traces;
use ks_analyze::static_::pattern_sectors;
use ks_gpu_sim::access::{affine_lanes, AccessSpec, GlobalPattern, SharedPattern};
use ks_gpu_sim::buffer::{BufId, GlobalMem};
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::{Kernel, KernelResources, VecWidth};
use ks_gpu_sim::smem::conflict_degree;
use ks_gpu_sim::trace::AccessDir;
use ks_gpu_sim::traffic::{TrafficSink, WarpIdx};
use proptest::prelude::*;

/// Index headroom so negative block/loop steps never take the actual
/// (usize) index below zero.
const BASE: usize = 8192;
const BUF_LEN: usize = 1 << 16;

/// A synthetic two-warp kernel whose global traffic is one strided,
/// looped pattern per warp and whose shared traffic is one strided
/// store per warp — with an `access_spec` that mirrors the traffic
/// exactly. Randomizing its parameters sweeps coalescing regimes
/// (broadcast, unit stride, scattered), sector-straddling offsets,
/// negative loop steps, and every conflict degree.
#[derive(Debug, Clone)]
struct StridedProbe {
    buf: BufId,
    lane_stride: usize,
    vlen: VecWidth,
    grid_x: u32,
    bx_step: i64,
    loop_trip: u64,
    loop_step: i64,
    smem_stride: u32,
}

impl StridedProbe {
    fn lane_idx(&self, w: usize, l: usize) -> i64 {
        (BASE + w * 512 + l * self.lane_stride) as i64
    }

    fn body(&self, block: Dim3, mut issue: impl FnMut(u32, WarpIdx, [Option<u32>; 32])) {
        for w in 0..2usize {
            for i in 0..self.loop_trip {
                let idx: WarpIdx = std::array::from_fn(|l| {
                    let v = self.lane_idx(w, l)
                        + i64::from(block.x) * self.bx_step
                        + i as i64 * self.loop_step;
                    Some(usize::try_from(v).expect("index stays non-negative"))
                });
                let words: [Option<u32>; 32] =
                    std::array::from_fn(|l| Some(w as u32 * 2048 + l as u32 * self.smem_stride));
                issue(w as u32, idx, words);
            }
        }
    }
}

impl Kernel for StridedProbe {
    fn name(&self) -> String {
        "strided_probe".to_string()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid_x, 64u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 64,
            regs_per_thread: 16,
            smem_bytes_per_block: 4096 * 4,
        }
    }

    fn execute_block(&self, _block: Dim3, _ctx: &mut BlockCtx) {
        unreachable!("traffic-only probe");
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, |w, idx, words| {
            sink.begin_warp(w);
            sink.global_read(self.buf, &idx, self.vlen.words());
            sink.shared_write(&words, 1);
        });
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let mut spec = AccessSpec::default();
        for w in 0..2usize {
            spec.global.push(
                GlobalPattern::new(
                    self.buf,
                    "data",
                    AccessDir::Read,
                    self.vlen,
                    affine_lanes(|l| self.lane_idx(w, l)),
                )
                .with_bx(self.bx_step)
                .with_loop(self.loop_trip, self.loop_step),
            );
            let words: [Option<u32>; 32] =
                std::array::from_fn(|l| Some(w as u32 * 2048 + l as u32 * self.smem_stride));
            spec.shared.push(
                SharedPattern::new(words, VecWidth::V1, AccessDir::Write).times(self.loop_trip),
            );
        }
        Some(spec)
    }
}

fn vlen_strategy() -> impl Strategy<Value = VecWidth> {
    prop_oneof![Just(VecWidth::V1), Just(VecWidth::V2), Just(VecWidth::V4)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Static DRAM-sector prediction equals full traffic replay —
    /// exactly — across random strides, vector widths, block steps
    /// (including sector-straddling and negative ones), and loops.
    #[test]
    fn predicted_sectors_match_replay(
        lane_stride in 0usize..7,
        vlen in vlen_strategy(),
        grid_x in 1u32..5,
        bx_step in -64i64..65,
        loop_trip in 1u64..6,
        loop_step in -17i64..18,
        smem_stride in 0u32..33,
    ) {
        let mut mem = GlobalMem::new();
        let buf = mem.alloc_virtual(BUF_LEN);
        let probe = StridedProbe {
            buf, lane_stride, vlen, grid_x, bx_step, loop_trip, loop_step, smem_stride,
        };
        let spec = probe.access_spec().unwrap();
        let predicted: u64 = spec
            .global
            .iter()
            .map(|g| pattern_sectors(g, u64::from(grid_x), 1).0)
            .sum();
        let counters = replay_counters(&probe, &mem);
        prop_assert_eq!(predicted, counters.l2_read_sectors);
    }

    /// Static bank-conflict degree equals the dynamic `conflict_degree`
    /// of the recorded trace, phase by phase, on randomized strides.
    #[test]
    fn static_conflict_degree_matches_trace(
        lane_stride in 0usize..7,
        grid_x in 1u32..3,
        loop_trip in 1u64..4,
        smem_stride in 0u32..33,
    ) {
        let mut mem = GlobalMem::new();
        let buf = mem.alloc_virtual(BUF_LEN);
        let probe = StridedProbe {
            buf, lane_stride, vlen: VecWidth::V1, grid_x,
            bx_step: 0, loop_trip, loop_step: 0, smem_stride,
        };
        let spec = probe.access_spec().unwrap();
        let static_degrees: Vec<u32> = spec
            .shared
            .iter()
            .map(|s| conflict_degree(&s.lanes, 32))
            .collect();
        for t in record_traces(&probe, &mem, 4) {
            let traced: Vec<u32> = t
                .shared
                .iter()
                .map(|a| conflict_degree(&a.words, 32))
                .collect();
            // Spec: one pattern per warp, `loop_trip` issues each.
            // Trace: `loop_trip` consecutive accesses per warp.
            let expanded: Vec<u32> = static_degrees
                .iter()
                .flat_map(|&d| std::iter::repeat_n(d, spec.shared[0].issues as usize))
                .collect();
            prop_assert_eq!(&traced, &expanded);
        }
    }
}
