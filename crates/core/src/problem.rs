//! Problem definition, synthetic point sets and the solver façade.

use std::sync::Arc;

use ks_blas::{Layout, Matrix};
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rand_distr::Normal;

use crate::cpu_fused::{self, FusedCpuConfig};
use crate::cpu_unfused;
use crate::gpu;
use crate::kernels::{GaussianKernel, KernelFunction};
use crate::reference;

/// A set of points in `R^dim`, stored point-contiguously (each point's
/// `dim` coordinates adjacent) — the layout every kernel in the
/// workspace expects along K.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    coords: Vec<f32>,
    n_points: usize,
    dim: usize,
}

impl PointSet {
    /// Wraps existing coordinates (`coords.len() == n_points · dim`).
    ///
    /// # Panics
    /// Panics on a length mismatch or zero dimensions.
    #[must_use]
    pub fn from_coords(n_points: usize, dim: usize, coords: Vec<f32>) -> Self {
        assert!(dim > 0, "zero-dimensional points");
        assert_eq!(
            coords.len(),
            n_points * dim,
            "coordinate buffer length mismatch"
        );
        Self {
            coords,
            n_points,
            dim,
        }
    }

    /// Uniform points in `[0, 1]^dim` (the classic kernel-summation
    /// benchmark distribution), deterministic in `seed`.
    #[must_use]
    pub fn uniform_cube(n_points: usize, dim: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let u = Uniform::new(0.0f32, 1.0f32);
        let coords = (0..n_points * dim).map(|_| u.sample(&mut rng)).collect();
        Self::from_coords(n_points, dim, coords)
    }

    /// A mixture of `clusters` isotropic Gaussian blobs with standard
    /// deviation `sigma` — the clustered data of density-estimation
    /// workloads (§II-A).
    ///
    /// # Panics
    /// Panics if `clusters == 0` or `sigma` is not finite-positive.
    #[must_use]
    pub fn gaussian_clusters(
        n_points: usize,
        dim: usize,
        clusters: usize,
        sigma: f32,
        seed: u64,
    ) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centre_dist = Uniform::new(0.0f32, 1.0f32);
        let centres: Vec<f32> = (0..clusters * dim)
            .map(|_| centre_dist.sample(&mut rng))
            .collect();
        let noise = Normal::new(0.0f32, sigma).expect("valid sigma");
        let mut coords = Vec::with_capacity(n_points * dim);
        for p in 0..n_points {
            let c = p % clusters;
            for d in 0..dim {
                coords.push(centres[c * dim + d] + noise.sample(&mut rng));
            }
        }
        Self::from_coords(n_points, dim, coords)
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// True if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Point-space dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Flat coordinate slice (point-contiguous).
    #[must_use]
    pub fn coords(&self) -> &[f32] {
        &self.coords
    }

    /// Coordinates of point `i`.
    #[must_use]
    pub fn point(&self, i: usize) -> &[f32] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// As the paper's row-major `A` matrix (`n_points × dim`).
    #[must_use]
    pub fn as_row_major(&self) -> Matrix {
        Matrix::from_vec(
            self.n_points,
            self.dim,
            Layout::RowMajor,
            self.coords.clone(),
        )
    }

    /// As the paper's column-major `B` matrix (`dim × n_points`).
    #[must_use]
    pub fn as_col_major_transposed(&self) -> Matrix {
        Matrix::from_vec(
            self.dim,
            self.n_points,
            Layout::ColMajor,
            self.coords.clone(),
        )
    }
}

/// Which solver evaluates the problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Naive `O(MNK)` oracle with f64 accumulation.
    Reference,
    /// BLAS pipeline materialising the `M×N` intermediate.
    CpuUnfused,
    /// Cache-blocked fused CPU implementation (the paper's idea).
    CpuFused,
    /// Simulated GTX970 (see [`crate::gpu`] for the variants and for
    /// profile/energy access).
    GpuSim(ks_gpu_kernels::GpuVariant),
}

/// A fully-specified kernel-summation instance.
pub struct KernelSumProblem {
    sources: PointSet,
    targets: PointSet,
    weights: Vec<f32>,
    kernel: Arc<dyn KernelFunction>,
}

impl KernelSumProblem {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> ProblemBuilder {
        ProblemBuilder::default()
    }

    /// Source points (rows of `A`; one output per source).
    #[must_use]
    pub fn sources(&self) -> &PointSet {
        &self.sources
    }

    /// Target points (columns of `B`).
    #[must_use]
    pub fn targets(&self) -> &PointSet {
        &self.targets
    }

    /// Weights (one per target).
    #[must_use]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The kernel function.
    #[must_use]
    pub fn kernel(&self) -> &dyn KernelFunction {
        self.kernel.as_ref()
    }

    /// `(M, N, K)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.sources.len(), self.targets.len(), self.sources.dim())
    }

    /// Solves with the chosen backend, returning `V ∈ R^M`.
    ///
    /// For GPU backends this runs the simulated pipeline functionally;
    /// use [`gpu::solve_gpu`] directly when the profile and energy
    /// report are also needed.
    ///
    /// # Panics
    /// Panics if a GPU backend is asked for a non-Gaussian kernel or
    /// dimensions violating the GPU tiling (the CPU backends accept
    /// any kernel and any sizes).
    #[must_use]
    pub fn solve(&self, backend: Backend) -> Vec<f32> {
        match backend {
            Backend::Reference => reference::solve(self),
            Backend::CpuUnfused => cpu_unfused::solve(self),
            Backend::CpuFused => cpu_fused::solve(self, &FusedCpuConfig::default()),
            Backend::GpuSim(variant) => gpu::solve_gpu(self, variant).v,
        }
    }
}

/// Builder for [`KernelSumProblem`].
#[derive(Default)]
pub struct ProblemBuilder {
    sources: Option<PointSet>,
    targets: Option<PointSet>,
    weights: Option<Vec<f32>>,
    kernel: Option<Arc<dyn KernelFunction>>,
}

impl ProblemBuilder {
    /// Sets the source points.
    #[must_use]
    pub fn sources(mut self, s: PointSet) -> Self {
        self.sources = Some(s);
        self
    }

    /// Sets the target points.
    #[must_use]
    pub fn targets(mut self, t: PointSet) -> Self {
        self.targets = Some(t);
        self
    }

    /// Sets explicit weights (length must equal the target count).
    #[must_use]
    pub fn weights(mut self, w: Vec<f32>) -> Self {
        self.weights = Some(w);
        self
    }

    /// All-ones weights (plain kernel density).
    #[must_use]
    pub fn unit_weights(mut self) -> Self {
        self.weights = None;
        self
    }

    /// Sets the kernel function.
    #[must_use]
    pub fn kernel(mut self, k: impl KernelFunction + 'static) -> Self {
        self.kernel = Some(Arc::new(k));
        self
    }

    /// Finalises the problem.
    ///
    /// # Panics
    /// Panics if sources/targets are missing, their dimensions differ,
    /// or explicit weights have the wrong length.
    #[must_use]
    pub fn build(self) -> KernelSumProblem {
        let sources = self.sources.expect("builder: sources not set");
        let targets = self.targets.expect("builder: targets not set");
        assert_eq!(
            sources.dim(),
            targets.dim(),
            "source/target dimensions differ"
        );
        let weights = self.weights.unwrap_or_else(|| vec![1.0; targets.len()]);
        assert_eq!(
            weights.len(),
            targets.len(),
            "weights length must equal target count"
        );
        let kernel = self
            .kernel
            .unwrap_or_else(|| Arc::new(GaussianKernel { h: 1.0 }));
        KernelSumProblem {
            sources,
            targets,
            weights,
            kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cube_is_deterministic_and_in_range() {
        let a = PointSet::uniform_cube(100, 8, 7);
        let b = PointSet::uniform_cube(100, 8, 7);
        assert_eq!(a, b);
        assert!(a.coords().iter().all(|&v| (0.0..1.0).contains(&v)));
        assert_ne!(a, PointSet::uniform_cube(100, 8, 8));
    }

    #[test]
    fn clusters_concentrate_points() {
        let tight = PointSet::gaussian_clusters(512, 4, 4, 0.01, 3);
        // Points in the same cluster (stride `clusters`) must be close.
        let d2: f32 = tight
            .point(0)
            .iter()
            .zip(tight.point(4))
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(d2 < 0.01, "intra-cluster distance² {d2}");
    }

    #[test]
    fn matrices_have_paper_layouts() {
        let s = PointSet::uniform_cube(10, 3, 1);
        let a = s.as_row_major();
        assert_eq!((a.rows(), a.cols()), (10, 3));
        assert_eq!(a.get(2, 1), s.point(2)[1]);
        let b = s.as_col_major_transposed();
        assert_eq!((b.rows(), b.cols()), (3, 10));
        assert_eq!(b.get(1, 2), s.point(2)[1]);
    }

    #[test]
    fn builder_defaults() {
        let p = KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(16, 4, 1))
            .targets(PointSet::uniform_cube(8, 4, 2))
            .build();
        assert_eq!(p.dims(), (16, 8, 4));
        assert_eq!(p.weights(), &vec![1.0f32; 8][..]);
        assert_eq!(p.kernel().name(), "gaussian");
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn builder_rejects_dim_mismatch() {
        let _ = KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(16, 4, 1))
            .targets(PointSet::uniform_cube(8, 5, 2))
            .build();
    }

    #[test]
    #[should_panic(expected = "weights length")]
    fn builder_rejects_bad_weights() {
        let _ = KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(16, 4, 1))
            .targets(PointSet::uniform_cube(8, 4, 2))
            .weights(vec![1.0; 7])
            .build();
    }

    #[test]
    fn point_accessor() {
        let s = PointSet::from_coords(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(s.point(1), &[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
