//! Naive `O(MNK)` reference solver — the oracle every other
//! implementation is validated against.

use rayon::prelude::*;

use crate::problem::KernelSumProblem;

/// Direct evaluation of `V_i = Σ_j 𝒦(α_i, β_j) · W_j` with f64
/// accumulation of both the squared distance and the sum.
#[must_use]
pub fn solve(p: &KernelSumProblem) -> Vec<f32> {
    let (m, _, _) = p.dims();
    let kernel = p.kernel();
    (0..m)
        .into_par_iter()
        .map(|i| {
            let alpha = p.sources().point(i);
            let na: f64 = alpha.iter().map(|v| *v as f64 * *v as f64).sum();
            let mut acc = 0.0f64;
            for (j, w) in p.weights().iter().enumerate() {
                let beta = p.targets().point(j);
                let mut d2 = 0.0f64;
                for (a, b) in alpha.iter().zip(beta.iter()) {
                    let diff = *a as f64 - *b as f64;
                    d2 += diff * diff;
                }
                let nb: f64 = beta.iter().map(|v| *v as f64 * *v as f64).sum();
                acc += kernel.eval(d2 as f32, na as f32, nb as f32) as f64 * *w as f64;
            }
            acc as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::GaussianKernel;
    use crate::problem::{KernelSumProblem, PointSet};

    #[test]
    fn coincident_points_sum_weights() {
        // All sources equal all targets ⇒ 𝒦 = 1 everywhere ⇒ V_i = Σw.
        let pts = PointSet::from_coords(4, 2, vec![0.5; 8]);
        let p = KernelSumProblem::builder()
            .sources(pts.clone())
            .targets(pts)
            .weights(vec![1.0, 2.0, 3.0, 4.0])
            .kernel(GaussianKernel { h: 1.0 })
            .build();
        let v = solve(&p);
        for x in v {
            assert!((x - 10.0).abs() < 1e-5);
        }
    }

    #[test]
    fn hand_computed_two_point_case() {
        // α = (0,0), β = (1,0), h = 1: 𝒦 = exp(−0.5).
        let p = KernelSumProblem::builder()
            .sources(PointSet::from_coords(1, 2, vec![0.0, 0.0]))
            .targets(PointSet::from_coords(1, 2, vec![1.0, 0.0]))
            .weights(vec![2.0])
            .kernel(GaussianKernel { h: 1.0 })
            .build();
        let v = solve(&p);
        assert!((v[0] - 2.0 * (-0.5f32).exp()).abs() < 1e-6);
    }

    #[test]
    fn distant_points_contribute_nothing() {
        let p = KernelSumProblem::builder()
            .sources(PointSet::from_coords(1, 1, vec![0.0]))
            .targets(PointSet::from_coords(1, 1, vec![1000.0]))
            .kernel(GaussianKernel { h: 1.0 })
            .build();
        assert_eq!(solve(&p)[0], 0.0);
    }
}
