//! Source-set handles and reusable solve plans (the serving split).
//!
//! A production deployment serves many queries against a handful of
//! long-lived *source sets* (the corpus `A`). Everything that depends
//! only on `A` — the row-major pack and the row square norms — can be
//! computed once and reused across queries, exactly as the paper's
//! fused kernel amortises the `M×N` intermediate across one query
//! (§III): the reuse argument is the same, lifted from intra-kernel to
//! inter-request.
//!
//! [`SourceSet`] wraps a [`PointSet`] with a process-unique identity
//! so caches can key on *which* corpus a query references instead of
//! hashing megabytes of coordinates. [`SourcePlan`] is the cacheable
//! artifact; [`solve_multi_planned`] is [`crate::multi::solve_multi_fused`]
//! with the `A`-side precomputation factored out (the single-shot
//! entry point now delegates here, so planned and unplanned solves are
//! bit-identical by construction).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ks_blas::{col_sq_norms, gemm_blocked, row_sq_norms, Layout, Matrix};
use rayon::prelude::*;

use crate::cpu_fused::FusedCpuConfig;
use crate::kernels::KernelFunction;
use crate::problem::PointSet;

/// Process-unique identity of a [`SourceSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceSetId(u64);

impl SourceSetId {
    /// The raw identifier.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

static NEXT_SOURCE_SET_ID: AtomicU64 = AtomicU64::new(1);

/// A registered source corpus: shared, immutable points plus a
/// process-unique id. Clones share both the points (via `Arc`) and
/// the identity, so two queries built from clones of one handle are
/// recognisably "the same corpus" without comparing coordinates.
#[derive(Debug, Clone)]
pub struct SourceSet {
    id: SourceSetId,
    points: Arc<PointSet>,
}

impl SourceSet {
    /// Registers a point set as a corpus, minting a fresh id.
    #[must_use]
    pub fn new(points: PointSet) -> Self {
        Self {
            id: SourceSetId(NEXT_SOURCE_SET_ID.fetch_add(1, Ordering::Relaxed)),
            points: Arc::new(points),
        }
    }

    /// The corpus identity.
    #[must_use]
    pub fn id(&self) -> SourceSetId {
        self.id
    }

    /// The underlying points.
    #[must_use]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Number of points (the problem's `M`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the corpus holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Point-space dimension (the problem's `K`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.points.dim()
    }
}

/// The `A`-side precomputation of a fused multi-weight solve: the
/// packed row-major source matrix and its row square norms. Building
/// one costs `O(M·K)`; reusing one saves exactly that per query.
#[derive(Debug, Clone, PartialEq)]
pub struct SourcePlan {
    a: Matrix,
    row_sq_norms: Vec<f32>,
}

impl SourcePlan {
    /// Builds the plan for a point set.
    #[must_use]
    pub fn build(sources: &PointSet) -> Self {
        let a = sources.as_row_major();
        let row_sq_norms = row_sq_norms(&a);
        Self { a, row_sq_norms }
    }

    /// The packed row-major `M×K` source matrix.
    #[must_use]
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Precomputed `‖α_i‖²` per source row.
    #[must_use]
    pub fn row_sq_norms(&self) -> &[f32] {
        &self.row_sq_norms
    }

    /// `(M, K)` of the planned corpus.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.a.rows(), self.a.cols())
    }

    /// The pack payload as raw words — what a cache-consistency check
    /// should compare bit-for-bit (plan building is deterministic, so
    /// evicting and rebuilding must reproduce these exact bytes).
    #[must_use]
    pub fn pack_words(&self) -> &[f32] {
        self.a.as_slice()
    }
}

/// Fused multi-weight evaluation against a prebuilt [`SourcePlan`]:
/// per-tile GEMM → kernel evaluation → fold of all `R` weight columns,
/// with the `A`-side pack and norms taken from the plan.
///
/// [`crate::multi::solve_multi_fused`] delegates here, so for any
/// query the planned result is **bit-identical** to the single-shot
/// solve — the invariant the serving layer's differential tests pin.
///
/// # Panics
/// Panics if `targets` and the plan disagree on the point dimension,
/// `weights` is not `N×R`, or the configuration is invalid.
#[must_use]
pub fn solve_multi_planned(
    plan: &SourcePlan,
    targets: &PointSet,
    kernel: &dyn KernelFunction,
    weights: &Matrix,
    cfg: &FusedCpuConfig,
) -> Matrix {
    cfg.validate();
    let (m, k) = plan.dims();
    let n = targets.len();
    assert_eq!(
        targets.dim(),
        k,
        "target dimension {} does not match the plan's K = {k}",
        targets.dim()
    );
    assert_eq!(
        weights.rows(),
        n,
        "weight matrix must have one row per target (N = {n})"
    );
    assert!(weights.cols() > 0, "need at least one weight column");
    let r = weights.cols();
    let a = plan.a();
    let vec_a = plan.row_sq_norms();
    let b = targets.as_col_major_transposed();
    let vec_b = col_sq_norms(&b);

    let blocks: Vec<usize> = (0..m).step_by(cfg.mb).collect();
    let chunks: Vec<(usize, Matrix)> = blocks
        .par_iter()
        .map(|&i0| {
            let mb = cfg.mb.min(m - i0);
            let mut v_local = Matrix::zeros(mb, r, Layout::RowMajor);
            let a_block =
                Matrix::from_fn(mb, a.cols(), Layout::RowMajor, |rr, cc| a.get(i0 + rr, cc));
            let mut scratch = Matrix::zeros(mb, cfg.nb.min(n).max(1), Layout::RowMajor);
            for j0 in (0..n).step_by(cfg.nb) {
                let nb = cfg.nb.min(n - j0);
                let b_block =
                    Matrix::from_fn(b.rows(), nb, Layout::ColMajor, |rr, cc| b.get(rr, j0 + cc));
                if scratch.cols() != nb {
                    scratch = Matrix::zeros(mb, nb, Layout::RowMajor);
                }
                gemm_blocked(1.0, &a_block, &b_block, 0.0, &mut scratch, cfg.gemm);
                for rr in 0..mb {
                    let na = vec_a[i0 + rr];
                    for cc in 0..nb {
                        let d2 = na + vec_b[j0 + cc] - 2.0 * scratch.get(rr, cc);
                        let kv = kernel.eval(d2, na, vec_b[j0 + cc]);
                        for ch in 0..r {
                            v_local.add_assign(rr, ch, kv * weights.get(j0 + cc, ch));
                        }
                    }
                }
            }
            (i0, v_local)
        })
        .collect();

    let mut v = Matrix::zeros(m, r, Layout::RowMajor);
    for (i0, local) in chunks {
        for rr in 0..local.rows() {
            for ch in 0..r {
                v.set(i0 + rr, ch, local.get(rr, ch));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::GaussianKernel;
    use crate::multi::solve_multi_fused;
    use crate::problem::KernelSumProblem;

    fn rand_weights(n: usize, r: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(n, r, Layout::RowMajor, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn source_set_ids_are_unique_and_shared_by_clones() {
        let a = SourceSet::new(PointSet::uniform_cube(8, 3, 1));
        let b = SourceSet::new(PointSet::uniform_cube(8, 3, 1));
        assert_ne!(a.id(), b.id(), "identical contents, distinct corpora");
        let a2 = a.clone();
        assert_eq!(a.id(), a2.id());
        assert_eq!(a.len(), 8);
        assert_eq!(a.dim(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn plan_build_is_deterministic_bit_for_bit() {
        let pts = PointSet::uniform_cube(40, 6, 9);
        let p1 = SourcePlan::build(&pts);
        let p2 = SourcePlan::build(&pts);
        assert_eq!(p1, p2);
        let bits1: Vec<u32> = p1.pack_words().iter().map(|v| v.to_bits()).collect();
        let bits2: Vec<u32> = p2.pack_words().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits1, bits2);
        assert_eq!(p1.dims(), (40, 6));
        assert_eq!(p1.row_sq_norms().len(), 40);
    }

    #[test]
    fn planned_solve_is_bit_identical_to_single_shot() {
        let sources = PointSet::uniform_cube(70, 5, 11);
        let targets = PointSet::uniform_cube(44, 5, 12);
        let w = rand_weights(44, 3, 13);
        let kernel = GaussianKernel { h: 0.7 };
        let p = KernelSumProblem::builder()
            .sources(sources.clone())
            .targets(targets.clone())
            .unit_weights()
            .kernel(kernel)
            .build();
        let single = solve_multi_fused(&p, &w, &FusedCpuConfig::default());
        let plan = SourcePlan::build(&sources);
        let planned = solve_multi_planned(&plan, &targets, &kernel, &w, &FusedCpuConfig::default());
        for i in 0..single.rows() {
            for j in 0..single.cols() {
                assert_eq!(
                    single.get(i, j).to_bits(),
                    planned.get(i, j).to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn planned_solve_rejects_dim_mismatch() {
        let plan = SourcePlan::build(&PointSet::uniform_cube(16, 4, 1));
        let targets = PointSet::uniform_cube(8, 5, 2);
        let w = rand_weights(8, 1, 3);
        let _ = solve_multi_planned(
            &plan,
            &targets,
            &GaussianKernel { h: 1.0 },
            &w,
            &FusedCpuConfig::default(),
        );
    }
}
