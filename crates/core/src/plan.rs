//! Source-set handles and reusable solve plans (the serving split).
//!
//! A production deployment serves many queries against a handful of
//! long-lived *source sets* (the corpus `A`). Everything that depends
//! only on `A` — the row-major pack and the row square norms — can be
//! computed once and reused across queries, exactly as the paper's
//! fused kernel amortises the `M×N` intermediate across one query
//! (§III): the reuse argument is the same, lifted from intra-kernel to
//! inter-request.
//!
//! [`SourceSet`] wraps a [`PointSet`] with a process-unique identity
//! so caches can key on *which* corpus a query references instead of
//! hashing megabytes of coordinates. [`SourcePlan`] is the cacheable
//! artifact; [`solve_multi_planned`] is [`crate::multi::solve_multi_fused`]
//! with the `A`-side precomputation factored out (the single-shot
//! entry point now delegates here, so planned and unplanned solves are
//! bit-identical by construction).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ks_blas::{col_sq_norms, gemm_blocked, row_sq_norms, Layout, Matrix};
use rayon::prelude::*;

use crate::cpu_fused::FusedCpuConfig;
use crate::kernels::KernelFunction;
use crate::problem::PointSet;

/// Process-unique identity of a [`SourceSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceSetId(u64);

impl SourceSetId {
    /// The raw identifier.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

static NEXT_SOURCE_SET_ID: AtomicU64 = AtomicU64::new(1);

/// A registered source corpus: shared, immutable points plus a
/// process-unique id. Clones share both the points (via `Arc`) and
/// the identity, so two queries built from clones of one handle are
/// recognisably "the same corpus" without comparing coordinates.
#[derive(Debug, Clone)]
pub struct SourceSet {
    id: SourceSetId,
    points: Arc<PointSet>,
}

impl SourceSet {
    /// Registers a point set as a corpus, minting a fresh id.
    #[must_use]
    pub fn new(points: PointSet) -> Self {
        Self {
            id: SourceSetId(NEXT_SOURCE_SET_ID.fetch_add(1, Ordering::Relaxed)),
            points: Arc::new(points),
        }
    }

    /// The corpus identity.
    #[must_use]
    pub fn id(&self) -> SourceSetId {
        self.id
    }

    /// The underlying points.
    #[must_use]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Number of points (the problem's `M`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the corpus holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Point-space dimension (the problem's `K`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.points.dim()
    }
}

/// The `A`-side precomputation of a fused multi-weight solve: the
/// packed row-major source matrix and its row square norms. Building
/// one costs `O(M·K)`; reusing one saves exactly that per query.
#[derive(Debug, Clone, PartialEq)]
pub struct SourcePlan {
    a: Matrix,
    row_sq_norms: Vec<f32>,
}

impl SourcePlan {
    /// Builds the plan for a point set.
    #[must_use]
    pub fn build(sources: &PointSet) -> Self {
        let a = sources.as_row_major();
        let row_sq_norms = row_sq_norms(&a);
        Self { a, row_sq_norms }
    }

    /// The packed row-major `M×K` source matrix.
    #[must_use]
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Precomputed `‖α_i‖²` per source row.
    #[must_use]
    pub fn row_sq_norms(&self) -> &[f32] {
        &self.row_sq_norms
    }

    /// `(M, K)` of the planned corpus.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.a.rows(), self.a.cols())
    }

    /// The pack payload as raw words — what a cache-consistency check
    /// should compare bit-for-bit (plan building is deterministic, so
    /// evicting and rebuilding must reproduce these exact bytes).
    #[must_use]
    pub fn pack_words(&self) -> &[f32] {
        self.a.as_slice()
    }

    /// Extracts the sub-plan covering source rows `rows` — the unit a
    /// device pool ships to one device. The slice copies the already
    /// packed words and norms verbatim, so a shard plan is bit-equal
    /// to building a plan from the same rows directly, and the
    /// concatenation of shard results reproduces the unsharded solve
    /// bit for bit (each output row is a fixed-order reduction over
    /// its own `A` row only; see `shard_ranges`).
    ///
    /// # Panics
    /// Panics if `rows` is empty or out of bounds.
    #[must_use]
    pub fn shard(&self, rows: std::ops::Range<usize>) -> Self {
        let (m, k) = self.dims();
        assert!(!rows.is_empty(), "shard must cover at least one row");
        assert!(
            rows.end <= m,
            "shard rows {rows:?} out of bounds for M = {m}"
        );
        let a = Matrix::from_vec(
            rows.len(),
            k,
            Layout::RowMajor,
            self.a.as_slice()[rows.start * k..rows.end * k].to_vec(),
        );
        let row_sq_norms = self.row_sq_norms[rows.clone()].to_vec();
        Self { a, row_sq_norms }
    }
}

/// Partitions `m` source rows into at most `shards` contiguous ranges,
/// each (except possibly the last) a multiple of `align` rows, sized
/// as evenly as the alignment allows. Returns fewer than `shards`
/// ranges when `m` has fewer than `shards` alignment tiles — a device
/// pool must not receive empty shards.
///
/// Row-wise partition is *exact* for kernel summation: output row `i`
/// is `Σ_j w_j·k(x_j, a_i)`, a reduction over the targets whose
/// floating-point evaluation order is row-local, so concatenating
/// shard outputs in range order is bit-identical to the unsharded
/// solve on both backends (CPU tiles and the simulated GPU's
/// 128-row blocks never mix rows across an `align`-multiple boundary).
///
/// # Panics
/// Panics if `shards` or `align` is zero.
#[must_use]
pub fn shard_ranges(m: usize, shards: usize, align: usize) -> Vec<std::ops::Range<usize>> {
    assert!(shards > 0, "shards must be positive");
    assert!(align > 0, "align must be positive");
    if m == 0 {
        return Vec::new();
    }
    let tiles = m.div_ceil(align);
    let shards = shards.min(tiles);
    let base = tiles / shards;
    let extra = tiles % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut row = 0usize;
    for s in 0..shards {
        let t = base + usize::from(s < extra);
        let end = (row + t * align).min(m);
        ranges.push(row..end);
        row = end;
    }
    debug_assert_eq!(row, m);
    ranges
}

/// Fused multi-weight evaluation against a prebuilt [`SourcePlan`]:
/// per-tile GEMM → kernel evaluation → fold of all `R` weight columns,
/// with the `A`-side pack and norms taken from the plan.
///
/// [`crate::multi::solve_multi_fused`] delegates here, so for any
/// query the planned result is **bit-identical** to the single-shot
/// solve — the invariant the serving layer's differential tests pin.
///
/// # Panics
/// Panics if `targets` and the plan disagree on the point dimension,
/// `weights` is not `N×R`, or the configuration is invalid.
#[must_use]
pub fn solve_multi_planned(
    plan: &SourcePlan,
    targets: &PointSet,
    kernel: &dyn KernelFunction,
    weights: &Matrix,
    cfg: &FusedCpuConfig,
) -> Matrix {
    cfg.validate();
    let (m, k) = plan.dims();
    let n = targets.len();
    assert_eq!(
        targets.dim(),
        k,
        "target dimension {} does not match the plan's K = {k}",
        targets.dim()
    );
    assert_eq!(
        weights.rows(),
        n,
        "weight matrix must have one row per target (N = {n})"
    );
    assert!(weights.cols() > 0, "need at least one weight column");
    let r = weights.cols();
    let a = plan.a();
    let vec_a = plan.row_sq_norms();
    let b = targets.as_col_major_transposed();
    let vec_b = col_sq_norms(&b);

    let blocks: Vec<usize> = (0..m).step_by(cfg.mb).collect();
    let chunks: Vec<(usize, Matrix)> = blocks
        .par_iter()
        .map(|&i0| {
            let mb = cfg.mb.min(m - i0);
            let mut v_local = Matrix::zeros(mb, r, Layout::RowMajor);
            let a_block =
                Matrix::from_fn(mb, a.cols(), Layout::RowMajor, |rr, cc| a.get(i0 + rr, cc));
            let mut scratch = Matrix::zeros(mb, cfg.nb.min(n).max(1), Layout::RowMajor);
            for j0 in (0..n).step_by(cfg.nb) {
                let nb = cfg.nb.min(n - j0);
                let b_block =
                    Matrix::from_fn(b.rows(), nb, Layout::ColMajor, |rr, cc| b.get(rr, j0 + cc));
                if scratch.cols() != nb {
                    scratch = Matrix::zeros(mb, nb, Layout::RowMajor);
                }
                gemm_blocked(1.0, &a_block, &b_block, 0.0, &mut scratch, cfg.gemm);
                for rr in 0..mb {
                    let na = vec_a[i0 + rr];
                    for cc in 0..nb {
                        let d2 = na + vec_b[j0 + cc] - 2.0 * scratch.get(rr, cc);
                        let kv = kernel.eval(d2, na, vec_b[j0 + cc]);
                        for ch in 0..r {
                            v_local.add_assign(rr, ch, kv * weights.get(j0 + cc, ch));
                        }
                    }
                }
            }
            (i0, v_local)
        })
        .collect();

    let mut v = Matrix::zeros(m, r, Layout::RowMajor);
    for (i0, local) in chunks {
        for rr in 0..local.rows() {
            for ch in 0..r {
                v.set(i0 + rr, ch, local.get(rr, ch));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::GaussianKernel;
    use crate::multi::solve_multi_fused;
    use crate::problem::KernelSumProblem;

    fn rand_weights(n: usize, r: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(n, r, Layout::RowMajor, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn source_set_ids_are_unique_and_shared_by_clones() {
        let a = SourceSet::new(PointSet::uniform_cube(8, 3, 1));
        let b = SourceSet::new(PointSet::uniform_cube(8, 3, 1));
        assert_ne!(a.id(), b.id(), "identical contents, distinct corpora");
        let a2 = a.clone();
        assert_eq!(a.id(), a2.id());
        assert_eq!(a.len(), 8);
        assert_eq!(a.dim(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn plan_build_is_deterministic_bit_for_bit() {
        let pts = PointSet::uniform_cube(40, 6, 9);
        let p1 = SourcePlan::build(&pts);
        let p2 = SourcePlan::build(&pts);
        assert_eq!(p1, p2);
        let bits1: Vec<u32> = p1.pack_words().iter().map(|v| v.to_bits()).collect();
        let bits2: Vec<u32> = p2.pack_words().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits1, bits2);
        assert_eq!(p1.dims(), (40, 6));
        assert_eq!(p1.row_sq_norms().len(), 40);
    }

    #[test]
    fn planned_solve_is_bit_identical_to_single_shot() {
        let sources = PointSet::uniform_cube(70, 5, 11);
        let targets = PointSet::uniform_cube(44, 5, 12);
        let w = rand_weights(44, 3, 13);
        let kernel = GaussianKernel { h: 0.7 };
        let p = KernelSumProblem::builder()
            .sources(sources.clone())
            .targets(targets.clone())
            .unit_weights()
            .kernel(kernel)
            .build();
        let single = solve_multi_fused(&p, &w, &FusedCpuConfig::default());
        let plan = SourcePlan::build(&sources);
        let planned = solve_multi_planned(&plan, &targets, &kernel, &w, &FusedCpuConfig::default());
        for i in 0..single.rows() {
            for j in 0..single.cols() {
                assert_eq!(
                    single.get(i, j).to_bits(),
                    planned.get(i, j).to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn shard_ranges_cover_aligned_and_balanced() {
        // 5 tiles of 128 over 2 shards: 3 + 2 tiles.
        assert_eq!(shard_ranges(640, 2, 128), vec![0..384, 384..640]);
        // Ragged tail stays in the last shard.
        assert_eq!(shard_ranges(300, 2, 128), vec![0..256, 256..300]);
        // More shards than tiles: collapse, never emit an empty shard.
        assert_eq!(shard_ranges(100, 4, 128), vec![0..100]);
        // Exact division.
        assert_eq!(
            shard_ranges(512, 4, 128),
            vec![0..128, 128..256, 256..384, 384..512]
        );
        // Degenerate corpus.
        assert!(shard_ranges(0, 3, 128).is_empty());
        // Every interior boundary is a multiple of the alignment.
        for m in [1usize, 127, 128, 129, 1000, 4096] {
            for shards in 1..6 {
                let rs = shard_ranges(m, shards, 128);
                assert_eq!(rs.first().unwrap().start, 0);
                assert_eq!(rs.last().unwrap().end, m);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                    assert_eq!(w[0].end % 128, 0, "aligned boundary");
                }
                assert!(rs.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn shard_plan_is_bit_equal_to_direct_build() {
        let pts = PointSet::uniform_cube(300, 4, 21);
        let plan = SourcePlan::build(&pts);
        for range in shard_ranges(300, 3, 128) {
            let shard = plan.shard(range.clone());
            assert_eq!(shard.dims(), (range.len(), 4));
            for (local, global) in range.clone().enumerate() {
                assert_eq!(
                    shard.row_sq_norms()[local].to_bits(),
                    plan.row_sq_norms()[global].to_bits()
                );
                for c in 0..4 {
                    assert_eq!(
                        shard.a().get(local, c).to_bits(),
                        plan.a().get(global, c).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_solve_concatenates_bit_identical_to_unsharded() {
        let sources = PointSet::uniform_cube(300, 5, 31);
        let targets = PointSet::uniform_cube(40, 5, 32);
        let w = rand_weights(40, 2, 33);
        let kernel = GaussianKernel { h: 0.8 };
        let cfg = FusedCpuConfig::default();
        let plan = SourcePlan::build(&sources);
        let whole = solve_multi_planned(&plan, &targets, &kernel, &w, &cfg);
        for shards in [1usize, 2, 3] {
            let mut row = 0usize;
            for range in shard_ranges(300, shards, 128) {
                let part =
                    solve_multi_planned(&plan.shard(range.clone()), &targets, &kernel, &w, &cfg);
                for rr in 0..part.rows() {
                    for ch in 0..part.cols() {
                        assert_eq!(
                            part.get(rr, ch).to_bits(),
                            whole.get(row + rr, ch).to_bits(),
                            "shards={shards} row={} col={ch}",
                            row + rr
                        );
                    }
                }
                row = range.end;
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shard_rejects_out_of_bounds_rows() {
        let plan = SourcePlan::build(&PointSet::uniform_cube(16, 3, 5));
        let _ = plan.shard(8..32);
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn planned_solve_rejects_dim_mismatch() {
        let plan = SourcePlan::build(&PointSet::uniform_cube(16, 4, 1));
        let targets = PointSet::uniform_cube(8, 5, 2);
        let w = rand_weights(8, 1, 3);
        let _ = solve_multi_planned(
            &plan,
            &targets,
            &GaussianKernel { h: 1.0 },
            &w,
            &FusedCpuConfig::default(),
        );
    }
}
