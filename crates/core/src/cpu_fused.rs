//! The paper's fusion idea applied to the CPU cache hierarchy.
//!
//! Instead of materialising the `M×N` kernel matrix, the computation
//! is tiled: for each `(i-block, j-block)` pair an `MB×NB` scratch —
//! small enough to stay resident in L2 — receives the partial GEMM,
//! the kernel evaluation runs on it in place, and the block is
//! immediately reduced against its slice of `W` into the output. The
//! scratch is then reused for the next block: the intermediate never
//! travels to main memory, exactly as the fused GPU kernel keeps it in
//! registers and shared memory (§III-C). Parallelism is over i-blocks
//! (independent outputs — the analogue of independent thread blocks).

use ks_blas::{col_sq_norms, gemm_blocked, row_sq_norms, GemmConfig, Layout, Matrix};
use rayon::prelude::*;

use crate::problem::KernelSumProblem;

/// Blocking parameters of the fused CPU solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedCpuConfig {
    /// Rows of `V` produced per task (per-task scratch is `mb × nb`).
    pub mb: usize,
    /// Columns folded per inner step.
    pub nb: usize,
    /// GEMM blocking used inside a tile.
    pub gemm: GemmConfig,
}

impl Default for FusedCpuConfig {
    fn default() -> Self {
        // 128×512 f32 scratch = 256KB: L2-resident on current cores,
        // mirroring the paper's "tailor the working set to fit in the
        // fast on-chip memory".
        Self {
            mb: 128,
            nb: 512,
            gemm: GemmConfig::default(),
        }
    }
}

impl FusedCpuConfig {
    /// Validates block sizes.
    ///
    /// # Panics
    /// Panics on zero blocks.
    pub fn validate(&self) {
        assert!(
            self.mb > 0 && self.nb > 0,
            "fused CPU blocks must be non-zero"
        );
        self.gemm.validate();
    }
}

/// Fused evaluation (see module docs).
#[must_use]
pub fn solve(p: &KernelSumProblem, cfg: &FusedCpuConfig) -> Vec<f32> {
    cfg.validate();
    let (m, n, _k) = p.dims();
    let a = p.sources().as_row_major();
    let b = p.targets().as_col_major_transposed();
    let vec_a = row_sq_norms(&a);
    let vec_b = col_sq_norms(&b);
    let kernel = p.kernel();
    let weights = p.weights();

    let blocks: Vec<usize> = (0..m).step_by(cfg.mb).collect();
    let mut v = vec![0.0f32; m];
    let chunks: Vec<(usize, Vec<f32>)> = blocks
        .par_iter()
        .map(|&i0| {
            let mb = cfg.mb.min(m - i0);
            let mut v_local = vec![0.0f32; mb];
            // Per-task scratch tile, reused across j-blocks.
            let mut scratch = Matrix::zeros(mb, cfg.nb.min(n).max(1), Layout::RowMajor);
            // Row-slice of A for this task (copy keeps the GEMM simple
            // and the panel hot).
            let a_block = Matrix::from_fn(mb, a.cols(), Layout::RowMajor, |r, c| a.get(i0 + r, c));
            for j0 in (0..n).step_by(cfg.nb) {
                let nb = cfg.nb.min(n - j0);
                let b_block =
                    Matrix::from_fn(b.rows(), nb, Layout::ColMajor, |r, c| b.get(r, j0 + c));
                if scratch.cols() != nb {
                    scratch = Matrix::zeros(mb, nb, Layout::RowMajor);
                }
                gemm_blocked(1.0, &a_block, &b_block, 0.0, &mut scratch, cfg.gemm);
                // Fused evaluation + reduction on the L2-resident tile.
                for r in 0..mb {
                    let na = vec_a[i0 + r];
                    let mut acc = 0.0f32;
                    for c in 0..nb {
                        let d2 = na + vec_b[j0 + c] - 2.0 * scratch.get(r, c);
                        acc += kernel.eval(d2, na, vec_b[j0 + c]) * weights[j0 + c];
                    }
                    v_local[r] += acc;
                }
            }
            (i0, v_local)
        })
        .collect();

    for (i0, local) in chunks {
        v[i0..i0 + local.len()].copy_from_slice(&local);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{GaussianKernel, PolynomialKernel};
    use crate::problem::{KernelSumProblem, PointSet};
    use crate::reference;
    use crate::validate::max_rel_error;

    fn build(m: usize, n: usize, k: usize, seed: u64) -> KernelSumProblem {
        KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(m, k, seed))
            .targets(PointSet::uniform_cube(n, k, seed + 1))
            .weights(PointSet::uniform_cube(n, 1, seed + 2).coords().to_vec())
            .kernel(GaussianKernel { h: 0.8 })
            .build()
    }

    #[test]
    fn matches_reference_with_default_blocks() {
        let p = build(100, 90, 9, 11);
        let got = solve(&p, &FusedCpuConfig::default());
        let want = reference::solve(&p);
        assert!(max_rel_error(&got, &want) < 5e-4);
    }

    #[test]
    fn matches_reference_with_awkward_blocks() {
        let p = build(67, 45, 5, 13);
        let cfg = FusedCpuConfig {
            mb: 7,
            nb: 13,
            gemm: GemmConfig {
                mc: 5,
                kc: 3,
                nc: 9,
            },
        };
        let got = solve(&p, &cfg);
        let want = reference::solve(&p);
        assert!(max_rel_error(&got, &want) < 5e-4);
    }

    #[test]
    fn agrees_with_unfused_cpu() {
        let p = build(128, 257, 16, 17);
        let fused = solve(&p, &FusedCpuConfig::default());
        let unfused = crate::cpu_unfused::solve(&p);
        assert!(max_rel_error(&fused, &unfused) < 1e-3);
    }

    #[test]
    fn polynomial_kernel_through_fused_path() {
        let p = KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(40, 4, 3))
            .targets(PointSet::uniform_cube(30, 4, 4))
            .unit_weights()
            .kernel(PolynomialKernel { c: 1.0, degree: 2 })
            .build();
        let got = solve(&p, &FusedCpuConfig::default());
        let want = reference::solve(&p);
        assert!(max_rel_error(&got, &want) < 2e-3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_blocks() {
        let p = build(8, 8, 2, 1);
        let _ = solve(
            &p,
            &FusedCpuConfig {
                mb: 0,
                nb: 4,
                gemm: GemmConfig::default(),
            },
        );
    }
}
