//! # ks-core — kernel summation library
//!
//! The paper's computational problem as a reusable library: given
//! source points `A ∈ R^{M×K}`, target points `B ∈ R^{K×N}`, and
//! weights `W ∈ R^N`, compute
//!
//! ```text
//! V_i = Σ_j  𝒦(α_i, β_j) · W_j
//! ```
//!
//! for a pairwise kernel `𝒦` (Gaussian in the paper; Laplace, Cauchy
//! and polynomial kernels are provided as the extension point §VI
//! gestures at: "steps similar to those implemented in this paper can
//! be applied to other algorithms").
//!
//! Solvers:
//! * [`mod@reference`] — naive `O(MNK)` oracle (f64 accumulation).
//! * [`cpu_unfused`] — Algorithm 1 on the CPU with the `ks-blas`
//!   substrate (materialises the `M×N` intermediate, like the cuBLAS
//!   pipeline).
//! * [`cpu_fused`] — the paper's fusion idea applied to the CPU cache
//!   hierarchy: per-block GEMM → evaluation → reduction, with the
//!   intermediate confined to an L2-resident scratch tile.
//! * [`gpu`] — the simulated-GTX970 implementations from
//!   `ks-gpu-kernels`, with profiles and energy reports.
//!
//! ```
//! use ks_core::prelude::*;
//!
//! let problem = KernelSumProblem::builder()
//!     .sources(PointSet::uniform_cube(256, 16, 42))
//!     .targets(PointSet::uniform_cube(128, 16, 43))
//!     .unit_weights()
//!     .kernel(GaussianKernel { h: 1.0 })
//!     .build();
//! let v = problem.solve(Backend::CpuFused);
//! assert_eq!(v.len(), 256);
//! ```

#![warn(missing_docs)]

pub mod cpu_fused;
pub mod cpu_unfused;
pub mod gpu;
pub mod kernels;
pub mod logspace;
pub mod multi;
pub mod plan;
pub mod problem;
pub mod reference;
pub mod validate;

pub use cpu_fused::FusedCpuConfig;
pub use gpu::{GpuReport, GpuSolveOutput};
pub use kernels::{CauchyKernel, GaussianKernel, KernelFunction, LaplaceKernel, PolynomialKernel};
pub use logspace::solve_logspace;
pub use multi::{solve_multi_fused, solve_multi_reference, solve_multi_unfused};
pub use plan::{shard_ranges, solve_multi_planned, SourcePlan, SourceSet, SourceSetId};
pub use problem::{Backend, KernelSumProblem, PointSet, ProblemBuilder};
pub use validate::{max_rel_error, rel_l2_error};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::kernels::{
        CauchyKernel, GaussianKernel, KernelFunction, LaplaceKernel, PolynomialKernel,
    };
    pub use crate::problem::{Backend, KernelSumProblem, PointSet};
    pub use crate::validate::{max_rel_error, rel_l2_error};
    pub use ks_gpu_kernels::GpuVariant;
}
