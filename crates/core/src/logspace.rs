//! Log-space kernel summation: `L_i = log Σ_j exp(−d²_{ij}/(2h²)) · w_j`.
//!
//! Gaussian kernel sums underflow catastrophically in f32 once
//! `d²/(2h²)` passes ~88 — at small bandwidths *every* term can flush
//! to zero and the plain solver returns `log 0`. Density estimation
//! and mixture-model E-steps therefore work with the *log* of the sum,
//! computed with the streaming log-sum-exp trick: keep the running
//! maximum exponent `m` and the sum of `exp(x − m)`.
//!
//! The implementation reuses the fused blocking of
//! [`crate::cpu_fused`]: the squared distances for an L2-resident tile
//! are produced by the blocked GEMM, and the log-sum-exp accumulator
//! is folded tile by tile — fusion and numerical robustness compose.
//!
//! Weights must be strictly positive (they enter as `ln w_j`).

use ks_blas::{col_sq_norms, gemm_blocked, row_sq_norms, Layout, Matrix};
use rayon::prelude::*;

use crate::cpu_fused::FusedCpuConfig;
use crate::kernels::{GaussianKernel, KernelFunction};
use crate::problem::KernelSumProblem;

/// Streaming log-sum-exp accumulator.
#[derive(Debug, Clone, Copy)]
struct LogSumExp {
    max: f32,
    sum: f64,
}

impl LogSumExp {
    fn new() -> Self {
        Self {
            max: f32::NEG_INFINITY,
            sum: 0.0,
        }
    }

    #[inline]
    fn push(&mut self, x: f32) {
        if x.is_infinite() && x < 0.0 {
            return;
        }
        if x <= self.max {
            self.sum += f64::from(x - self.max).exp();
        } else {
            // New maximum: rescale the accumulated sum.
            self.sum = self.sum * f64::from(self.max - x).exp() + 1.0;
            self.max = x;
        }
    }

    fn value(&self) -> f32 {
        if self.max == f32::NEG_INFINITY {
            f32::NEG_INFINITY
        } else {
            self.max + (self.sum.ln() as f32)
        }
    }
}

/// Recovers `s = 1/(2h²)` from a Gaussian kernel by probing it at a
/// distance where the response is neither underflowed nor saturated.
///
/// # Panics
/// Panics if no probe yields a usable response (not a Gaussian of
/// finite positive bandwidth).
fn recover_gaussian_scale(kernel: &dyn KernelFunction) -> f32 {
    for d2 in [1.0f32, 1e-2, 1e-4, 1e-6, 1e2, 1e4] {
        let e = kernel.eval(d2, 0.0, 0.0);
        if e > 1e-30 && e < 0.999 {
            return -e.ln() / d2;
        }
    }
    panic!("could not recover a finite Gaussian bandwidth from the kernel");
}

/// Computes `L_i = log Σ_j 𝒦(α_i, β_j) · w_j` for the Gaussian kernel
/// in a numerically stable way (see module docs).
///
/// # Panics
/// Panics if the problem's kernel is not Gaussian, any weight is not
/// strictly positive, or the blocking configuration is invalid.
#[must_use]
pub fn solve_logspace(p: &KernelSumProblem, cfg: &FusedCpuConfig) -> Vec<f32> {
    cfg.validate();
    assert_eq!(
        p.kernel().name(),
        GaussianKernel { h: 1.0 }.name(),
        "log-space evaluation is defined for the Gaussian kernel"
    );
    assert!(
        p.weights().iter().all(|&w| w > 0.0),
        "log-space evaluation needs strictly positive weights"
    );
    // Recover s = 1/(2h²) from the kernel with an adaptive probe: a
    // fixed probe distance underflows for tiny h (exp(−s) → 0) or
    // loses precision for huge h (exp(−εs) → 1).
    let s = recover_gaussian_scale(p.kernel());

    let (m, n, _) = p.dims();
    let a = p.sources().as_row_major();
    let b = p.targets().as_col_major_transposed();
    let vec_a = row_sq_norms(&a);
    let vec_b = col_sq_norms(&b);
    let log_w: Vec<f32> = p.weights().iter().map(|w| w.ln()).collect();

    let blocks: Vec<usize> = (0..m).step_by(cfg.mb).collect();
    let chunks: Vec<(usize, Vec<f32>)> = blocks
        .par_iter()
        .map(|&i0| {
            let mb = cfg.mb.min(m - i0);
            let mut acc = vec![LogSumExp::new(); mb];
            let a_block = Matrix::from_fn(mb, a.cols(), Layout::RowMajor, |r, c| a.get(i0 + r, c));
            let mut scratch = Matrix::zeros(mb, cfg.nb.min(n).max(1), Layout::RowMajor);
            for j0 in (0..n).step_by(cfg.nb) {
                let nb = cfg.nb.min(n - j0);
                let b_block =
                    Matrix::from_fn(b.rows(), nb, Layout::ColMajor, |r, c| b.get(r, j0 + c));
                if scratch.cols() != nb {
                    scratch = Matrix::zeros(mb, nb, Layout::RowMajor);
                }
                gemm_blocked(1.0, &a_block, &b_block, 0.0, &mut scratch, cfg.gemm);
                for (r, lse) in acc.iter_mut().enumerate() {
                    let na = vec_a[i0 + r];
                    for c in 0..nb {
                        let d2 = (na + vec_b[j0 + c] - 2.0 * scratch.get(r, c)).max(0.0);
                        lse.push(-d2 * s + log_w[j0 + c]);
                    }
                }
            }
            (i0, acc.iter().map(LogSumExp::value).collect())
        })
        .collect();

    let mut out = vec![0.0f32; m];
    for (i0, local) in chunks {
        out[i0..i0 + local.len()].copy_from_slice(&local);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Backend, PointSet};

    fn build(m: usize, n: usize, k: usize, h: f32, seed: u64) -> KernelSumProblem {
        KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(m, k, seed))
            .targets(PointSet::uniform_cube(n, k, seed + 1))
            .weights(
                PointSet::uniform_cube(n, 1, seed + 2)
                    .coords()
                    .iter()
                    .map(|v| v + 0.1) // strictly positive
                    .collect(),
            )
            .kernel(GaussianKernel { h })
            .build()
    }

    #[test]
    fn agrees_with_linear_solver_at_moderate_bandwidth() {
        let p = build(80, 70, 6, 0.8, 3);
        let log_v = solve_logspace(&p, &FusedCpuConfig::default());
        let v = p.solve(Backend::Reference);
        for (l, x) in log_v.iter().zip(v.iter()) {
            assert!(
                (l.exp() - x).abs() < 1e-3 * x.max(1e-6),
                "{} vs {}",
                l.exp(),
                x
            );
        }
    }

    #[test]
    fn survives_bandwidths_where_the_linear_solver_underflows() {
        // h = 0.01 in 8-D: typical d² ≈ 1 ⇒ exponent ≈ −5000; every
        // f32 term flushes to zero.
        let p = build(32, 64, 8, 0.01, 5);
        let v = p.solve(Backend::Reference);
        assert!(
            v.iter().all(|&x| x == 0.0),
            "linear solver should underflow here"
        );
        let log_v = solve_logspace(&p, &FusedCpuConfig::default());
        for l in &log_v {
            assert!(l.is_finite(), "log-space must stay finite, got {l}");
            assert!(*l < -80.0, "log-density must be very small, got {l}");
        }
    }

    #[test]
    fn blocking_invariance() {
        let p = build(50, 40, 4, 0.3, 9);
        let base = solve_logspace(&p, &FusedCpuConfig::default());
        let alt = solve_logspace(
            &p,
            &FusedCpuConfig {
                mb: 7,
                nb: 11,
                ..Default::default()
            },
        );
        for (a, b) in base.iter().zip(alt.iter()) {
            assert!((a - b).abs() < 1e-3 * a.abs().max(1.0));
        }
    }

    #[test]
    fn lse_accumulator_handles_neg_infinity_and_rescaling() {
        let mut l = LogSumExp::new();
        assert_eq!(l.value(), f32::NEG_INFINITY);
        l.push(f32::NEG_INFINITY);
        assert_eq!(l.value(), f32::NEG_INFINITY);
        l.push(-1000.0);
        l.push(-999.0); // new max triggers rescale
        let want = (-999.0f64 + (1.0 + (-1.0f64).exp()).ln()) as f32;
        assert!((l.value() - want).abs() < 1e-4, "{} vs {want}", l.value());
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn rejects_non_positive_weights() {
        let p = KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(8, 2, 1))
            .targets(PointSet::uniform_cube(8, 2, 2))
            .weights(vec![1.0, -1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
            .kernel(GaussianKernel { h: 1.0 })
            .build();
        let _ = solve_logspace(&p, &FusedCpuConfig::default());
    }

    #[test]
    #[should_panic(expected = "Gaussian")]
    fn rejects_non_gaussian_kernels() {
        let p = KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(8, 2, 1))
            .targets(PointSet::uniform_cube(8, 2, 2))
            .unit_weights()
            .kernel(crate::kernels::CauchyKernel { h: 1.0 })
            .build();
        let _ = solve_logspace(&p, &FusedCpuConfig::default());
    }
}
