//! Multi-weight kernel summation: `V = K · W` with `R` weight columns.
//!
//! Kernel regression and Nyström-type methods evaluate the same kernel
//! matrix against many weight vectors at once (one per output channel
//! or per preconditioner column). Fusion pays off even more here: the
//! unfused pipeline would read the `M×N` intermediate back once per
//! GEMV, while the fused solver folds all `R` reductions into the
//! per-tile pass — each kernel value is computed once and consumed `R`
//! times from registers.
//!
//! This is the "other algorithms" extension the paper's conclusion
//! gestures at (§VI): the fused structure is unchanged; only the
//! intra-tile reduction widens.

use ks_blas::{col_sq_norms, gemm_parallel, row_sq_norms, GemmConfig, Layout, Matrix};
use rayon::prelude::*;

use crate::cpu_fused::FusedCpuConfig;
use crate::plan::{solve_multi_planned, SourcePlan};
use crate::problem::KernelSumProblem;

fn check_weights(p: &KernelSumProblem, weights: &Matrix) {
    let (_, n, _) = p.dims();
    assert_eq!(
        weights.rows(),
        n,
        "weight matrix must have one row per target (N = {n})"
    );
    assert!(weights.cols() > 0, "need at least one weight column");
}

/// Naive multi-weight oracle: `V[i][r] = Σ_j 𝒦(α_i, β_j) · W[j][r]`.
///
/// # Panics
/// Panics if `weights` is not `N×R`.
#[must_use]
pub fn solve_multi_reference(p: &KernelSumProblem, weights: &Matrix) -> Matrix {
    check_weights(p, weights);
    let (m, n, _) = p.dims();
    let r = weights.cols();
    let kernel = p.kernel();
    let rows: Vec<Vec<f32>> = (0..m)
        .into_par_iter()
        .map(|i| {
            let alpha = p.sources().point(i);
            let na: f32 = alpha.iter().map(|v| v * v).sum();
            let mut acc = vec![0.0f64; r];
            for j in 0..n {
                let beta = p.targets().point(j);
                let mut d2 = 0.0f64;
                for (a, b) in alpha.iter().zip(beta.iter()) {
                    let diff = (*a - *b) as f64;
                    d2 += diff * diff;
                }
                let nb: f32 = beta.iter().map(|v| v * v).sum();
                let kv = kernel.eval(d2 as f32, na, nb) as f64;
                for (c, a) in acc.iter_mut().enumerate() {
                    *a += kv * weights.get(j, c) as f64;
                }
            }
            acc.into_iter().map(|v| v as f32).collect()
        })
        .collect();
    Matrix::from_fn(m, r, Layout::RowMajor, |i, c| rows[i][c])
}

/// Unfused multi-weight evaluation: GEMM → evaluate → GEMM against the
/// `N×R` weight matrix (Algorithm 1 with a fat GEMV).
///
/// # Panics
/// Panics if `weights` is not `N×R`.
#[must_use]
pub fn solve_multi_unfused(p: &KernelSumProblem, weights: &Matrix) -> Matrix {
    check_weights(p, weights);
    let (m, n, _) = p.dims();
    let r = weights.cols();
    let a = p.sources().as_row_major();
    let b = p.targets().as_col_major_transposed();
    let vec_a = row_sq_norms(&a);
    let vec_b = col_sq_norms(&b);
    let mut c = Matrix::zeros(m, n, Layout::RowMajor);
    gemm_parallel(1.0, &a, &b, 0.0, &mut c, GemmConfig::default());
    let kernel = p.kernel();
    {
        let data = c.as_mut_slice();
        data.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            let na = vec_a[i];
            for (j, v) in row.iter_mut().enumerate() {
                let d2 = na + vec_b[j] - 2.0 * *v;
                *v = kernel.eval(d2, na, vec_b[j]);
            }
        });
    }
    let mut v = Matrix::zeros(m, r, Layout::RowMajor);
    gemm_parallel(1.0, &c, weights, 0.0, &mut v, GemmConfig::default());
    v
}

/// Fused multi-weight evaluation: per-tile GEMM → evaluate → fold all
/// `R` weight columns while the tile is cache-resident.
///
/// Delegates to [`solve_multi_planned`] over a freshly built
/// [`SourcePlan`], so single-shot and plan-cached serving paths are
/// bit-identical by construction.
///
/// # Panics
/// Panics if `weights` is not `N×R` or the configuration is invalid.
#[must_use]
pub fn solve_multi_fused(p: &KernelSumProblem, weights: &Matrix, cfg: &FusedCpuConfig) -> Matrix {
    check_weights(p, weights);
    let plan = SourcePlan::build(p.sources());
    solve_multi_planned(&plan, p.targets(), p.kernel(), weights, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{GaussianKernel, LaplaceKernel};
    use crate::problem::{KernelSumProblem, PointSet};

    fn build(m: usize, n: usize, k: usize, seed: u64) -> KernelSumProblem {
        KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(m, k, seed))
            .targets(PointSet::uniform_cube(n, k, seed + 1))
            .unit_weights()
            .kernel(GaussianKernel { h: 0.8 })
            .build()
    }

    fn rand_weights(n: usize, r: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(n, r, Layout::RowMajor, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                let (x, y) = (a.get(i, j), b.get(i, j));
                assert!(
                    (x - y).abs() < tol * y.abs().max(1.0),
                    "({i},{j}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn unfused_matches_reference() {
        let p = build(60, 45, 7, 31);
        let w = rand_weights(45, 3, 32);
        assert_close(
            &solve_multi_unfused(&p, &w),
            &solve_multi_reference(&p, &w),
            1e-3,
        );
    }

    #[test]
    fn fused_matches_reference() {
        let p = build(70, 52, 9, 41);
        let w = rand_weights(52, 4, 42);
        assert_close(
            &solve_multi_fused(&p, &w, &FusedCpuConfig::default()),
            &solve_multi_reference(&p, &w),
            1e-3,
        );
    }

    #[test]
    fn single_column_matches_scalar_solver() {
        let m = 64;
        let p = KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(m, 5, 1))
            .targets(PointSet::uniform_cube(48, 5, 2))
            .weights(rand_weights(48, 1, 3).as_slice().to_vec())
            .kernel(GaussianKernel { h: 0.8 })
            .build();
        let w = rand_weights(48, 1, 3);
        let multi = solve_multi_fused(&p, &w, &FusedCpuConfig::default());
        let single = crate::cpu_fused::solve(&p, &FusedCpuConfig::default());
        for (i, s) in single.iter().enumerate().take(m) {
            assert!((multi.get(i, 0) - s).abs() < 1e-4 * s.abs().max(1.0));
        }
    }

    #[test]
    fn works_with_non_gaussian_kernels() {
        let p = KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(30, 4, 9))
            .targets(PointSet::uniform_cube(20, 4, 10))
            .unit_weights()
            .kernel(LaplaceKernel { h: 0.5 })
            .build();
        let w = rand_weights(20, 2, 11);
        assert_close(
            &solve_multi_fused(&p, &w, &FusedCpuConfig::default()),
            &solve_multi_reference(&p, &w),
            2e-3,
        );
    }

    #[test]
    fn awkward_blocking_is_invariant() {
        let p = build(37, 29, 3, 55);
        let w = rand_weights(29, 5, 56);
        let base = solve_multi_fused(&p, &w, &FusedCpuConfig::default());
        let alt = solve_multi_fused(
            &p,
            &w,
            &FusedCpuConfig {
                mb: 5,
                nb: 7,
                gemm: GemmConfig {
                    mc: 4,
                    kc: 2,
                    nc: 6,
                },
            },
        );
        assert_close(&alt, &base, 1e-3);
    }

    #[test]
    #[should_panic(expected = "one row per target")]
    fn rejects_wrong_weight_shape() {
        let p = build(16, 12, 2, 1);
        let w = rand_weights(10, 2, 2);
        let _ = solve_multi_fused(&p, &w, &FusedCpuConfig::default());
    }
}
