//! Simulated-GPU solvers with profile and energy reporting.
//!
//! Bridges [`KernelSumProblem`] to the `ks-gpu-kernels` pipelines.
//! The GPU kernels implement the paper's Gaussian evaluation in
//! hardware-shaped code, so this backend requires a Gaussian kernel
//! and paper-compatible dimensions (`M, N` multiples of 128, `K` a
//! multiple of 8).

use ks_energy::{pipeline_energy, EnergyBreakdown, EnergyParams};
use ks_gpu_kernels::{GpuKernelSummation, GpuVariant};
use ks_gpu_sim::profiler::PipelineProfile;
use ks_gpu_sim::{GpuDevice, LaunchError};

use crate::kernels::{GaussianKernel, KernelFunction};
use crate::problem::KernelSumProblem;

/// Profile + energy of one simulated run.
#[derive(Debug, Clone)]
pub struct GpuReport {
    /// Per-kernel profiles (counters, traffic, timing).
    pub profile: PipelineProfile,
    /// Four-way energy breakdown.
    pub energy: EnergyBreakdown,
    /// Peak FLOP/s of the simulated device (for efficiency numbers).
    pub peak_gflops: f64,
}

impl GpuReport {
    /// Pipeline FLOP efficiency (Table II).
    #[must_use]
    pub fn flop_efficiency(&self) -> f64 {
        self.profile.flop_efficiency(self.peak_gflops)
    }
}

/// Result of [`solve_gpu`].
#[derive(Debug, Clone)]
pub struct GpuSolveOutput {
    /// The potential vector `V ∈ R^M`.
    pub v: Vec<f32>,
    /// Profile and energy report.
    pub report: GpuReport,
}

/// Extracts the Gaussian bandwidth the GPU kernels need.
///
/// # Panics
/// Panics if the problem's kernel is not Gaussian — the GPU pipelines
/// hard-code the paper's Equation 1 (use the CPU backends for other
/// kernels).
fn bandwidth_of(p: &KernelSumProblem) -> f32 {
    assert_eq!(
        p.kernel().name(),
        GaussianKernel { h: 1.0 }.name(),
        "the simulated GPU pipelines implement the paper's Gaussian kernel only"
    );
    // Recover h from the kernel by probing: 𝒦(d²=2h²) = e^{-1}.
    // eval(1,·,·) = exp(-1/(2h²)) ⇒ h = sqrt(-1 / (2 ln eval)).
    let e = p.kernel().eval(1.0, 0.0, 0.0);
    (-1.0 / (2.0 * e.ln())).sqrt()
}

/// Pads point coordinates from `(count, dim)` to `(count_pad, dim_pad)`
/// with zeros. Zero coordinates do not change pairwise distances in
/// the original dimensions, and padded *points* are neutralised by
/// zero weights (targets) or dropped from the output (sources).
fn pad_points(
    coords: &[f32],
    count: usize,
    dim: usize,
    count_pad: usize,
    dim_pad: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; count_pad * dim_pad];
    for p in 0..count {
        out[p * dim_pad..p * dim_pad + dim].copy_from_slice(&coords[p * dim..(p + 1) * dim]);
    }
    out
}

/// Runs a variant functionally on a fresh simulated GTX970 and
/// returns `V` plus the profile/energy report.
///
/// Dimensions are transparently padded to the GPU tiling constraints
/// (`M, N` to multiples of 128, `K` to a multiple of 8): zero-padding
/// coordinates preserves every pairwise distance, padded targets carry
/// zero weight, and padded sources are dropped from the result.
///
/// # Panics
/// Panics on non-Gaussian kernels (the GPU pipelines hard-code the
/// paper's Equation 1), or if the launch fails — which on the default
/// fault-free GTX 970 means a validation bug, never a soft error.
#[must_use]
pub fn solve_gpu(p: &KernelSumProblem, variant: GpuVariant) -> GpuSolveOutput {
    let mut dev = GpuDevice::gtx970();
    try_solve_gpu_on(&mut dev, p, variant).expect("launch validation")
}

/// [`solve_gpu`] on a caller-supplied device, surfacing launch
/// failures instead of panicking. With fault injection configured on
/// the device ([`ks_gpu_sim::FaultSpec`]), an `Err` is an *injected*
/// launch-level fault (SM loss, watchdog) that callers are expected to
/// handle — retry, degrade, or report.
///
/// # Errors
/// Launch validation failures, and injected launch faults when the
/// device has a fault model.
///
/// # Panics
/// Panics on non-Gaussian kernels (the GPU pipelines hard-code the
/// paper's Equation 1).
pub fn try_solve_gpu_on(
    dev: &mut GpuDevice,
    p: &KernelSumProblem,
    variant: GpuVariant,
) -> Result<GpuSolveOutput, LaunchError> {
    let (m, n, k) = p.dims();
    let h = bandwidth_of(p);
    let m_pad = m.next_multiple_of(128);
    let n_pad = n.next_multiple_of(128);
    let k_pad = k.next_multiple_of(8);
    let a = pad_points(p.sources().coords(), m, k, m_pad, k_pad);
    let b = pad_points(p.targets().coords(), n, k, n_pad, k_pad);
    let mut w = p.weights().to_vec();
    w.resize(n_pad, 0.0);

    let pipeline = GpuKernelSummation::new(m_pad, n_pad, k_pad, h);
    let (mut v, profile) = pipeline.execute(dev, variant, &a, &b, &w)?;
    v.truncate(m);
    let energy = pipeline_energy(&EnergyParams::default(), &profile);
    let peak = dev.config().peak_sp_gflops();
    Ok(GpuSolveOutput {
        v,
        report: GpuReport {
            profile,
            energy,
            peak_gflops: peak,
        },
    })
}

/// Profiles a variant (traffic-only, any size) without numerics.
///
/// # Panics
/// Panics on invalid dimensions, a non-Gaussian kernel, or a launch
/// failure (impossible on the default fault-free device).
#[must_use]
pub fn profile_gpu(m: usize, n: usize, k: usize, h: f32, variant: GpuVariant) -> GpuReport {
    let mut dev = GpuDevice::gtx970();
    try_profile_gpu_on(&mut dev, m, n, k, h, variant).expect("launch validation")
}

/// [`profile_gpu`] on a caller-supplied device, surfacing launch
/// failures — including injected launch faults — instead of panicking.
///
/// # Errors
/// Launch validation failures, and injected launch faults when the
/// device has a fault model.
pub fn try_profile_gpu_on(
    dev: &mut GpuDevice,
    m: usize,
    n: usize,
    k: usize,
    h: f32,
    variant: GpuVariant,
) -> Result<GpuReport, LaunchError> {
    let pipeline = GpuKernelSummation::new(m, n, k, h);
    let profile = pipeline.profile(dev, variant)?;
    let energy = pipeline_energy(&EnergyParams::default(), &profile);
    Ok(GpuReport {
        profile,
        energy,
        peak_gflops: dev.config().peak_sp_gflops(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Backend, PointSet};
    use crate::reference;
    use crate::validate::max_rel_error;

    fn build(m: usize, n: usize, k: usize) -> KernelSumProblem {
        KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(m, k, 100))
            .targets(PointSet::uniform_cube(n, k, 101))
            .weights(PointSet::uniform_cube(n, 1, 102).coords().to_vec())
            .kernel(GaussianKernel { h: 0.9 })
            .build()
    }

    #[test]
    fn bandwidth_recovery_is_exact() {
        let p = build(128, 128, 8);
        assert!((bandwidth_of(&p) - 0.9).abs() < 1e-4);
    }

    #[test]
    fn gpu_backends_match_reference() {
        let p = build(128, 256, 16);
        let want = reference::solve(&p);
        for variant in GpuVariant::ALL {
            let out = solve_gpu(&p, variant);
            assert!(
                max_rel_error(&out.v, &want) < 5e-3,
                "{}: error {}",
                variant.label(),
                max_rel_error(&out.v, &want)
            );
            assert!(out.report.energy.total_j() > 0.0);
            assert!(out.report.flop_efficiency() > 0.0);
        }
    }

    #[test]
    fn backend_enum_routes_to_gpu() {
        let p = build(128, 128, 8);
        let v = p.solve(Backend::GpuSim(GpuVariant::Fused));
        let want = reference::solve(&p);
        assert!(max_rel_error(&v, &want) < 5e-3);
    }

    #[test]
    fn profile_only_reports_at_scale() {
        let r = profile_gpu(4096, 1024, 32, 1.0, GpuVariant::CublasUnfused);
        assert!(r.profile.total_time_s() > 0.0);
        assert!(r.energy.dram_share() > 0.0);
    }

    #[test]
    fn padding_handles_awkward_dimensions() {
        // M, N, K all violate the tiling; padding must hide it.
        let p = KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(100, 3, 50))
            .targets(PointSet::uniform_cube(70, 3, 51))
            .weights(PointSet::uniform_cube(70, 1, 52).coords().to_vec())
            .kernel(GaussianKernel { h: 0.5 })
            .build();
        let want = reference::solve(&p);
        let out = solve_gpu(&p, GpuVariant::Fused);
        assert_eq!(out.v.len(), 100);
        assert!(
            max_rel_error(&out.v, &want) < 5e-3,
            "err {}",
            max_rel_error(&out.v, &want)
        );
    }

    #[test]
    fn injected_launch_faults_surface_as_errors_not_panics() {
        let mut cfg = ks_gpu_sim::DeviceConfig::gtx970();
        cfg.fault = Some(ks_gpu_sim::FaultSpec {
            sm_loss_rate: 1.0,
            ..Default::default()
        });
        let mut dev = GpuDevice::new(cfg);
        let p = build(128, 128, 8);
        let err = try_solve_gpu_on(&mut dev, &p, GpuVariant::Fused);
        assert!(matches!(err, Err(LaunchError::SmLost { .. })), "{err:?}");
        assert_eq!(dev.take_fault_counters().launch_faults, 1);

        let err = try_profile_gpu_on(&mut dev, 1024, 1024, 32, 1.0, GpuVariant::Fused);
        assert!(matches!(err, Err(LaunchError::SmLost { .. })), "{err:?}");
    }

    #[test]
    #[should_panic(expected = "Gaussian kernel only")]
    fn gpu_rejects_non_gaussian() {
        let p = KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(128, 8, 1))
            .targets(PointSet::uniform_cube(128, 8, 2))
            .kernel(crate::kernels::LaplaceKernel { h: 1.0 })
            .build();
        let _ = solve_gpu(&p, GpuVariant::Fused);
    }
}
