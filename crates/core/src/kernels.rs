//! Pairwise kernel functions.
//!
//! Every kernel is evaluated from the quantities the GEMM-based
//! pipeline produces cheaply: the squared distance
//! `d² = ‖α‖² + ‖β‖² − 2αᵀβ` plus the two squared norms (so
//! inner-product kernels can recover `αᵀβ = (‖α‖² + ‖β‖² − d²) / 2`).
//! The paper evaluates the Gaussian; the others are drop-in
//! replacements exercising the same fused structure.

/// A pairwise kernel `𝒦(α, β)` evaluated from GEMM by-products.
pub trait KernelFunction: Sync + Send {
    /// Kernel value given the squared distance `d²` and the squared
    /// norms of the two points.
    fn eval(&self, dist_sq: f32, norm_a_sq: f32, norm_b_sq: f32) -> f32;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// The paper's kernel: `exp(−d² / (2h²))` (Equation 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianKernel {
    /// Bandwidth `h` (Equation 1's constant).
    pub h: f32,
}

impl GaussianKernel {
    /// `1/(2h²)`, the scale the kernels precompute.
    ///
    /// # Panics
    /// Panics unless `h` is finite and positive.
    #[must_use]
    pub fn inv_2h2(&self) -> f32 {
        assert!(
            self.h.is_finite() && self.h > 0.0,
            "bandwidth h must be positive, got {}",
            self.h
        );
        1.0 / (2.0 * self.h * self.h)
    }
}

impl KernelFunction for GaussianKernel {
    fn eval(&self, dist_sq: f32, _na: f32, _nb: f32) -> f32 {
        (-dist_sq.max(0.0) * self.inv_2h2()).exp()
    }

    fn name(&self) -> &'static str {
        "gaussian"
    }
}

/// Laplace / exponential kernel `exp(−‖α−β‖ / h)` (the heat-potential
/// relative the paper's related work discusses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceKernel {
    /// Length scale.
    pub h: f32,
}

impl KernelFunction for LaplaceKernel {
    fn eval(&self, dist_sq: f32, _na: f32, _nb: f32) -> f32 {
        (-dist_sq.max(0.0).sqrt() / self.h).exp()
    }

    fn name(&self) -> &'static str {
        "laplace"
    }
}

/// Cauchy / rational-quadratic kernel `1 / (1 + d²/h²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CauchyKernel {
    /// Length scale.
    pub h: f32,
}

impl KernelFunction for CauchyKernel {
    fn eval(&self, dist_sq: f32, _na: f32, _nb: f32) -> f32 {
        1.0 / (1.0 + dist_sq.max(0.0) / (self.h * self.h))
    }

    fn name(&self) -> &'static str {
        "cauchy"
    }
}

/// Polynomial kernel `(αᵀβ + c)^degree`, recovering the inner product
/// from the distance expansion (the SVM kernel of the paper's §II-A
/// citations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolynomialKernel {
    /// Additive constant.
    pub c: f32,
    /// Degree (≥ 1).
    pub degree: i32,
}

impl KernelFunction for PolynomialKernel {
    fn eval(&self, dist_sq: f32, na: f32, nb: f32) -> f32 {
        let dot = 0.5 * (na + nb - dist_sq);
        (dot + self.c).powi(self.degree)
    }

    fn name(&self) -> &'static str {
        "polynomial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_at_zero_distance_is_one() {
        let k = GaussianKernel { h: 0.5 };
        assert_eq!(k.eval(0.0, 1.0, 1.0), 1.0);
        assert!(k.eval(1.0, 0.0, 0.0) < 1.0);
    }

    #[test]
    fn gaussian_matches_closed_form() {
        let k = GaussianKernel { h: 2.0 };
        let d2 = 3.0f32;
        let want = (-d2 / 8.0).exp();
        assert!((k.eval(d2, 0.0, 0.0) - want).abs() < 1e-7);
    }

    #[test]
    fn kernels_are_monotone_decreasing_in_distance() {
        let ks: Vec<Box<dyn KernelFunction>> = vec![
            Box::new(GaussianKernel { h: 1.0 }),
            Box::new(LaplaceKernel { h: 1.0 }),
            Box::new(CauchyKernel { h: 1.0 }),
        ];
        for k in &ks {
            let mut prev = k.eval(0.0, 0.0, 0.0);
            for d2 in [0.1f32, 0.5, 1.0, 4.0, 16.0] {
                let v = k.eval(d2, 0.0, 0.0);
                assert!(v < prev, "{} not decreasing at {d2}", k.name());
                prev = v;
            }
        }
    }

    #[test]
    fn polynomial_recovers_inner_product() {
        // α = (1,2), β = (3,1): dot = 5, ‖α‖² = 5, ‖β‖² = 10, d² = 5.
        let k = PolynomialKernel { c: 1.0, degree: 2 };
        let v = k.eval(5.0, 5.0, 10.0);
        assert!((v - 36.0).abs() < 1e-5, "{v}");
    }

    #[test]
    fn negative_dist_sq_is_clamped() {
        // Rounding in the expansion can make d² slightly negative.
        let k = GaussianKernel { h: 1.0 };
        assert_eq!(k.eval(-1e-6, 0.0, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn gaussian_rejects_bad_bandwidth() {
        let _ = GaussianKernel { h: -1.0 }.inv_2h2();
    }

    #[test]
    fn names() {
        assert_eq!(GaussianKernel { h: 1.0 }.name(), "gaussian");
        assert_eq!(LaplaceKernel { h: 1.0 }.name(), "laplace");
        assert_eq!(CauchyKernel { h: 1.0 }.name(), "cauchy");
        assert_eq!(PolynomialKernel { c: 0.0, degree: 1 }.name(), "polynomial");
    }
}
