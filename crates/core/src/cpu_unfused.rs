//! Algorithm 1 on the CPU: the unfused BLAS pipeline.
//!
//! Mirrors what the paper's cuBLAS baseline does on the device: a
//! full `C = A·B` GEMM whose `M×N` result is materialised in memory,
//! followed by an element-wise kernel evaluation and a GEMV against
//! the weights. Kept primarily as (a) a second oracle built from
//! independently-tested BLAS parts and (b) the CPU baseline the
//! criterion benches compare the fused implementation against.

use ks_blas::{
    col_sq_norms, gemm_parallel, gemv_parallel, row_sq_norms, GemmConfig, Layout, Matrix,
};
use rayon::prelude::*;

use crate::problem::KernelSumProblem;

/// Unfused evaluation: GEMM → evaluate → GEMV (Algorithm 1).
#[must_use]
pub fn solve(p: &KernelSumProblem) -> Vec<f32> {
    let (m, n, _) = p.dims();
    let a = p.sources().as_row_major();
    let b = p.targets().as_col_major_transposed();

    // Lines 3–4: squared norms.
    let vec_a = row_sq_norms(&a);
    let vec_b = col_sq_norms(&b);

    // Line 10: C = A·B (the intermediate the fused version never forms).
    let mut c = Matrix::zeros(m, n, Layout::RowMajor);
    gemm_parallel(1.0, &a, &b, 0.0, &mut c, GemmConfig::default());

    // Lines 11–14: kernel evaluation, in place.
    let kernel = p.kernel();
    {
        let data = c.as_mut_slice();
        data.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            let na = vec_a[i];
            for (j, v) in row.iter_mut().enumerate() {
                let d2 = na + vec_b[j] - 2.0 * *v;
                *v = kernel.eval(d2, na, vec_b[j]);
            }
        });
    }

    // Line 16: V = K·W.
    let mut v = vec![0.0f32; m];
    gemv_parallel(1.0, &c, p.weights(), 0.0, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{CauchyKernel, GaussianKernel, LaplaceKernel};
    use crate::problem::{KernelSumProblem, PointSet};
    use crate::reference;
    use crate::validate::max_rel_error;

    fn build(m: usize, n: usize, k: usize, seed: u64) -> KernelSumProblem {
        KernelSumProblem::builder()
            .sources(PointSet::uniform_cube(m, k, seed))
            .targets(PointSet::uniform_cube(n, k, seed + 1))
            .weights(PointSet::uniform_cube(n, 1, seed + 2).coords().to_vec())
            .kernel(GaussianKernel { h: 0.7 })
            .build()
    }

    #[test]
    fn matches_reference_on_random_problem() {
        let p = build(90, 70, 11, 5);
        let got = solve(&p);
        let want = reference::solve(&p);
        assert!(max_rel_error(&got, &want) < 5e-4);
    }

    #[test]
    fn works_with_other_kernels() {
        for kernel in [true, false] {
            let mut b = KernelSumProblem::builder()
                .sources(PointSet::uniform_cube(33, 6, 9))
                .targets(PointSet::uniform_cube(41, 6, 10))
                .unit_weights();
            b = if kernel {
                b.kernel(LaplaceKernel { h: 0.5 })
            } else {
                b.kernel(CauchyKernel { h: 0.5 })
            };
            let p = b.build();
            let got = solve(&p);
            let want = reference::solve(&p);
            assert!(max_rel_error(&got, &want) < 1e-3);
        }
    }

    #[test]
    fn single_point_problem() {
        let p = build(1, 1, 4, 77);
        let got = solve(&p);
        let want = reference::solve(&p);
        assert!((got[0] - want[0]).abs() < 1e-5);
    }
}
