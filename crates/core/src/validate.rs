//! Error metrics for comparing solver outputs.

/// Largest element-wise relative error `|a−b| / max(|b|, floor)`,
/// with a floor of 1 to avoid blowing up near-zero entries (kernel
/// sums are non-negative and `O(N)`-scaled, so an absolute floor of 1
/// is conservative).
///
/// # Panics
/// Panics on length mismatch.
#[must_use]
pub fn max_rel_error(got: &[f32], want: &[f32]) -> f32 {
    assert_eq!(got.len(), want.len(), "length mismatch");
    got.iter()
        .zip(want.iter())
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0, f32::max)
}

/// Relative L2 error `‖got − want‖₂ / ‖want‖₂` (0 when both are zero).
///
/// # Panics
/// Panics on length mismatch.
#[must_use]
pub fn rel_l2_error(got: &[f32], want: &[f32]) -> f32 {
    assert_eq!(got.len(), want.len(), "length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (g, w) in got.iter().zip(want.iter()) {
        num += ((g - w) as f64).powi(2);
        den += (*w as f64).powi(2);
    }
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f32::INFINITY
        }
    } else {
        (num / den).sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_zero_error() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(max_rel_error(&v, &v), 0.0);
        assert_eq!(rel_l2_error(&v, &v), 0.0);
    }

    #[test]
    fn known_errors() {
        let got = [2.0, 2.0];
        let want = [1.0, 2.0];
        assert_eq!(max_rel_error(&got, &want), 1.0);
        let l2 = rel_l2_error(&got, &want);
        assert!((l2 - (1.0f32 / 5.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn small_denominators_use_floor() {
        let got = [1e-6];
        let want = [0.0];
        assert!(max_rel_error(&got, &want) < 1e-5);
    }

    #[test]
    fn zero_reference_all_zero() {
        assert_eq!(rel_l2_error(&[0.0], &[0.0]), 0.0);
        assert_eq!(rel_l2_error(&[1.0], &[0.0]), f32::INFINITY);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        let _ = max_rel_error(&[1.0], &[1.0, 2.0]);
    }
}
