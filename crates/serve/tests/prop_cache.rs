//! Property tests of the plan cache: LRU model-checking, counter
//! consistency, and bit-exact rebuild after eviction.

use ks_core::plan::{SourcePlan, SourceSet};
use ks_core::problem::PointSet;
use ks_serve::{PlanCache, PlanKey};
use proptest::prelude::*;

/// Reference LRU: a recency-ordered vec of key indices.
struct ModelLru {
    capacity: usize,
    /// Least-recently-used first.
    entries: Vec<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns whether the access hit.
    fn access(&mut self, key: usize) -> bool {
        if let Some(pos) = self.entries.iter().position(|&k| k == key) {
            let k = self.entries.remove(pos);
            self.entries.push(k);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            if self.entries.len() >= self.capacity {
                self.entries.remove(0);
                self.evictions += 1;
            }
            self.entries.push(key);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The real cache agrees with the reference LRU on every access of
    /// a random sequence: hit/miss outcome, membership, size bound,
    /// and all three counters.
    #[test]
    fn cache_model_checks_against_reference_lru(
        capacity in 1usize..5,
        accesses in proptest::collection::vec(0usize..8, 1..60),
    ) {
        // Eight tiny corpora form the key universe.
        let corpora: Vec<SourceSet> = (0..8)
            .map(|i| SourceSet::new(PointSet::uniform_cube(8, 2, 900 + i)))
            .collect();
        let keys: Vec<PlanKey> =
            corpora.iter().map(|c| PlanKey::new(c, 1.0)).collect();
        let mut cache = PlanCache::new(capacity);
        let mut model = ModelLru::new(capacity);
        for &a in &accesses {
            let (_, hit) =
                cache.get_or_build(keys[a], || SourcePlan::build(corpora[a].points()));
            let model_hit = model.access(a);
            prop_assert_eq!(hit, model_hit, "access {} diverged", a);
            prop_assert!(cache.len() <= capacity, "capacity exceeded");
            prop_assert_eq!(cache.len(), model.entries.len());
            for (i, k) in keys.iter().enumerate() {
                prop_assert_eq!(
                    cache.contains(k),
                    model.entries.contains(&i),
                    "membership of key {} diverged", i
                );
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits, model.hits);
        prop_assert_eq!(s.misses, model.misses);
        prop_assert_eq!(s.evictions, model.evictions);
        prop_assert_eq!(s.accesses(), accesses.len() as u64);
    }

    /// Evicting a plan and rebuilding it reproduces the identical
    /// artifact: same pack bytes, same norms, bit for bit.
    #[test]
    fn evict_and_rebuild_is_bit_exact(
        m in 1usize..8,
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        let corpus = SourceSet::new(PointSet::uniform_cube(8 * m, k, seed));
        let other = SourceSet::new(PointSet::uniform_cube(8, k, seed + 1));
        let key = PlanKey::new(&corpus, 0.9);
        let mut cache = PlanCache::new(1);
        let (first, hit) =
            cache.get_or_build(key, || SourcePlan::build(corpus.points()));
        prop_assert!(!hit);
        // Capacity 1: touching the other corpus must evict `corpus`.
        let _ = cache.get_or_build(PlanKey::new(&other, 0.9), || {
            SourcePlan::build(other.points())
        });
        prop_assert!(!cache.contains(&key), "capacity-1 cache evicted");
        let (rebuilt, hit) =
            cache.get_or_build(key, || SourcePlan::build(corpus.points()));
        prop_assert!(!hit, "post-eviction access is a miss");
        prop_assert_eq!(cache.stats().evictions, 2);
        let bits = |p: &SourcePlan| -> (Vec<u32>, Vec<u32>) {
            (
                p.pack_words().iter().map(|v| v.to_bits()).collect(),
                p.row_sq_norms().iter().map(|v| v.to_bits()).collect(),
            )
        };
        prop_assert_eq!(bits(&first), bits(&rebuilt));
    }
}
