//! Differential harness: served answers vs the single-shot solvers.
//!
//! The serving pipeline (queue → coalesce → plan cache → fused solve)
//! must be *invisible* numerically. On the CPU backend every served
//! result is required to be **bit-identical** to calling
//! `solve_multi_fused` directly with that query alone — coalescing,
//! caching and fallback may change scheduling, never bits. The f64
//! reference oracle bounds absolute correctness separately.

use std::sync::Arc;

use ks_blas::{Layout, Matrix};
use ks_core::plan::SourceSet;
use ks_core::problem::{KernelSumProblem, PointSet};
use ks_core::{solve_multi_fused, solve_multi_reference, FusedCpuConfig, GaussianKernel};
use ks_serve::{
    FaultInjection, Query, ServeBackend, ServeConfig, Server, Submit, Ticket, WorkloadConfig,
};
use rand::distributions::{Distribution, Uniform};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a randomized query stream over a few shared corpora:
/// random corpus choice, random weights, one bandwidth per corpus so
/// sharing actually coalesces.
fn random_queries(seed: u64, count: usize) -> Vec<Query> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weight = Uniform::new(-0.5f32, 0.5f32);
    let dims = [(40usize, 24usize, 5usize), (56, 32, 3), (28, 20, 7)];
    let corpora: Vec<(SourceSet, Arc<PointSet>, f32)> = dims
        .iter()
        .enumerate()
        .map(|(i, &(m, n, k))| {
            (
                SourceSet::new(PointSet::uniform_cube(m, k, seed + 10 + i as u64)),
                Arc::new(PointSet::uniform_cube(n, k, seed + 20 + i as u64)),
                0.6 + 0.2 * i as f32,
            )
        })
        .collect();
    (0..count)
        .map(|_| {
            let (sources, targets, h) = &corpora[rng.gen_range(0..corpora.len())];
            Query {
                sources: sources.clone(),
                targets: Arc::clone(targets),
                weights: (0..targets.len())
                    .map(|_| weight.sample(&mut rng))
                    .collect(),
                h: *h,
                deadline: None,
            }
        })
        .collect()
}

/// Serves `queries` through a paused server (deterministic batch
/// composition) and returns each query's result in submission order.
fn serve_all(cfg: ServeConfig, queries: &[Query]) -> (Vec<Vec<f32>>, ks_serve::ServeReport) {
    let mut cfg = cfg;
    cfg.start_paused = true;
    cfg.queue_capacity = cfg.queue_capacity.max(queries.len());
    let mut srv = Server::start(cfg);
    let tickets: Vec<Ticket> = queries
        .iter()
        .map(|q| match srv.submit(q.clone()) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => panic!("queue sized for the whole stream"),
        })
        .collect();
    srv.resume();
    let results = tickets
        .iter()
        .map(|t| t.wait().expect("query completes"))
        .collect();
    (results, srv.shutdown())
}

/// The single-shot answer for one query: `solve_multi_fused` with just
/// this query's weight column.
fn single_shot(q: &Query) -> Vec<f32> {
    let p = KernelSumProblem::builder()
        .sources(q.sources.points().clone())
        .targets((*q.targets).clone())
        .unit_weights()
        .kernel(GaussianKernel { h: q.h })
        .build();
    let w = Matrix::from_fn(q.weights.len(), 1, Layout::RowMajor, |j, _| q.weights[j]);
    let v = solve_multi_fused(&p, &w, &FusedCpuConfig::default());
    (0..v.rows()).map(|i| v.get(i, 0)).collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: row {i}: {g} vs {w}");
    }
}

fn cpu_cfg() -> ServeConfig {
    ServeConfig {
        backend: ServeBackend::CpuFused,
        ..ServeConfig::default()
    }
}

#[test]
fn served_results_bit_match_single_shot_and_approximate_oracle() {
    let queries = random_queries(101, 24);
    let (results, report) = serve_all(cpu_cfg(), &queries);
    assert!(report.batches < 24, "coalescing must batch shared corpora");
    for (qi, (q, got)) in queries.iter().zip(results.iter()).enumerate() {
        assert_bits_eq(got, &single_shot(q), &format!("query {qi}"));
        // And the served numbers are *correct*, not just consistent:
        // compare against the f64 oracle with a tolerance.
        let p = KernelSumProblem::builder()
            .sources(q.sources.points().clone())
            .targets((*q.targets).clone())
            .unit_weights()
            .kernel(GaussianKernel { h: q.h })
            .build();
        let w = Matrix::from_fn(q.weights.len(), 1, Layout::RowMajor, |j, _| q.weights[j]);
        let oracle = solve_multi_reference(&p, &w);
        for (i, g) in got.iter().enumerate() {
            let x = oracle.get(i, 0);
            assert!(
                (g - x).abs() < 1e-3 * x.abs().max(1.0),
                "query {qi} row {i}: {g} vs oracle {x}"
            );
        }
    }
}

#[test]
fn warm_cache_pass_is_bit_identical_to_cold() {
    let queries = random_queries(202, 12);
    let mut cfg = cpu_cfg();
    cfg.start_paused = true;
    cfg.queue_capacity = 64;
    let mut srv = Server::start(cfg);
    let cold: Vec<Ticket> = queries
        .iter()
        .map(|q| match srv.submit(q.clone()) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => panic!("capacity 64"),
        })
        .collect();
    srv.resume();
    let cold: Vec<Vec<f32>> = cold.iter().map(|t| t.wait().unwrap()).collect();
    // Second pass: every plan is warm now. Batch composition may
    // differ (the worker is live) — bits must not.
    let warm: Vec<Ticket> = queries
        .iter()
        .map(|q| match srv.submit(q.clone()) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => panic!("drained queue accepts"),
        })
        .collect();
    let warm: Vec<Vec<f32>> = warm.iter().map(|t| t.wait().unwrap()).collect();
    let report = srv.shutdown();
    assert!(report.plan_cache.hits > 0, "second pass must hit the cache");
    for (qi, (c, w)) in cold.iter().zip(warm.iter()).enumerate() {
        assert_bits_eq(w, c, &format!("warm query {qi}"));
    }
}

#[test]
fn disabling_the_cache_does_not_change_bits() {
    let queries = random_queries(303, 16);
    let (with_cache, r1) = serve_all(cpu_cfg(), &queries);
    let mut no_cache = cpu_cfg();
    no_cache.enable_plan_cache = false;
    let (without_cache, r2) = serve_all(no_cache, &queries);
    assert!(r1.plan_cache.accesses() > 0);
    assert_eq!(
        r2.plan_cache.accesses(),
        0,
        "disabled cache is never consulted"
    );
    for (qi, (a, b)) in with_cache.iter().zip(without_cache.iter()).enumerate() {
        assert_bits_eq(a, b, &format!("cache-ablation query {qi}"));
    }
}

#[test]
fn gpu_fallback_after_injected_fault_bit_matches_cpu_serving() {
    // Every GPU launch is made to fail, so every batch takes the CPU
    // fallback — the stream's results must be bit-identical to serving
    // on the CPU backend directly.
    let wl = WorkloadConfig {
        m: 48,
        n: 24,
        k: 5,
        ..WorkloadConfig::default()
    };
    let queries = ks_serve::generate_queries(&wl);
    let queries = &queries[..16];
    let gpu_cfg = ServeConfig {
        backend: ServeBackend::GpuFused { cpu_fallback: true },
        fault_injection: FaultInjection::FirstN(u64::MAX),
        ..ServeConfig::default()
    };
    let (via_fallback, report) = serve_all(gpu_cfg, queries);
    assert!(
        report.fallbacks > 0,
        "injected faults must trigger fallback"
    );
    assert_eq!(report.failed, 0, "fallback rescues every query");
    assert!(report.profiles.is_empty(), "no GPU batch ever completed");
    let (via_cpu, _) = serve_all(cpu_cfg(), queries);
    for (qi, (a, b)) in via_fallback.iter().zip(via_cpu.iter()).enumerate() {
        assert_bits_eq(a, b, &format!("fallback query {qi}"));
    }
}
