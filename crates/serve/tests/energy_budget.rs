//! Energy-aware serving: the budget must change *where* the joules go,
//! never *what* the bits are.
//!
//! With an energy budget and a tuned pick carrying a bit-compatible
//! low-power variant, the server downshifts once the modelled J/query
//! exceeds the budget. The bit-compatibility contract (same `block_n`
//! and `micro_n` ⇒ same per-element reduction order) makes the
//! downshifted batches bit-identical to unbudgeted serving — verified
//! here bit-for-bit, not approximately.

use std::sync::Arc;

use ks_core::plan::SourceSet;
use ks_core::problem::PointSet;
use ks_gpu_kernels::TileGeometry;
use ks_gpu_sim::config::DeviceConfig;
use ks_serve::{
    GeometryPick, Query, ServeBackend, ServeConfig, ServeReport, Server, Submit, Ticket,
};
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const M: usize = 100;
const N: usize = 70;
const K: usize = 5;

/// One shared corpus so every query coalesces onto the same raw batch
/// shape — the shape the tuned pick below applies to.
fn queries(count: usize, seed: u64) -> Vec<Query> {
    let sources = SourceSet::new(PointSet::uniform_cube(M, K, seed + 1));
    let targets = Arc::new(PointSet::uniform_cube(N, K, seed + 2));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weight = Uniform::new(-0.5f32, 0.5f32);
    (0..count)
        .map(|_| Query {
            sources: sources.clone(),
            targets: Arc::clone(&targets),
            weights: (0..N).map(|_| weight.sample(&mut rng)).collect(),
            h: 0.8,
            deadline: None,
        })
        .collect()
}

/// A low-power variant in the paper default's bit-compatibility
/// class: same `block_n`/`micro_n` (reduction order), taller
/// microtile rows — a quarter fewer threads doing the same FFMAs with
/// more register reuse, which the energy model prices below the
/// default on this test's batch shape.
fn low_power_variant() -> TileGeometry {
    TileGeometry {
        micro_m: 16,
        ..TileGeometry::paper_default()
    }
}

fn serve_all(cfg: ServeConfig, queries: &[Query]) -> (Vec<Vec<f32>>, ServeReport) {
    let mut cfg = cfg;
    cfg.start_paused = true;
    cfg.queue_capacity = cfg.queue_capacity.max(queries.len());
    let mut srv = Server::start(cfg);
    let tickets: Vec<Ticket> = queries
        .iter()
        .map(|q| match srv.submit(q.clone()) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => panic!("queue sized for the whole stream"),
        })
        .collect();
    srv.resume();
    let results = tickets
        .iter()
        .map(|t| t.wait().expect("query completes"))
        .collect();
    (results, srv.shutdown())
}

fn gpu_config(budget: Option<f64>) -> ServeConfig {
    ServeConfig {
        backend: ServeBackend::GpuFused {
            cpu_fallback: false,
        },
        geometry_picks: vec![GeometryPick {
            m: M,
            n: N,
            k: K,
            geometry: TileGeometry::paper_default(),
            low_power: Some(low_power_variant()),
        }],
        energy_budget_j: budget,
        ..ServeConfig::default()
    }
}

#[test]
fn low_power_variant_is_feasible_and_bit_compatible() {
    let dev = DeviceConfig::gtx970();
    let low = low_power_variant();
    assert!(low.feasibility(&dev).is_ok(), "{low} must be feasible");
    assert!(low.bit_compatible(&TileGeometry::paper_default()));
}

#[test]
fn gpu_serving_reports_positive_energy_per_query() {
    let (_, report) = serve_all(gpu_config(None), &queries(16, 41));
    assert_eq!(report.completed, 16);
    assert!(report.energy_j > 0.0, "GPU batches must account energy");
    assert!(report.j_per_query() > 0.0);
    assert_eq!(report.energy_downshifts, 0, "no budget, no downshift");
    assert!(report.geometry.resolves >= 1);
    assert!(
        report.geometry.hits >= 1,
        "repeat batches of one shape must hit the geometry memo"
    );
}

#[test]
fn exhausted_budget_downshifts_and_stays_bit_identical() {
    let qs = queries(24, 42);
    let (unbudgeted, free) = serve_all(gpu_config(None), &qs);
    // A budget far below one batch's modelled cost: every batch after
    // the first resolves to the low-power variant.
    let (budgeted, capped) = serve_all(gpu_config(Some(1e-9)), &qs);
    assert_eq!(free.completed, 24);
    assert_eq!(capped.completed, 24);
    assert_eq!(free.energy_downshifts, 0);
    assert!(
        capped.energy_downshifts >= 1,
        "an exhausted budget must route batches to the low-power variant"
    );
    assert!(
        capped.energy_j < free.energy_j,
        "downshifted serving must model fewer joules ({} vs {})",
        capped.energy_j,
        free.energy_j
    );
    for (i, (a, b)) in unbudgeted.iter().zip(budgeted.iter()).enumerate() {
        assert_eq!(a.len(), b.len());
        for (j, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "query {i} row {j}: energy routing changed result bits"
            );
        }
    }
}

#[test]
fn config_level_low_power_fallback_downshifts_without_picks() {
    let qs = queries(24, 44);
    let (unbudgeted, _) = serve_all(gpu_config(None), &qs);
    let cfg = ServeConfig {
        backend: ServeBackend::GpuFused {
            cpu_fallback: false,
        },
        low_power: Some(low_power_variant()),
        energy_budget_j: Some(1e-9),
        ..ServeConfig::default()
    };
    let (budgeted, report) = serve_all(cfg, &qs);
    assert_eq!(report.completed, 24);
    assert!(
        report.energy_downshifts >= 1,
        "the config-level fallback must cover shapes without a pick"
    );
    for (a, b) in unbudgeted.iter().zip(budgeted.iter()) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn budget_without_a_low_power_variant_never_downshifts() {
    let mut cfg = gpu_config(Some(1e-9));
    cfg.geometry_picks[0].low_power = None;
    let (_, report) = serve_all(cfg, &queries(16, 43));
    assert_eq!(report.completed, 16);
    assert_eq!(
        report.energy_downshifts, 0,
        "no bit-compatible variant means no downshift, budget or not"
    );
}
