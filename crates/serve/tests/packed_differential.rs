//! Horizontal-fusion differential harness.
//!
//! Packing mutually-unrelated small batches into one routed launch is
//! a *scheduling* change: every segment's blocks execute the unpacked
//! kernel body at the same local coordinates against the same padded
//! buffers, and segments write disjoint outputs. These tests pin the
//! resulting invariant — packed serving is **bit-identical** to
//! unpacked serving, cold and warm, unpooled and pooled, on the plain
//! and ABFT-verified GPU backends — plus the fusion bookkeeping: a
//! packed run spends strictly fewer simulated launches and reports
//! its packed counters, while an unpacked run reports zero.

use ks_serve::{
    generate_small_queries, packed_smoke_workload, PoolConfig, Query, ServeBackend, ServeConfig,
    Server, Submit, Ticket,
};

use ks_gpu_sim::config::{DeviceConfig, Interconnect};

/// The packing smoke stream: waves of 16 mutually-unrelated
/// `(256, 256, 32)` queries over shared corpora and target sets.
fn small_queries() -> Vec<Query> {
    generate_small_queries(&packed_smoke_workload())
}

/// Serves the stream twice through one server — a cold pass (paused,
/// so wave composition is deterministic) and a plan-warm pass — and
/// returns both result sets plus the report.
fn serve_two_passes(
    mut cfg: ServeConfig,
    queries: &[Query],
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, ks_serve::ServeReport) {
    cfg.start_paused = true;
    cfg.queue_capacity = cfg.queue_capacity.max(queries.len());
    let mut srv = Server::start(cfg);
    let submit_all = |srv: &mut Server| -> Vec<Ticket> {
        queries
            .iter()
            .map(|q| match srv.submit(q.clone()) {
                Submit::Accepted(t) => t,
                Submit::Rejected(_) => panic!("queue sized for the stream"),
            })
            .collect()
    };
    let cold = submit_all(&mut srv);
    srv.resume();
    let cold: Vec<Vec<f32>> = cold.iter().map(|t| t.wait().expect("completes")).collect();
    let warm = submit_all(&mut srv);
    let warm: Vec<Vec<f32>> = warm.iter().map(|t| t.wait().expect("completes")).collect();
    (cold, warm, srv.shutdown())
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: row {i}: {g} vs {w}");
    }
}

fn gpu_cfg(pack: bool) -> ServeConfig {
    ServeConfig {
        backend: ServeBackend::GpuFused { cpu_fallback: true },
        pack,
        ..ServeConfig::default()
    }
}

#[test]
fn packed_gpu_serving_is_bit_identical_to_unpacked_cold_and_warm() {
    let queries = small_queries();
    let (base_cold, base_warm, base) = serve_two_passes(gpu_cfg(false), &queries);
    let (cold, warm, packed) = serve_two_passes(gpu_cfg(true), &queries);
    for (qi, (g, w)) in cold.iter().zip(&base_cold).enumerate() {
        assert_bits_eq(g, w, &format!("cold query {qi}"));
    }
    for (qi, (g, w)) in warm.iter().zip(&base_warm).enumerate() {
        assert_bits_eq(g, w, &format!("warm query {qi}"));
    }
    // Fusion bookkeeping: the packed run actually packed...
    assert!(packed.packed_launches > 0, "the smoke stream must pack");
    assert!(
        packed.packed_segments >= 2 * packed.packed_launches,
        "a packed launch carries at least two segments"
    );
    // ...the unpacked run reports zero...
    assert_eq!(base.packed_launches, 0);
    assert_eq!(base.packed_segments, 0);
    // ...and fusion is the whole point: strictly fewer launches for
    // the same stream (16 fused kernels per cold wave become 1).
    assert!(
        packed.launches < base.launches,
        "packed {} vs unpacked {} launches",
        packed.launches,
        base.launches
    );
    assert_eq!(packed.failed, 0);
    assert_eq!(packed.completed, base.completed);
    assert_eq!(packed.attempts, packed.batches + packed.retries);
}

#[test]
fn packed_pooled_serving_is_bit_identical_to_unpacked() {
    let queries = small_queries();
    let (base_cold, base_warm, _) = serve_two_passes(gpu_cfg(false), &queries);
    for devices in [1usize, 2, 4] {
        let mut cfg = gpu_cfg(true);
        cfg.pool = Some(PoolConfig::homogeneous(
            devices,
            DeviceConfig::gtx970(),
            Interconnect::pcie3_x16(),
        ));
        let (cold, warm, report) = serve_two_passes(cfg, &queries);
        for (qi, (g, w)) in cold.iter().zip(&base_cold).enumerate() {
            assert_bits_eq(g, w, &format!("pooled N={devices} cold query {qi}"));
        }
        for (qi, (g, w)) in warm.iter().zip(&base_warm).enumerate() {
            assert_bits_eq(g, w, &format!("pooled N={devices} warm query {qi}"));
        }
        assert!(
            report.packed_launches > 0,
            "N={devices}: pooled packing must fire"
        );
        assert!(report.packed_segments >= 2 * report.packed_launches);
        assert_eq!(report.failed, 0);
        let pool = report.pool.expect("pooled run reports the pool");
        assert_eq!(pool.total_fallbacks(), 0, "healthy pool never falls back");
        assert_eq!(pool.total_trips(), 0);
    }
}

#[test]
fn packed_resilient_serving_is_bit_identical_to_unpacked() {
    let queries = small_queries();
    let mut base_cfg = ServeConfig {
        backend: ServeBackend::GpuResilient,
        ..ServeConfig::default()
    };
    let mut pack_cfg = base_cfg.clone();
    pack_cfg.pack = true;
    base_cfg.pack = false;
    let (base_cold, base_warm, base) = serve_two_passes(base_cfg, &queries);
    let (cold, warm, packed) = serve_two_passes(pack_cfg, &queries);
    for (qi, (g, w)) in cold.iter().zip(&base_cold).enumerate() {
        assert_bits_eq(g, w, &format!("resilient cold query {qi}"));
    }
    for (qi, (g, w)) in warm.iter().zip(&base_warm).enumerate() {
        assert_bits_eq(g, w, &format!("resilient warm query {qi}"));
    }
    assert!(packed.packed_launches > 0);
    assert!(packed.launches < base.launches);
    // Healthy device: the verified path ran and found nothing.
    assert_eq!(packed.corruption_detected, 0);
    assert_eq!(packed.failed, 0);
    assert_eq!(packed.attempts, packed.batches + packed.retries);
}

/// Sweep-scale data faults under packed resilient serving: corruption
/// in a packed launch degrades only its own segments (to the tainted
/// ladder ending at the bit-exact CPU harbor) and every served value
/// stays correct-or-surfaced.
#[test]
fn packed_resilient_corruption_degrades_only_affected_segments() {
    let queries = small_queries();
    let mut cfg = ServeConfig {
        backend: ServeBackend::GpuResilient,
        pack: true,
        ..ServeConfig::default()
    };
    cfg.device.fault = Some(ks_gpu_sim::FaultSpec {
        seed: 13,
        smem_rate: 2.0,
        dram_rate: 1.0,
        ..Default::default()
    });
    let (results, _, report) = serve_two_passes(cfg.clone(), &queries);
    assert_eq!(report.failed, 0, "the ladder always completes");
    assert!(report.packed_launches > 0, "faults must not stop packing");
    assert!(
        report.corruption_detected > 0,
        "sweep-scale flips must trip the per-segment ABFT checks"
    );
    assert!(report.injected_faults > 0);
    assert_eq!(report.attempts, report.batches + report.retries);
    // Correct-or-surfaced: detected corruption was re-served through
    // the tainted ladder, so values match CPU serving within the
    // healthy-GPU tolerance unless an undetected fault was surfaced.
    let (cpu_results, _, _) = serve_two_passes(
        ServeConfig {
            backend: ServeBackend::CpuFused,
            ..ServeConfig::default()
        },
        &queries,
    );
    let mut strayed = 0u64;
    for (got, want) in results.iter().zip(&cpu_results) {
        for (g, w) in got.iter().zip(want.iter()) {
            let diff = (g - w).abs();
            if diff.is_nan() || diff >= 5e-3 * w.abs().max(1.0) {
                strayed += 1;
            }
        }
    }
    assert!(
        strayed == 0 || report.undetected_injected > 0,
        "{strayed} values strayed with no undetected-fault surfacing"
    );
}
