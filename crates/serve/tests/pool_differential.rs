//! Pooled-serving differential harness.
//!
//! Sharding a batch row-wise over N devices is an *exact* partition of
//! the kernel sum: every output row is computed from its own `A` row
//! (plus all of `B`/`W`) in an order independent of the partition, on
//! both backends. These tests pin the resulting invariant — pooled
//! results are **bit-identical** to single-device serving, cold and
//! warm, for N ∈ {1, 2, 4} — and the fault-isolation story: a sick
//! device trips only its own breaker and degrades to the bit-exact
//! CPU path without taking the pool down.

use std::sync::Arc;

use ks_core::plan::SourceSet;
use ks_core::problem::PointSet;
use ks_gpu_sim::config::{DeviceConfig, Interconnect};
use ks_gpu_sim::fault::FaultSpec;
use ks_serve::{
    HealthConfig, PoolConfig, PoolDevice, Query, ServeBackend, ServeConfig, Server, Submit, Ticket,
};
use rand::distributions::{Distribution, Uniform};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A query stream over a few shared corpora sized to span several
/// 128-row GPU tiles, so pools actually shard.
fn pool_queries(seed: u64, count: usize) -> Vec<Query> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weight = Uniform::new(-0.5f32, 0.5f32);
    let dims = [(384usize, 96usize, 8usize), (300, 64, 6)];
    let corpora: Vec<(SourceSet, Arc<PointSet>, f32)> = dims
        .iter()
        .enumerate()
        .map(|(i, &(m, n, k))| {
            (
                SourceSet::new(PointSet::uniform_cube(m, k, seed + 10 + i as u64)),
                Arc::new(PointSet::uniform_cube(n, k, seed + 20 + i as u64)),
                0.7 + 0.2 * i as f32,
            )
        })
        .collect();
    (0..count)
        .map(|_| {
            let (sources, targets, h) = &corpora[rng.gen_range(0..corpora.len())];
            Query {
                sources: sources.clone(),
                targets: Arc::clone(targets),
                weights: (0..targets.len())
                    .map(|_| weight.sample(&mut rng))
                    .collect(),
                h: *h,
                deadline: None,
            }
        })
        .collect()
}

/// Serves the stream twice through one server — a cold pass and a
/// plan-warm pass — and returns both result sets plus the report.
fn serve_two_passes(
    mut cfg: ServeConfig,
    queries: &[Query],
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, ks_serve::ServeReport) {
    cfg.start_paused = true;
    cfg.queue_capacity = cfg.queue_capacity.max(queries.len());
    let mut srv = Server::start(cfg);
    let submit_all = |srv: &mut Server| -> Vec<Ticket> {
        queries
            .iter()
            .map(|q| match srv.submit(q.clone()) {
                Submit::Accepted(t) => t,
                Submit::Rejected(_) => panic!("queue sized for the stream"),
            })
            .collect()
    };
    let cold = submit_all(&mut srv);
    srv.resume();
    let cold: Vec<Vec<f32>> = cold.iter().map(|t| t.wait().expect("completes")).collect();
    let warm = submit_all(&mut srv);
    let warm: Vec<Vec<f32>> = warm.iter().map(|t| t.wait().expect("completes")).collect();
    (cold, warm, srv.shutdown())
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: row {i}: {g} vs {w}");
    }
}

fn pooled(backend: ServeBackend, devices: usize) -> ServeConfig {
    ServeConfig {
        backend,
        pool: Some(PoolConfig::homogeneous(
            devices,
            DeviceConfig::gtx970(),
            Interconnect::pcie3_x16(),
        )),
        ..ServeConfig::default()
    }
}

fn unpooled(backend: ServeBackend) -> ServeConfig {
    ServeConfig {
        backend,
        ..ServeConfig::default()
    }
}

#[test]
fn pooled_cpu_serving_is_bit_identical_to_unpooled_cold_and_warm() {
    let queries = pool_queries(11, 16);
    let (base_cold, base_warm, base) = serve_two_passes(unpooled(ServeBackend::CpuFused), &queries);
    for devices in [1usize, 2, 4] {
        let (cold, warm, report) =
            serve_two_passes(pooled(ServeBackend::CpuFused, devices), &queries);
        for (qi, (g, w)) in cold.iter().zip(&base_cold).enumerate() {
            assert_bits_eq(g, w, &format!("cpu cold N={devices} query {qi}"));
        }
        for (qi, (g, w)) in warm.iter().zip(&base_warm).enumerate() {
            assert_bits_eq(g, w, &format!("cpu warm N={devices} query {qi}"));
        }
        // Counters must not drift: same stream, same coalescing.
        assert_eq!(report.batches, base.batches, "batch count N={devices}");
        assert_eq!(report.batched_queries, base.batched_queries);
        assert_eq!(report.completed, base.completed);
        assert_eq!(report.failed, 0);
        let pool = report.pool.expect("pooled run reports the pool");
        assert_eq!(pool.batches, report.batches);
        if devices > 1 {
            assert!(
                pool.shard_tasks > pool.batches,
                "multi-device pools must actually shard"
            );
        }
    }
}

#[test]
fn pooled_gpu_serving_is_bit_identical_to_unpooled_cold_and_warm() {
    let queries = pool_queries(22, 12);
    let backend = ServeBackend::GpuFused { cpu_fallback: true };
    let (base_cold, base_warm, base) = serve_two_passes(unpooled(backend), &queries);
    assert!(base.profiles.iter().len() > 0, "GPU batches ran unpooled");
    for devices in [1usize, 2, 4] {
        let (cold, warm, report) = serve_two_passes(pooled(backend, devices), &queries);
        for (qi, (g, w)) in cold.iter().zip(&base_cold).enumerate() {
            assert_bits_eq(g, w, &format!("gpu cold N={devices} query {qi}"));
        }
        for (qi, (g, w)) in warm.iter().zip(&base_warm).enumerate() {
            assert_bits_eq(g, w, &format!("gpu warm N={devices} query {qi}"));
        }
        assert_eq!(report.batches, base.batches, "batch count N={devices}");
        assert_eq!(report.batched_queries, base.batched_queries);
        assert_eq!(report.completed, base.completed);
        let pool = report.pool.expect("pooled run reports the pool");
        assert_eq!(pool.total_fallbacks(), 0, "healthy pool never falls back");
        assert_eq!(pool.total_trips(), 0);
        // Transfers were charged over the interconnect.
        let moved: u64 = pool.devices.iter().map(|d| d.transfer_bytes).sum();
        assert!(moved > 0, "pooled GPU serving must charge transfers");
        // Warm placements must have skipped re-uploading A: the
        // second pass hits every per-device shard cache.
        let hits: u64 = pool.devices.iter().map(|d| d.plan_cache.hits).sum();
        assert!(hits > 0, "warm pass must hit the shard-plan caches");
    }
}

#[test]
fn work_stealing_keeps_results_bit_identical() {
    // One device owns every shard (the other three are cold and the
    // router is cache-first after batch one), yet four threads drain
    // the queues — steals execute with the owner's semantics, so bits
    // cannot move.
    let queries = pool_queries(33, 10);
    let backend = ServeBackend::GpuFused { cpu_fallback: true };
    let (base_cold, base_warm, _) = serve_two_passes(unpooled(backend), &queries);
    let mut cfg = pooled(backend, 4);
    if let Some(p) = &mut cfg.pool {
        p.shard_align = 1 << 20; // one giant shard per batch
    }
    let (cold, warm, report) = serve_two_passes(cfg, &queries);
    for (qi, (g, w)) in cold.iter().zip(&base_cold).enumerate() {
        assert_bits_eq(g, w, &format!("steal cold query {qi}"));
    }
    for (qi, (g, w)) in warm.iter().zip(&base_warm).enumerate() {
        assert_bits_eq(g, w, &format!("steal warm query {qi}"));
    }
    let pool = report.pool.expect("pool report");
    assert_eq!(
        pool.shard_tasks, pool.batches,
        "alignment beyond M gives exactly one shard per batch"
    );
}

/// Sweep-scale launch-level fault rates on one device: it trips its
/// own breaker, degrades its shards to the bit-exact CPU path, and
/// the rest of the pool never notices.
#[test]
fn faulted_device_trips_only_its_own_breaker() {
    let queries = pool_queries(44, 14);
    let sick = 2usize;
    let mut devices: Vec<PoolDevice> = (0..4)
        .map(|_| PoolDevice {
            device: DeviceConfig::gtx970(),
            interconnect: Interconnect::pcie3_x16(),
            lifecycle: None,
        })
        .collect();
    devices[sick].device.fault = Some(FaultSpec {
        seed: 0xC0FFEE,
        sm_loss_rate: 1.0, // every launch on this device dies
        ..FaultSpec::default()
    });
    let cfg = ServeConfig {
        backend: ServeBackend::GpuFused { cpu_fallback: true },
        wave: 1, // one batch per query: enough batches to trip
        pool: Some(PoolConfig {
            devices,
            queue_capacity: 8,
            plan_cache_capacity: 8,
            shard_align: 128,
            health: HealthConfig::default(),
        }),
        ..ServeConfig::default()
    };
    let (results, _, report) = serve_two_passes(cfg, &queries);
    assert_eq!(report.failed, 0, "the pool never fails a batch");
    assert_eq!(results.len(), queries.len());
    let pool = report.pool.expect("pool report");
    assert!(
        pool.devices[sick].breaker_trips >= 1,
        "the sick device's breaker must trip"
    );
    assert!(
        pool.devices[sick].cpu_fallbacks >= 1,
        "its shards recover on the CPU"
    );
    for (d, dev) in pool.devices.iter().enumerate() {
        if d != sick {
            assert_eq!(dev.breaker_trips, 0, "device {d} breaker must stay closed");
            assert_eq!(dev.cpu_fallbacks, 0, "device {d} must not fall back");
        }
    }
    // Correct-or-surfaced: launch faults cannot corrupt data, so every
    // served result matches the all-CPU serve bit-exactly where the
    // shard fell back, and within float tolerance where it ran on a
    // healthy GPU. Compare against CPU serving with the GPU tolerance.
    let (cpu_results, _, _) = serve_two_passes(
        ServeConfig {
            backend: ServeBackend::CpuFused,
            ..ServeConfig::default()
        },
        &queries,
    );
    for (qi, (got, want)) in results.iter().zip(&cpu_results).enumerate() {
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w).abs() < 5e-3 * w.abs().max(1.0),
                "query {qi} row {i}: {g} vs cpu {w}"
            );
        }
    }
}

/// Sweep-scale *data* fault rates under the resilient (ABFT-verified)
/// pool backend: corruption on the sick device is detected, surfaced
/// in the counters, and recovered shard-locally.
#[test]
fn pool_chaos_data_faults_are_surfaced_and_recovered() {
    let queries = pool_queries(55, 12);
    let sick = 1usize;
    let mut devices: Vec<PoolDevice> = (0..4)
        .map(|_| PoolDevice {
            device: DeviceConfig::gtx970(),
            interconnect: Interconnect::pcie3_x16(),
            lifecycle: None,
        })
        .collect();
    devices[sick].device.fault = Some(FaultSpec {
        seed: 7,
        smem_rate: 4.0,
        dram_rate: 2.0,
        ..FaultSpec::default()
    });
    let cfg = ServeConfig {
        backend: ServeBackend::GpuResilient,
        wave: 1,
        pool: Some(PoolConfig {
            devices,
            queue_capacity: 8,
            plan_cache_capacity: 8,
            shard_align: 128,
            health: HealthConfig::default(),
        }),
        ..ServeConfig::default()
    };
    let (results, _, report) = serve_two_passes(cfg, &queries);
    assert_eq!(report.failed, 0, "the pool never fails a batch");
    assert_eq!(results.len(), queries.len());
    assert!(
        report.corruption_detected > 0,
        "sweep-scale flips must be caught by verification"
    );
    let pool = report.pool.expect("pool report");
    assert!(
        pool.devices[sick].corruption_detected > 0,
        "detections attribute to the sick device"
    );
    assert!(pool.devices[sick].cpu_fallbacks > 0);
    for (d, dev) in pool.devices.iter().enumerate() {
        if d != sick {
            assert_eq!(dev.breaker_trips, 0, "device {d} breaker must stay closed");
            assert_eq!(
                dev.corruption_detected, 0,
                "device {d} must stay corruption-free"
            );
        }
    }
    // Aggregate stays correct-or-surfaced: detected corruption was
    // replaced by bit-exact CPU shards; the only way a served value
    // may stray beyond the healthy-GPU tolerance is a fault *outside*
    // ABFT coverage — which must then be surfaced in the
    // `undetected_injected` counter (never silent).
    let (cpu_results, _, _) = serve_two_passes(
        ServeConfig {
            backend: ServeBackend::CpuFused,
            ..ServeConfig::default()
        },
        &queries,
    );
    let mut strayed = 0u64;
    for (got, want) in results.iter().zip(&cpu_results) {
        for (g, w) in got.iter().zip(want.iter()) {
            // NaN counts as strayed, so test the complement explicitly.
            let diff = (g - w).abs();
            if diff.is_nan() || diff >= 5e-3 * w.abs().max(1.0) {
                strayed += 1;
            }
        }
    }
    assert!(
        strayed == 0 || report.undetected_injected > 0,
        "{strayed} values strayed with no undetected-fault surfacing"
    );
    assert!(
        report.injected_faults > 0,
        "sweep-scale rates must record fault events"
    );
}
