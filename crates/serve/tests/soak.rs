//! Concurrency soak: many producers, a tiny queue, a slow consumer.
//!
//! Proves the scheduler's liveness and accounting under contention:
//! no deadlock (the test finishes), the queue bound is never exceeded,
//! every submitted query is either rejected by backpressure or
//! completed, and every completion matches the bit-deterministic
//! single-shot oracle.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use ks_blas::{Layout, Matrix};
use ks_core::plan::SourceSet;
use ks_core::problem::{KernelSumProblem, PointSet};
use ks_core::{solve_multi_fused, FusedCpuConfig, GaussianKernel};
use ks_serve::{Query, ServeBackend, ServeConfig, Server, Submit};

const PRODUCERS: usize = 6;
const QUERIES_PER_PRODUCER: usize = 30;
const QUEUE_CAPACITY: usize = 4;

/// Deterministic weights for (producer, index).
fn weights(n: usize, producer: usize, i: usize) -> Vec<f32> {
    PointSet::uniform_cube(n, 1, (producer as u64) << 32 | i as u64)
        .coords()
        .iter()
        .map(|v| v - 0.5)
        .collect()
}

#[test]
fn soak_small_queue_slow_consumer() {
    let sources = SourceSet::new(PointSet::uniform_cube(32, 4, 1));
    let targets = Arc::new(PointSet::uniform_cube(16, 4, 2));
    let h = 0.8f32;
    let cfg = ServeConfig {
        backend: ServeBackend::CpuFused,
        queue_capacity: QUEUE_CAPACITY,
        wave: 3,
        batch_delay: Some(Duration::from_millis(2)),
        ..ServeConfig::default()
    };
    let server = Arc::new(Mutex::new(Server::start(cfg)));

    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let server = Arc::clone(&server);
        let sources = sources.clone();
        let targets = Arc::clone(&targets);
        producers.push(std::thread::spawn(move || {
            // (accepted tickets with their identity, rejected count)
            let mut accepted = Vec::new();
            let mut rejected = 0u64;
            for i in 0..QUERIES_PER_PRODUCER {
                let q = Query {
                    sources: sources.clone(),
                    targets: Arc::clone(&targets),
                    weights: weights(targets.len(), p, i),
                    h,
                    deadline: None,
                };
                match server.lock().expect("server poisoned").submit(q) {
                    Submit::Accepted(t) => accepted.push((i, t)),
                    Submit::Rejected(_) => rejected += 1,
                }
            }
            // Wait outside the lock so the consumer can make progress.
            let results: Vec<(usize, Vec<f32>)> = accepted
                .into_iter()
                .map(|(i, t)| (i, t.wait().expect("accepted query completes")))
                .collect();
            (results, rejected)
        }));
    }

    let mut all_results: Vec<(usize, usize, Vec<f32>)> = Vec::new();
    let mut rejected_by_producers = 0u64;
    for (p, handle) in producers.into_iter().enumerate() {
        let (results, rejected) = handle.join().expect("producer panicked");
        rejected_by_producers += rejected;
        for (i, v) in results {
            all_results.push((p, i, v));
        }
    }
    let server = Arc::try_unwrap(server)
        .unwrap_or_else(|_| panic!("producers joined, server uniquely owned"))
        .into_inner()
        .expect("server poisoned");
    let report = server.shutdown();

    let total = (PRODUCERS * QUERIES_PER_PRODUCER) as u64;
    assert_eq!(report.submitted, total);
    assert_eq!(report.rejected, rejected_by_producers);
    assert_eq!(
        report.rejected + report.completed,
        report.submitted,
        "every query is either bounced or served"
    );
    assert_eq!(report.expired, 0);
    assert_eq!(report.failed, 0);
    assert!(
        report.queue_high_water <= QUEUE_CAPACITY,
        "bound exceeded: {} > {QUEUE_CAPACITY}",
        report.queue_high_water
    );
    assert!(
        report.rejected > 0,
        "a {QUEUE_CAPACITY}-deep queue with a slow consumer must shed load"
    );
    assert!(
        report.batched_queries == report.completed,
        "all completions flow through batches"
    );
    assert_eq!(report.plan_cache.misses, 1, "one corpus, one plan build");

    // Every completion matches the single-shot oracle bit for bit —
    // scheduling nondeterminism must never reach the numbers.
    let p = KernelSumProblem::builder()
        .sources(sources.points().clone())
        .targets((*targets).clone())
        .unit_weights()
        .kernel(GaussianKernel { h })
        .build();
    for (prod, i, got) in &all_results {
        let w = weights(targets.len(), *prod, *i);
        let wm = Matrix::from_fn(w.len(), 1, Layout::RowMajor, |j, _| w[j]);
        let want = solve_multi_fused(&p, &wm, &FusedCpuConfig::default());
        assert_eq!(got.len(), sources.len());
        for (r, g) in got.iter().enumerate() {
            assert_eq!(
                g.to_bits(),
                want.get(r, 0).to_bits(),
                "producer {prod} query {i} row {r}"
            );
        }
    }
}
