//! Self-healing pool differential harness.
//!
//! Pins the drain → evict → readmit loop end to end: a device with a
//! seeded lifecycle fault is drained (its in-flight shards recover on
//! the CPU path, never dropped), evicted (the router stops placing on
//! it and the survivors re-plan shard ranges), and — when the fault is
//! transient — readmitted after a successful probe. The load-bearing
//! invariant is *bit-identity after healing*: once the sick device is
//! out of the placement set, the pool's results are bit-identical to a
//! pool that never faulted, because row-sharding is an exact partition
//! on any active-device count. Link corruption is weaker than a
//! timeout by design — detected and retransmitted on the link, it
//! must not move a single result bit.

use std::sync::Arc;
use std::time::Duration;

use ks_core::plan::SourceSet;
use ks_core::problem::PointSet;
use ks_gpu_sim::config::{DeviceConfig, Interconnect};
use ks_gpu_sim::fault::{LifecycleSpec, LinkFaultSpec};
use ks_serve::{
    HealthConfig, PoolConfig, PoolDevice, Query, ServeBackend, ServeConfig, ServeReport, Server,
    Submit, Ticket,
};
use rand::distributions::{Distribution, Uniform};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A stream over shared corpora sized so every pool device owns a
/// shard each batch (`m = 640` is five 128-row tiles).
fn pool_queries(seed: u64, count: usize) -> Vec<Query> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weight = Uniform::new(-0.5f32, 0.5f32);
    let dims = [(640usize, 96usize, 8usize), (512, 64, 6)];
    let corpora: Vec<(SourceSet, Arc<PointSet>, f32)> = dims
        .iter()
        .enumerate()
        .map(|(i, &(m, n, k))| {
            (
                SourceSet::new(PointSet::uniform_cube(m, k, seed + 10 + i as u64)),
                Arc::new(PointSet::uniform_cube(n, k, seed + 20 + i as u64)),
                0.7 + 0.2 * i as f32,
            )
        })
        .collect();
    (0..count)
        .map(|_| {
            let (sources, targets, h) = &corpora[rng.gen_range(0..corpora.len())];
            Query {
                sources: sources.clone(),
                targets: Arc::clone(targets),
                weights: (0..targets.len())
                    .map(|_| weight.sample(&mut rng))
                    .collect(),
                h: *h,
                deadline: None,
            }
        })
        .collect()
}

fn pool_cfg(backend: ServeBackend, devices: Vec<PoolDevice>, health: HealthConfig) -> ServeConfig {
    ServeConfig {
        backend,
        wave: 1, // one batch per query: every batch advances the epoch
        pool: Some(PoolConfig {
            devices,
            queue_capacity: 64,
            plan_cache_capacity: 8,
            shard_align: 128,
            health,
        }),
        ..ServeConfig::default()
    }
}

fn quiet_devices(n: usize) -> Vec<PoolDevice> {
    (0..n)
        .map(|_| PoolDevice {
            device: DeviceConfig::gtx970(),
            interconnect: Interconnect::pcie3_x16(),
            lifecycle: None,
        })
        .collect()
}

/// Serves `phase_a` then `phase_b` through one server (the worker
/// paused during each submission so batch composition is
/// deterministic) and returns both result sets plus the report.
fn serve_two_phases(
    mut cfg: ServeConfig,
    phase_a: &[Query],
    phase_b: &[Query],
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, ServeReport) {
    cfg.start_paused = true;
    cfg.queue_capacity = cfg.queue_capacity.max(phase_a.len() + phase_b.len());
    let mut srv = Server::start(cfg);
    let submit_all = |srv: &mut Server, queries: &[Query]| -> Vec<Ticket> {
        queries
            .iter()
            .map(|q| match srv.submit(q.clone()) {
                Submit::Accepted(t) => t,
                Submit::Rejected(_) => panic!("queue sized for the stream"),
            })
            .collect()
    };
    let a = submit_all(&mut srv, phase_a);
    srv.resume();
    let a: Vec<Vec<f32>> = a.iter().map(|t| t.wait().expect("completes")).collect();
    let b = submit_all(&mut srv, phase_b);
    let b: Vec<Vec<f32>> = b.iter().map(|t| t.wait().expect("completes")).collect();
    (a, b, srv.shutdown())
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: row {i}: {g} vs {w}");
    }
}

/// Oracle pass: the same stream served unpooled on the CPU backend.
fn cpu_oracle(queries: &[Query]) -> Vec<Vec<f32>> {
    let (a, b, _) = serve_two_phases(
        ServeConfig {
            backend: ServeBackend::CpuFused,
            ..ServeConfig::default()
        },
        queries,
        &[],
    );
    assert!(b.is_empty());
    a
}

/// A permanently lost device is drained, evicted, and the healed pool
/// is **bit-identical** to a never-faulted pool: once the router stops
/// placing on the corpse, the survivors' re-planned shard ranges cover
/// the same rows with the same GPU numerics.
#[test]
fn lost_device_is_evicted_and_the_healed_pool_is_bit_identical() {
    let burn_in = pool_queries(91, 8);
    let compare = pool_queries(92, 10);
    for n in [2usize, 4] {
        let sick = n - 1;
        let mut devices = quiet_devices(n);
        devices[sick].lifecycle = Some(LifecycleSpec {
            seed: 0xDEAD,
            loss_rate: 1.0, // lost at the first epoch, absorbing
            ..LifecycleSpec::default()
        });
        let health = HealthConfig {
            evict_threshold: 1,
            probe_cooldown: u64::MAX / 2, // the corpse is never probed
        };
        let backend = ServeBackend::GpuFused { cpu_fallback: true };
        let (faulted_a, faulted_b, report) =
            serve_two_phases(pool_cfg(backend, devices, health), &burn_in, &compare);
        let (_, clean_b, clean_report) = serve_two_phases(
            pool_cfg(backend, quiet_devices(n), health),
            &burn_in,
            &compare,
        );
        // Healed phase: bit-identical to the never-faulted pool.
        for (qi, (g, w)) in faulted_b.iter().zip(&clean_b).enumerate() {
            assert_bits_eq(g, w, &format!("healed N={n} query {qi}"));
        }
        // Burn-in phase: correct-or-surfaced, never dropped. The sick
        // shards recovered on the CPU path, so compare against the
        // CPU oracle with the GPU tolerance.
        let oracle = cpu_oracle(&burn_in);
        for (qi, (got, want)) in faulted_a.iter().zip(&oracle).enumerate() {
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert!(
                    (g - w).abs() < 5e-3 * w.abs().max(1.0),
                    "burn-in N={n} query {qi} row {i}: {g} vs {w}"
                );
            }
        }
        assert_eq!(report.failed, 0, "the pool never fails a batch");
        let pool = report.pool.expect("pool report");
        assert!(pool.devices[sick].evictions >= 1, "the corpse is evicted");
        assert!(
            pool.devices[sick].lifecycle_losses >= 1,
            "the loss is surfaced in the device report"
        );
        assert_eq!(pool.total_readmissions(), 0, "a corpse never returns");
        assert!(
            pool.devices[sick].cpu_fallbacks >= 1,
            "pre-eviction shards drained to the CPU, not dropped"
        );
        for (d, dev) in pool.devices.iter().enumerate() {
            if d != sick {
                assert_eq!(dev.evictions, 0, "device {d} stays in the pool");
                assert_eq!(dev.lifecycle_losses, 0);
            }
        }
        let clean_pool = clean_report.pool.expect("pool report");
        assert_eq!(clean_pool.total_evictions(), 0, "quiet pool never evicts");
    }
}

/// A flapping device (certain hang, certain recovery: it alternates
/// sick/healthy every epoch) cycles through eviction and probe-success
/// readmission; the pool stays correct-or-surfaced throughout and no
/// shard is ever dropped.
#[test]
fn flapping_device_is_evicted_and_readmitted() {
    let queries = pool_queries(93, 24);
    let sick = 1usize;
    let mut devices = quiet_devices(4);
    devices[sick].lifecycle = Some(LifecycleSpec {
        seed: 5,
        hang_rate: 1.0,
        recover_rate: 1.0,
        ..LifecycleSpec::default()
    });
    let health = HealthConfig {
        evict_threshold: 1,
        // Odd cooldown: the probe lands on the opposite epoch parity,
        // where the flapping device is healthy — so probes succeed.
        probe_cooldown: 3,
    };
    let (results, _, report) = serve_two_phases(
        pool_cfg(ServeBackend::GpuResilient, devices, health),
        &queries,
        &[],
    );
    assert_eq!(report.failed, 0);
    let oracle = cpu_oracle(&queries);
    for (qi, (got, want)) in results.iter().zip(&oracle).enumerate() {
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w).abs() < 5e-3 * w.abs().max(1.0),
                "query {qi} row {i}: {g} vs {w}"
            );
        }
    }
    let pool = report.pool.expect("pool report");
    assert!(pool.devices[sick].evictions >= 1, "hangs evict");
    assert!(
        pool.devices[sick].readmissions >= 1,
        "a healthy-epoch probe readmits"
    );
    assert!(pool.devices[sick].lifecycle_hangs >= 1);
    for (d, dev) in pool.devices.iter().enumerate() {
        if d != sick {
            assert_eq!(dev.evictions, 0, "device {d} never evicts");
            assert_eq!(dev.readmissions, 0);
        }
    }
}

/// The CPU pool policy never launches on a device, so even a violent
/// lifecycle spec is inert there: no evidence, no evictions, results
/// bit-identical to a spec-free pool.
#[test]
fn lifecycle_specs_are_inert_on_the_cpu_backend() {
    let queries = pool_queries(94, 12);
    for n in [2usize, 4] {
        let mut devices = quiet_devices(n);
        devices[0].lifecycle = Some(LifecycleSpec {
            seed: 1,
            hang_rate: 1.0,
            loss_rate: 0.5,
            recover_rate: 1.0,
        });
        let health = HealthConfig::default();
        let (faulted, _, report) = serve_two_phases(
            pool_cfg(ServeBackend::CpuFused, devices, health),
            &queries,
            &[],
        );
        let (clean, _, _) = serve_two_phases(
            pool_cfg(ServeBackend::CpuFused, quiet_devices(n), health),
            &queries,
            &[],
        );
        for (qi, (g, w)) in faulted.iter().zip(&clean).enumerate() {
            assert_bits_eq(g, w, &format!("cpu N={n} query {qi}"));
        }
        let pool = report.pool.expect("pool report");
        assert_eq!(pool.total_evictions(), 0, "no launches, no evidence");
        assert_eq!(pool.total_readmissions(), 0);
        let hangs: u64 = pool.devices.iter().map(|d| d.lifecycle_hangs).sum();
        assert_eq!(hangs, 0, "lifecycle counters stay quiet off-GPU");
    }
}

/// Link corruption is detected and retransmitted *on the link*: it
/// charges time and CRC counters but the payload that lands is clean,
/// so results are bit-identical to a fault-free interconnect.
#[test]
fn link_corruption_retransmits_without_moving_result_bits() {
    let queries = pool_queries(95, 10);
    let mut devices = quiet_devices(4);
    for d in &mut devices {
        d.interconnect.fault = Some(LinkFaultSpec {
            seed: 9,
            corrupt_rate: 0.5,
            timeout_rate: 0.0,
        });
    }
    let backend = ServeBackend::GpuFused { cpu_fallback: true };
    let (corrupt, _, report) = serve_two_phases(
        pool_cfg(backend, devices, HealthConfig::default()),
        &queries,
        &[],
    );
    let (clean, _, clean_report) = serve_two_phases(
        pool_cfg(backend, quiet_devices(4), HealthConfig::default()),
        &queries,
        &[],
    );
    for (qi, (g, w)) in corrupt.iter().zip(&clean).enumerate() {
        assert_bits_eq(g, w, &format!("link-corrupt query {qi}"));
    }
    let pool = report.pool.expect("pool report");
    let crc: u64 = pool.devices.iter().map(|d| d.link_crc_detected).sum();
    let retx: u64 = pool.devices.iter().map(|d| d.link_retransmits).sum();
    assert!(crc > 0, "a 0.5 corruption rate must trip the CRC ledger");
    assert_eq!(crc, retx, "every detected corruption retransmits once");
    assert_eq!(pool.total_link_timeouts(), 0);
    assert_eq!(pool.total_evictions(), 0, "corruption alone never evicts");
    // Retransmits charge the link: strictly more transfer time than
    // the clean pool for the same bytes.
    let clean_pool = clean_report.pool.expect("pool report");
    let time =
        |p: &ks_serve::PoolReport| -> f64 { p.devices.iter().map(|d| d.transfer_time_s).sum() };
    let bytes =
        |p: &ks_serve::PoolReport| -> u64 { p.devices.iter().map(|d| d.transfer_bytes).sum() };
    assert_eq!(bytes(&pool), bytes(&clean_pool), "payload bytes unchanged");
    assert!(time(&pool) > time(&clean_pool), "retransmits cost time");
}

/// A certain-timeout interconnect fails every GPU shard on its device:
/// the shards drain to the CPU (never dropped), the timeouts are
/// surfaced, and the device is evicted like any other chronically sick
/// member.
#[test]
fn link_timeouts_fail_shards_and_evict_the_device() {
    let queries = pool_queries(96, 12);
    let sick = 2usize;
    let mut devices = quiet_devices(4);
    devices[sick].interconnect.fault = Some(LinkFaultSpec {
        seed: 3,
        corrupt_rate: 0.0,
        timeout_rate: 1.0,
    });
    let health = HealthConfig {
        evict_threshold: 2,
        probe_cooldown: 4,
    };
    let (results, _, report) = serve_two_phases(
        pool_cfg(
            ServeBackend::GpuFused { cpu_fallback: true },
            devices,
            health,
        ),
        &queries,
        &[],
    );
    assert_eq!(report.failed, 0);
    assert_eq!(results.len(), queries.len(), "every query answered");
    let oracle = cpu_oracle(&queries);
    for (qi, (got, want)) in results.iter().zip(&oracle).enumerate() {
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w).abs() < 5e-3 * w.abs().max(1.0),
                "query {qi} row {i}: {g} vs {w}"
            );
        }
    }
    let pool = report.pool.expect("pool report");
    assert!(pool.devices[sick].link_timeouts >= 1, "timeouts surfaced");
    assert!(pool.devices[sick].evictions >= 1, "chronic timeouts evict");
    assert!(
        pool.devices[sick].cpu_fallbacks >= 1,
        "timed-out shards drain to the CPU"
    );
    for (d, dev) in pool.devices.iter().enumerate() {
        if d != sick {
            assert_eq!(dev.link_timeouts, 0, "device {d} links stay clean");
            assert_eq!(dev.evictions, 0);
        }
    }
}

/// The brownout sheds only under pressure: a generous deadline on a
/// healthy pool completes everything with `shed == 0` and the
/// accounting identity intact.
#[test]
fn generous_deadlines_never_shed_and_accounting_holds() {
    let mut queries = pool_queries(97, 10);
    for q in &mut queries {
        q.deadline = Some(std::time::Instant::now() + Duration::from_secs(120));
    }
    let (results, _, report) = serve_two_phases(
        pool_cfg(
            ServeBackend::GpuFused { cpu_fallback: true },
            quiet_devices(2),
            HealthConfig::default(),
        ),
        &queries,
        &[],
    );
    assert_eq!(results.len(), queries.len());
    assert_eq!(report.shed, 0, "no pressure, no shedding");
    assert_eq!(
        report.accepted,
        report.completed + report.expired + report.shed + report.failed
    );
}
