//! Property tests of the resilient ladder (ISSUE 5): the backoff
//! schedule is pure and bounded, every fault sequence terminates
//! within the attempt budget, and — the load-bearing property — every
//! query ends in either a *correct* result (bit-identical to the CPU
//! reference on the CPU rung, oracle-close on the GPU rungs) or a
//! surfaced error. Never a silent wrong answer.

use std::sync::Arc;
use std::time::Duration;

use ks_blas::{Layout, Matrix};
use ks_core::plan::SourceSet;
use ks_core::problem::{KernelSumProblem, PointSet};
use ks_core::{solve_multi_reference, GaussianKernel};
use ks_gpu_sim::FaultSpec;
use ks_serve::{
    backoff_delay, FaultInjection, Query, ResilienceConfig, ServeBackend, ServeConfig, ServeReport,
    Server, Submit, Ticket,
};
use proptest::prelude::*;

fn queries(seed: u64, count: usize) -> Vec<Query> {
    let sources = SourceSet::new(PointSet::uniform_cube(40, 5, seed));
    let targets = Arc::new(PointSet::uniform_cube(24, 5, seed ^ 0xA5));
    (0..count)
        .map(|i| Query {
            sources: sources.clone(),
            targets: Arc::clone(&targets),
            weights: PointSet::uniform_cube(24, 1, seed + 100 + i as u64)
                .coords()
                .iter()
                .map(|v| v - 0.5)
                .collect(),
            h: 0.8,
            deadline: None,
        })
        .collect()
}

/// Serves the stream on a paused server; the ladder must complete
/// every query, so `wait` is unwrapped.
fn serve_all(cfg: ServeConfig, qs: &[Query]) -> (Vec<Vec<f32>>, ServeReport) {
    let mut cfg = cfg;
    cfg.start_paused = true;
    cfg.queue_capacity = cfg.queue_capacity.max(qs.len());
    // Keep retry sleeps negligible under proptest iteration counts.
    cfg.resilience.backoff_base = Duration::from_micros(1);
    let mut srv = Server::start(cfg);
    let tickets: Vec<Ticket> = qs
        .iter()
        .map(|q| match srv.submit(q.clone()) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => panic!("queue sized for the stream"),
        })
        .collect();
    srv.resume();
    let results = tickets
        .iter()
        .map(|t| t.wait().expect("the resilient ladder always completes"))
        .collect();
    (results, srv.shutdown())
}

/// The f64 oracle for one query.
fn oracle(q: &Query) -> Vec<f32> {
    let p = KernelSumProblem::builder()
        .sources(q.sources.points().clone())
        .targets((*q.targets).clone())
        .unit_weights()
        .kernel(GaussianKernel { h: q.h })
        .build();
    let w = Matrix::from_fn(q.weights.len(), 1, Layout::RowMajor, |j, _| q.weights[j]);
    let v = solve_multi_reference(&p, &w);
    (0..v.rows()).map(|i| v.get(i, 0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The schedule replays exactly for a fixed seed, grows strictly
    /// until the exponent clamp, and is bounded: every delay is at
    /// most `base·(2^10 + 1)` regardless of attempt number.
    #[test]
    fn backoff_schedule_is_pure_increasing_and_bounded(
        seed in any::<u64>(),
        batch in any::<u64>(),
    ) {
        let rc = ResilienceConfig { backoff_seed: seed, ..ResilienceConfig::default() };
        let replay = ResilienceConfig { backoff_seed: seed, ..ResilienceConfig::default() };
        let cap = rc.backoff_base * (1 << 10) + rc.backoff_base;
        for attempt in 0..64u32 {
            prop_assert_eq!(
                backoff_delay(&rc, batch, attempt),
                backoff_delay(&replay, batch, attempt),
                "fixed seed replays the schedule"
            );
            prop_assert!(backoff_delay(&rc, batch, attempt) <= cap, "bounded at the clamp");
            if attempt < 10 {
                prop_assert!(
                    backoff_delay(&rc, batch, attempt + 1) > backoff_delay(&rc, batch, attempt),
                    "strictly increasing below the clamp"
                );
            }
        }
    }

    /// Any mix of injected launch faults and device data faults ends
    /// with every query answered correctly (within the GPU tolerance
    /// of the f64 oracle) and the attempt accounting consistent and
    /// bounded — the ladder terminates inside its budget.
    #[test]
    fn fault_sequences_end_correct_or_surfaced_never_silent(
        seed in 0u64..1000,
        launch_faults in 0u64..6,
        data_faults in 0usize..3,
    ) {
        let mut cfg = ServeConfig {
            backend: ServeBackend::GpuResilient,
            fault_injection: FaultInjection::FirstN(launch_faults),
            ..ServeConfig::default()
        };
        // 0: clean device; 1: SMEM flips (ABFT-covered); 2: SMEM flips
        // plus launch-level faults (SM loss / watchdog).
        if data_faults > 0 {
            cfg.device.fault = Some(FaultSpec {
                seed: seed ^ 0xFA017,
                smem_rate: 2.0,
                sm_loss_rate: if data_faults > 1 { 0.3 } else { 0.0 },
                watchdog_rate: if data_faults > 1 { 0.2 } else { 0.0 },
                ..FaultSpec::default()
            });
        }
        let rc_attempts = u64::from(cfg.resilience.gpu_attempts);
        let qs = queries(seed, 3);
        let (results, report) = serve_all(cfg, &qs);
        prop_assert_eq!(report.completed, qs.len() as u64, "ladder completes everything");
        prop_assert_eq!(report.failed, 0);
        prop_assert_eq!(report.internal_errors, 0);
        // Accounting: every batch makes one first attempt; each extra
        // attempt is one retry; the ladder never exceeds its budget of
        // `gpu_attempts` verified + 1 unverified + 1 CPU per batch.
        prop_assert_eq!(report.attempts, report.batches + report.retries);
        prop_assert!(report.attempts <= report.batches * (rc_attempts + 2));
        for (qi, (q, got)) in qs.iter().zip(results.iter()).enumerate() {
            let want = oracle(q);
            prop_assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                prop_assert!(
                    (g - w).abs() <= 5e-3 * w.abs().max(1.0),
                    "query {} row {}: served {} vs oracle {} — silent wrong answer",
                    qi, i, g, w
                );
            }
        }
    }

    /// When every GPU attempt is made to fail, each query lands on the
    /// CPU safe harbor and the answer is **bit-identical** to serving
    /// the same stream on the CPU backend directly.
    #[test]
    fn exhausted_ladder_is_bit_identical_to_cpu_serving(seed in 0u64..1000) {
        let qs = queries(seed, 3);
        let resilient = ServeConfig {
            backend: ServeBackend::GpuResilient,
            fault_injection: FaultInjection::FirstN(u64::MAX),
            ..ServeConfig::default()
        };
        let (via_ladder, report) = serve_all(resilient, &qs);
        prop_assert_eq!(report.degraded_completions, report.completed);
        prop_assert_eq!(report.fallbacks, report.batches);
        prop_assert!(report.profiles.is_empty(), "no GPU attempt completed");
        let cpu = ServeConfig { backend: ServeBackend::CpuFused, ..ServeConfig::default() };
        let (via_cpu, _) = serve_all(cpu, &qs);
        for (qi, (a, b)) in via_ladder.iter().zip(via_cpu.iter()).enumerate() {
            prop_assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "query {} row {}", qi, i);
            }
        }
    }
}
