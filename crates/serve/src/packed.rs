//! Horizontal fusion: the `PackedBatch` planner and the packed-wave
//! executor.
//!
//! The worker only coalesces queries that share one
//! `(corpus, h, targets)` key, so at serving scale a wave of mutually
//! *unrelated* small queries launches back-to-back with most SMs idle
//! — a 256×256 batch fills 4 of the GTX 970's 26 resident block slots
//! per wave. This module packs those launches horizontally: prepared
//! chunks whose resolved [`TileGeometry`] matches and whose grids are
//! small are grouped into one
//! [`ks_gpu_kernels::FusedMultiPacked`] launch, where a per-block
//! routing table maps each thread block to its own segment's buffers.
//!
//! Results are **bit-identical** to serving every chunk unpacked: a
//! segment's blocks execute the unpacked kernel body at the same local
//! coordinates against the same padded data, and segments write
//! disjoint outputs (the differential suite in
//! `tests/packed_differential.rs` pins this).
//!
//! Eligibility is conservative by construction:
//!
//! * `gx ≤ 2` column blocks per segment — at most two atomic
//!   contributors fold into each output element, which is the
//!   documented determinism envelope of the fused kernel's relaxed
//!   atomic drain (two-operand float addition commutes).
//! * a small per-segment block budget ([`PACK_MAX_SEGMENT_BLOCKS`]) —
//!   packing exists to fuse *underfilling* launches; a grid that
//!   already saturates the device gains nothing and only delays its
//!   wave-mates.

use std::sync::Arc;

use ks_core::plan::SourcePlan;
use ks_core::problem::PointSet;
use ks_gpu_kernels::{
    execute_fused_multi_packed_with, PackedSegmentSpec, TileGeometry, VerifyReport,
};
use ks_gpu_sim::device::GpuDevice;
use ks_gpu_sim::kernel::LaunchError;
use ks_gpu_sim::profiler::PipelineProfile;

use crate::executor::{pad_batch, PaddedBatch};

/// Largest per-segment grid (in thread blocks, after padding) the
/// planner will pack. Segments above this already occupy a meaningful
/// fraction of the device and serve better back-to-back.
pub const PACK_MAX_SEGMENT_BLOCKS: usize = 16;

/// Largest per-segment column-block count (`gx`) the planner packs:
/// with `gx ≤ 2` at most two blocks atomically fold into any output
/// element, the envelope within which the fused kernel's relaxed
/// atomic drain is bit-deterministic.
pub const PACK_MAX_COL_BLOCKS: usize = 2;

/// Whether a batch of raw shape `(m, n)` is pack-eligible under `geo`.
#[must_use]
pub fn packable(m: usize, n: usize, geo: &TileGeometry) -> bool {
    let gy = m.div_ceil(geo.block_m);
    let gx = n.div_ceil(geo.block_n);
    gx <= PACK_MAX_COL_BLOCKS && gx * gy <= PACK_MAX_SEGMENT_BLOCKS
}

/// The horizontal-fusion plan over one wave of prepared chunks:
/// `groups` are packed waves (≥ 2 chunks sharing a resolved geometry,
/// wave order preserved within a group); everything else serves
/// unpacked.
pub(crate) struct PackedBatch {
    /// Chunk indices per packed wave, in first-arrival order.
    pub(crate) groups: Vec<Vec<usize>>,
}

impl PackedBatch {
    /// Plans one wave. `classes[i]` is `Some(geometry)` when chunk `i`
    /// is pack-eligible (admitted, small, determinism envelope) and
    /// `None` otherwise. Chunks grouped together always share a
    /// geometry bit-for-bit; singleton classes stay unpacked.
    pub(crate) fn plan(classes: &[Option<TileGeometry>]) -> Self {
        let mut groups: Vec<(TileGeometry, Vec<usize>)> = Vec::new();
        for (i, class) in classes.iter().enumerate() {
            let Some(geo) = class else { continue };
            match groups.iter_mut().find(|(g, _)| g == geo) {
                Some((_, members)) => members.push(i),
                None => groups.push((*geo, vec![i])),
            }
        }
        Self {
            groups: groups
                .into_iter()
                .filter(|(_, m)| m.len() >= 2)
                .map(|(_, m)| m)
                .collect(),
        }
    }
}

/// One segment of a packed wave, as the server prepares it: the
/// chunk's plan, targets, bandwidth and weight columns, plus whether
/// its plan arrived warm (precomputed norms ship instead of a norms
/// launch — exactly the unpacked plan-hit path).
pub(crate) struct PackedSegment {
    pub(crate) plan: Arc<SourcePlan>,
    pub(crate) targets: Arc<PointSet>,
    pub(crate) h: f32,
    pub(crate) weights: Vec<Vec<f32>>,
    pub(crate) warm: bool,
}

/// What one packed wave hands back: per-segment per-column results,
/// the wave's single pipeline profile, and per-segment ABFT reports
/// when the verified path ran.
pub(crate) struct PackedOutcome {
    pub(crate) results: Vec<Vec<Vec<f32>>>,
    pub(crate) profile: PipelineProfile,
    pub(crate) verify: Option<Vec<VerifyReport>>,
}

/// Runs one packed wave on `dev`: pads every segment exactly as the
/// unpacked executor would, keys upload deduplication on the plan and
/// target-set identities (clones of one `Arc` are byte-identical, and
/// all `Arc`s are alive for the whole call, so pointer keys cannot
/// alias), and unpads each segment's result slice.
///
/// # Errors
/// Propagates launch-validation failures and injected launch-level
/// faults; the server degrades the affected segments individually.
pub(crate) fn execute_gpu_packed(
    dev: &mut GpuDevice,
    segs: &[PackedSegment],
    geo: &TileGeometry,
    verify: bool,
) -> Result<PackedOutcome, LaunchError> {
    let padded: Vec<PaddedBatch> = segs
        .iter()
        .map(|s| pad_batch(&s.plan, &s.targets, &s.weights, s.warm, geo))
        .collect();
    let specs: Vec<PackedSegmentSpec> = segs
        .iter()
        .zip(&padded)
        .map(|(s, p)| PackedSegmentSpec {
            shape: p.shape,
            h: s.h,
            a: &p.a,
            b: &p.b,
            w_cols: &p.w_cols,
            a2: p.a2.as_deref(),
            a_key: Some(Arc::as_ptr(&s.plan) as u64),
            b_key: Some(Arc::as_ptr(&s.targets) as u64),
        })
        .collect();
    let (vs, profile, verify) = execute_fused_multi_packed_with(dev, geo, &specs, verify)?;
    let results = padded.iter().zip(&vs).map(|(p, v)| p.unpad(v)).collect();
    Ok(PackedOutcome {
        results,
        profile,
        verify,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packable_enforces_the_determinism_envelope_and_block_budget() {
        let geo = TileGeometry::paper_default();
        assert!(packable(256, 256, &geo), "2×2 blocks, gx = 2");
        assert!(packable(1, 1, &geo), "1×1 after padding");
        assert!(!packable(256, 512, &geo), "gx = 4 exceeds the envelope");
        assert!(
            !packable(2048, 256, &geo),
            "32 blocks exceed the per-segment budget"
        );
    }

    #[test]
    fn planner_groups_by_geometry_and_drops_singletons() {
        let a = TileGeometry::paper_default();
        let mut b = a;
        b.double_buffer_depth = if a.double_buffer_depth == 2 { 1 } else { 2 };
        let classes = [Some(a), None, Some(b), Some(a), Some(a), Some(b)];
        let plan = PackedBatch::plan(&classes);
        assert_eq!(plan.groups, vec![vec![0, 3, 4], vec![2, 5]]);

        let lonely = [Some(a), None, Some(b)];
        assert!(
            PackedBatch::plan(&lonely).groups.is_empty(),
            "singleton classes never pack"
        );
    }
}
