//! Shard placement policy for the device pool.
//!
//! The router decides which device owns each shard task. Placement is
//! **load-aware** (fewest queued tasks wins) but **cache-first**: a
//! device whose shard-plan cache already holds this `(plan, shard)` is
//! preferred over any cold device regardless of load, because a warm
//! placement skips both the `norms(A)` kernel launch and the shard's
//! `A`-pack upload over the interconnect — the pool-level analogue of
//! the paper's intra-kernel reuse argument.
//!
//! Ties break to the lowest device index, so placement is a pure
//! deterministic function of `(warm, depth)`: replaying a workload
//! replays the exact shard→device assignment, which the differential
//! suite relies on.

/// Picks the device for one shard task.
///
/// `warm[d]` says whether device `d` has the shard's plan resident;
/// `depth[d]` is its current queue depth (queued plus already placed
/// this batch). Warm devices are preferred; within a class the
/// shallowest queue wins; ties go to the lowest index.
///
/// # Panics
/// Panics if the slices are empty or disagree in length.
#[must_use]
pub fn place(warm: &[bool], depth: &[usize]) -> usize {
    place_masked(warm, depth, &vec![true; warm.len()])
}

/// [`place`] restricted to an eligibility mask: only devices with
/// `eligible[d]` are considered, so the health monitor can evict a
/// sick device from placement without the policy changing for the
/// rest of the pool. With an all-true mask this is exactly [`place`].
///
/// # Panics
/// Panics if the slices are empty, disagree in length, or no device
/// is eligible.
#[must_use]
pub fn place_masked(warm: &[bool], depth: &[usize], eligible: &[bool]) -> usize {
    assert!(!warm.is_empty(), "placement over an empty pool");
    assert_eq!(warm.len(), depth.len(), "warm/depth length mismatch");
    assert_eq!(warm.len(), eligible.len(), "warm/eligible length mismatch");
    let best_in = |class: &mut dyn Iterator<Item = usize>| -> Option<usize> {
        class.min_by_key(|&d| (depth[d], d))
    };
    best_in(&mut (0..warm.len()).filter(|&d| eligible[d] && warm[d]))
        .or_else(|| best_in(&mut (0..warm.len()).filter(|&d| eligible[d])))
        .expect("placement needs at least one eligible device")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pool_balances_by_depth_with_index_tiebreak() {
        assert_eq!(place(&[false; 4], &[0, 0, 0, 0]), 0, "tie → lowest");
        assert_eq!(place(&[false; 4], &[1, 0, 0, 0]), 1);
        assert_eq!(place(&[false; 4], &[1, 1, 0, 0]), 2);
        assert_eq!(place(&[false; 4], &[2, 1, 3, 1]), 1);
    }

    #[test]
    fn warm_device_wins_even_when_deeper() {
        assert_eq!(
            place(&[false, false, true, false], &[0, 0, 5, 0]),
            2,
            "cache residency beats load"
        );
        // Among several warm devices, load decides again.
        assert_eq!(place(&[true, false, true, false], &[3, 0, 1, 0]), 2);
        assert_eq!(place(&[true, true, false, false], &[2, 2, 0, 0]), 0);
    }

    #[test]
    fn placement_is_deterministic() {
        let warm = [false, true, false];
        let depth = [1, 4, 1];
        assert_eq!(place(&warm, &depth), place(&warm, &depth));
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn rejects_empty_pool() {
        let _ = place(&[], &[]);
    }

    #[test]
    fn masked_placement_skips_evicted_devices() {
        // The warm winner is ineligible: warmth on eligible devices
        // still beats load, then load decides.
        assert_eq!(
            place_masked(
                &[false, true, false, true],
                &[0, 0, 0, 5],
                &[true, false, true, true],
            ),
            3,
            "the only eligible warm device wins despite its depth"
        );
        assert_eq!(
            place_masked(
                &[false, true, false, false],
                &[0, 0, 1, 0],
                &[true, false, true, true]
            ),
            0,
            "no eligible warmth: shallowest eligible queue, lowest index"
        );
        // An all-true mask is exactly `place`.
        let warm = [false, true, false];
        let depth = [2, 4, 1];
        assert_eq!(
            place_masked(&warm, &depth, &[true; 3]),
            place(&warm, &depth)
        );
    }

    #[test]
    #[should_panic(expected = "at least one eligible")]
    fn rejects_a_fully_masked_pool() {
        let _ = place_masked(&[false, false], &[0, 0], &[false, false]);
    }
}
