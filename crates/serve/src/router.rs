//! Shard placement policy for the device pool.
//!
//! The router decides which device owns each shard task. Placement is
//! **load-aware** (fewest queued tasks wins) but **cache-first**: a
//! device whose shard-plan cache already holds this `(plan, shard)` is
//! preferred over any cold device regardless of load, because a warm
//! placement skips both the `norms(A)` kernel launch and the shard's
//! `A`-pack upload over the interconnect — the pool-level analogue of
//! the paper's intra-kernel reuse argument.
//!
//! Ties break to the lowest device index, so placement is a pure
//! deterministic function of `(warm, depth)`: replaying a workload
//! replays the exact shard→device assignment, which the differential
//! suite relies on.

/// Picks the device for one shard task.
///
/// `warm[d]` says whether device `d` has the shard's plan resident;
/// `depth[d]` is its current queue depth (queued plus already placed
/// this batch). Warm devices are preferred; within a class the
/// shallowest queue wins; ties go to the lowest index.
///
/// # Panics
/// Panics if the slices are empty or disagree in length.
#[must_use]
pub fn place(warm: &[bool], depth: &[usize]) -> usize {
    assert!(!warm.is_empty(), "placement over an empty pool");
    assert_eq!(warm.len(), depth.len(), "warm/depth length mismatch");
    let best_in = |class: &mut dyn Iterator<Item = usize>| -> Option<usize> {
        class.min_by_key(|&d| (depth[d], d))
    };
    best_in(&mut (0..warm.len()).filter(|&d| warm[d]))
        .or_else(|| best_in(&mut (0..warm.len())))
        .expect("non-empty pool")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pool_balances_by_depth_with_index_tiebreak() {
        assert_eq!(place(&[false; 4], &[0, 0, 0, 0]), 0, "tie → lowest");
        assert_eq!(place(&[false; 4], &[1, 0, 0, 0]), 1);
        assert_eq!(place(&[false; 4], &[1, 1, 0, 0]), 2);
        assert_eq!(place(&[false; 4], &[2, 1, 3, 1]), 1);
    }

    #[test]
    fn warm_device_wins_even_when_deeper() {
        assert_eq!(
            place(&[false, false, true, false], &[0, 0, 5, 0]),
            2,
            "cache residency beats load"
        );
        // Among several warm devices, load decides again.
        assert_eq!(place(&[true, false, true, false], &[3, 0, 1, 0]), 2);
        assert_eq!(place(&[true, true, false, false], &[2, 2, 0, 0]), 0);
    }

    #[test]
    fn placement_is_deterministic() {
        let warm = [false, true, false];
        let depth = [1, 4, 1];
        assert_eq!(place(&warm, &depth), place(&warm, &depth));
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn rejects_empty_pool() {
        let _ = place(&[], &[]);
    }
}
