//! Synthetic serving workloads: arrival mixes over shared corpora.
//!
//! [`generate_queries`] is deterministic in the seed so tests can
//! replay exactly the stream a benchmark ran; [`run_workload`] drives
//! a [`Server`] with concurrent client threads and returns the final
//! [`ServeReport`].

use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use ks_core::plan::SourceSet;
use ks_core::problem::PointSet;
use rand::distributions::{Distribution, Uniform};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::server::{ServeConfig, ServeReport, Server, Submit, Ticket};
use crate::Query;

/// Workload shape: who asks what, how often against shared corpora.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Queries each client submits.
    pub queries_per_client: usize,
    /// Number of long-lived shared corpora.
    pub corpora: usize,
    /// Probability a query targets a shared corpus (vs minting a
    /// private one the plan cache can never hit).
    pub shared_ratio: f64,
    /// Probability a query uses the double-size variant of its corpus
    /// (the arrival-size mix).
    pub large_ratio: f64,
    /// Sources per (small) corpus.
    pub m: usize,
    /// Targets per query.
    pub n: usize,
    /// Point dimension.
    pub k: usize,
    /// Gaussian bandwidth.
    pub h: f32,
    /// Per-query deadline, applied at submission time.
    pub deadline: Option<Duration>,
    /// Master seed; everything is deterministic in it.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            queries_per_client: 16,
            corpora: 2,
            shared_ratio: 0.8,
            large_ratio: 0.2,
            m: 256,
            n: 128,
            k: 8,
            h: 1.0,
            deadline: None,
            seed: 42,
        }
    }
}

/// The smoke preset used by `ksum serve-bench --smoke` and the
/// acceptance test: small enough for CI, sized so a corpus (32 KB at
/// `m = 256, k = 32`) overflows the serving device's reduced L2 and
/// plan reuse shows up in the DRAM ledger.
#[must_use]
pub fn smoke_workload() -> WorkloadConfig {
    WorkloadConfig {
        clients: 1,
        queries_per_client: 48,
        corpora: 2,
        shared_ratio: 0.8,
        large_ratio: 0.0,
        m: 256,
        n: 128,
        k: 32,
        h: 1.0,
        deadline: None,
        seed: 7,
    }
}

/// Heterogeneous small-query mix: many **distinct** small
/// `(source, target, h)` combinations, the traffic shape horizontal
/// fusion exists for. Unlike [`WorkloadConfig`] — whose queries
/// mostly share one `(corpus, h, targets)` key and coalesce into wide
/// batches — this stream cycles corpora, target sets and bandwidths
/// independently, so a scheduling wave is dominated by mutually
/// unrelated single-column batches that underfill the grid.
#[derive(Debug, Clone)]
pub struct SmallQueryWorkloadConfig {
    /// Total queries in the stream.
    pub queries: usize,
    /// Distinct long-lived small corpora.
    pub corpora: usize,
    /// Distinct shared target sets.
    pub target_sets: usize,
    /// Sources per corpus.
    pub m: usize,
    /// Targets per target set.
    pub n: usize,
    /// Point dimension.
    pub k: usize,
    /// Bandwidths cycled through the stream (each makes its
    /// `(corpus, h)` pair a distinct plan).
    pub h_values: Vec<f32>,
    /// Popularity skew over corpora and target sets: `0.0` visits
    /// combinations round-robin (every wave maximally heterogeneous);
    /// larger values bias draws toward low indices (a hot-corpus
    /// mix), at the cost of occasional repeats within a wave.
    pub skew: f64,
    /// Per-query deadline drawn seeded-uniformly from `[lo, hi]`,
    /// relative to generation time — the mixed-urgency stream the
    /// deadline-aware brownout sheds from. `None` (the default)
    /// leaves every query deadline-free and consumes no RNG draws,
    /// so existing streams replay bit-identically.
    pub deadline_range: Option<(Duration, Duration)>,
    /// Master seed; the stream is deterministic in it.
    pub seed: u64,
}

impl Default for SmallQueryWorkloadConfig {
    fn default() -> Self {
        Self {
            queries: 64,
            corpora: 4,
            target_sets: 4,
            m: 256,
            n: 256,
            k: 32,
            h_values: vec![1.0, 0.8, 1.2, 0.6],
            skew: 0.0,
            deadline_range: None,
            seed: 11,
        }
    }
}

/// The packing smoke preset: waves of 16 mutually-unrelated
/// `(M, N, K) = (256, 256, 32)` queries — 16 distinct
/// `(corpus, target, h)` combinations per wave of 16, with corpora
/// and target sets shared *across* queries so a packed wave dedups
/// uploads. `pack_bench` gates its throughput target on this stream.
#[must_use]
pub fn packed_smoke_workload() -> SmallQueryWorkloadConfig {
    SmallQueryWorkloadConfig::default()
}

/// Generates the heterogeneous small-query stream, deterministic in
/// `cfg.seed`.
///
/// # Panics
/// Panics on a zero-sized workload, an empty bandwidth list, a
/// negative skew, or an inverted deadline range.
#[must_use]
pub fn generate_small_queries(cfg: &SmallQueryWorkloadConfig) -> Vec<Query> {
    assert!(cfg.queries > 0, "empty workload");
    assert!(
        cfg.corpora > 0 && cfg.target_sets > 0,
        "need at least one corpus and one target set"
    );
    assert!(!cfg.h_values.is_empty(), "need at least one bandwidth");
    assert!(cfg.skew >= 0.0, "skew must be non-negative");
    if let Some((lo, hi)) = cfg.deadline_range {
        assert!(lo <= hi, "deadline range must be ordered");
    }
    let generated_at = Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let unit = Uniform::new(0.0f64, 1.0f64);
    let weight = Uniform::new(-0.5f32, 0.5f32);
    let corpora: Vec<SourceSet> = (0..cfg.corpora)
        .map(|c| {
            let seed = cfg.seed.wrapping_mul(3000).wrapping_add(c as u64);
            SourceSet::new(PointSet::uniform_cube(cfg.m, cfg.k, seed))
        })
        .collect();
    let targets: Vec<Arc<PointSet>> = (0..cfg.target_sets)
        .map(|t| {
            let seed = cfg.seed.wrapping_mul(4000).wrapping_add(t as u64);
            Arc::new(PointSet::uniform_cube(cfg.n, cfg.k, seed ^ 0x5EED))
        })
        .collect();
    // Skewed index draw: u^(1+skew) biases toward low indices; skew 0
    // is handled round-robin below for exact per-wave heterogeneity.
    let skewed = |rng: &mut ChaCha8Rng, len: usize| -> usize {
        let u = unit.sample(rng);
        ((len as f64) * u.powf(1.0 + cfg.skew)).min(len as f64 - 1.0) as usize
    };
    (0..cfg.queries)
        .map(|i| {
            let (ci, ti) = if cfg.skew == 0.0 {
                (i % cfg.corpora, (i / cfg.corpora) % cfg.target_sets)
            } else {
                (
                    skewed(&mut rng, cfg.corpora),
                    skewed(&mut rng, cfg.target_sets),
                )
            };
            let weights = (0..cfg.n).map(|_| weight.sample(&mut rng)).collect();
            let deadline = cfg.deadline_range.map(|(lo, hi)| {
                let span = (hi - lo).as_secs_f64();
                generated_at + lo + Duration::from_secs_f64(span * unit.sample(&mut rng))
            });
            Query {
                sources: corpora[ci].clone(),
                targets: Arc::clone(&targets[ti]),
                weights,
                h: cfg.h_values[i % cfg.h_values.len()],
                deadline,
            }
        })
        .collect()
}

/// Generates the full query stream, deterministic in `wl.seed`.
/// Queries are listed client-major: client `c`'s stream is the slice
/// `[c·queries_per_client, (c+1)·queries_per_client)`.
///
/// # Panics
/// Panics on a zero-sized workload or ratios outside `[0, 1]`.
#[must_use]
pub fn generate_queries(wl: &WorkloadConfig) -> Vec<Query> {
    assert!(
        wl.clients > 0 && wl.queries_per_client > 0,
        "empty workload"
    );
    assert!(wl.corpora > 0, "need at least one shared corpus");
    assert!(
        (0.0..=1.0).contains(&wl.shared_ratio) && (0.0..=1.0).contains(&wl.large_ratio),
        "ratios must be in [0, 1]"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(wl.seed);
    let unit = Uniform::new(0.0f64, 1.0f64);
    let weight = Uniform::new(-0.5f32, 0.5f32);
    // Shared pools: a small and a large (2M) variant per corpus slot,
    // each with its own shared target set.
    let small: Vec<(SourceSet, Arc<PointSet>)> = (0..wl.corpora)
        .map(|c| {
            let seed = wl.seed.wrapping_mul(1000).wrapping_add(c as u64);
            (
                SourceSet::new(PointSet::uniform_cube(wl.m, wl.k, seed)),
                Arc::new(PointSet::uniform_cube(wl.n, wl.k, seed ^ 0x5EED)),
            )
        })
        .collect();
    let large: Vec<(SourceSet, Arc<PointSet>)> = (0..wl.corpora)
        .map(|c| {
            let seed = wl.seed.wrapping_mul(2000).wrapping_add(c as u64);
            (
                SourceSet::new(PointSet::uniform_cube(2 * wl.m, wl.k, seed)),
                Arc::new(PointSet::uniform_cube(wl.n, wl.k, seed ^ 0x5EED)),
            )
        })
        .collect();
    let total = wl.clients * wl.queries_per_client;
    (0..total)
        .map(|_| {
            let is_large = unit.sample(&mut rng) < wl.large_ratio;
            let (sources, targets) = if unit.sample(&mut rng) < wl.shared_ratio {
                let pool = if is_large { &large } else { &small };
                let idx = rng.gen_range(0..wl.corpora);
                (pool[idx].0.clone(), Arc::clone(&pool[idx].1))
            } else {
                // Private corpus: fresh identity, guaranteed cache miss.
                let m = if is_large { 2 * wl.m } else { wl.m };
                let seed = rng.gen::<u64>();
                (
                    SourceSet::new(PointSet::uniform_cube(m, wl.k, seed)),
                    Arc::new(PointSet::uniform_cube(wl.n, wl.k, seed ^ 0x5EED)),
                )
            };
            let weights = (0..wl.n).map(|_| weight.sample(&mut rng)).collect();
            Query {
                sources,
                targets,
                weights,
                h: wl.h,
                deadline: None,
            }
        })
        .collect()
}

/// Drives a server with `wl.clients` concurrent producer threads and
/// returns the final report. The worker is never gated
/// (`start_paused` is overridden to `false` — clients block on their
/// own tickets, so a paused worker would deadlock). Rejected queries
/// are dropped, not retried.
///
/// # Panics
/// Panics on an invalid workload or if a client thread panics.
#[must_use]
pub fn run_workload(mut cfg: ServeConfig, wl: &WorkloadConfig) -> ServeReport {
    cfg.start_paused = false;
    let queries = generate_queries(wl);
    let server = Arc::new(Mutex::new(Server::start(cfg)));
    let mut clients = Vec::with_capacity(wl.clients);
    let mut streams: Vec<Vec<Query>> = Vec::with_capacity(wl.clients);
    {
        let mut rest = queries;
        for _ in 0..wl.clients {
            let tail = rest.split_off(wl.queries_per_client.min(rest.len()));
            streams.push(rest);
            rest = tail;
        }
    }
    for stream in streams {
        let server = Arc::clone(&server);
        let deadline = wl.deadline;
        clients.push(std::thread::spawn(move || {
            let mut tickets: Vec<Ticket> = Vec::with_capacity(stream.len());
            for mut q in stream {
                if let Some(d) = deadline {
                    q.deadline = Some(Instant::now() + d);
                }
                // Recover from poisoning: a sibling client panicking
                // mid-submit must not take the rest of the stream
                // down with it (submit itself never panics).
                match server
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .submit(q)
                {
                    Submit::Accepted(t) => tickets.push(t),
                    Submit::Rejected(_) => {}
                }
            }
            for t in tickets {
                let _ = t.wait();
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread panicked");
    }
    let server = Arc::try_unwrap(server)
        .unwrap_or_else(|_| panic!("clients joined, server uniquely owned"))
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    server.shutdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeBackend;

    #[test]
    fn generation_is_deterministic_and_shares_corpora() {
        let wl = WorkloadConfig {
            clients: 2,
            queries_per_client: 10,
            ..WorkloadConfig::default()
        };
        let a = generate_queries(&wl);
        let b = generate_queries(&wl);
        assert_eq!(a.len(), 20);
        for (qa, qb) in a.iter().zip(b.iter()) {
            // Same streams share weights bit-for-bit; corpus ids differ
            // between runs (identity is mint-on-create) but the points
            // must match.
            assert_eq!(qa.weights, qb.weights);
            assert_eq!(qa.sources.points(), qb.sources.points());
        }
        // With shared_ratio 0.8 over 20 queries, at least two must
        // share a corpus identity.
        let shared = a.iter().any(|q| {
            a.iter()
                .filter(|p| p.sources.id() == q.sources.id())
                .count()
                > 1
        });
        assert!(shared, "workload must exercise corpus sharing");
    }

    #[test]
    fn small_query_stream_is_deterministic_and_wave_heterogeneous() {
        let cfg = packed_smoke_workload();
        let a = generate_small_queries(&cfg);
        let b = generate_small_queries(&cfg);
        assert_eq!(a.len(), cfg.queries);
        for (qa, qb) in a.iter().zip(b.iter()) {
            assert_eq!(qa.weights, qb.weights);
            assert_eq!(qa.sources.points(), qb.sources.points());
            assert_eq!(qa.h, qb.h);
        }
        // Round-robin (skew 0): one wave of 16 holds 16 distinct
        // (corpus, targets, h) combinations — nothing coalesces.
        let wave = cfg.corpora * cfg.target_sets;
        let combos: std::collections::HashSet<_> = a[..wave]
            .iter()
            .map(|q| (q.sources.id(), Arc::as_ptr(&q.targets), q.h.to_bits()))
            .collect();
        assert_eq!(combos.len(), wave, "a wave must be fully heterogeneous");
        // ...while the *next* wave revisits the same combinations, so
        // corpora and target sets are genuinely shared across waves.
        for (early, late) in a[..wave].iter().zip(&a[wave..2 * wave]) {
            assert_eq!(early.sources.id(), late.sources.id());
            assert!(Arc::ptr_eq(&early.targets, &late.targets));
        }
    }

    #[test]
    fn small_query_skew_biases_toward_hot_corpora() {
        let cfg = SmallQueryWorkloadConfig {
            queries: 256,
            corpora: 8,
            m: 16,
            n: 8,
            k: 4,
            skew: 4.0,
            ..SmallQueryWorkloadConfig::default()
        };
        let qs = generate_small_queries(&cfg);
        assert_eq!(qs.len(), 256);
        // u^5 sends ~66% of draws to index 0; well over a uniform
        // 1/8 share lands on the hottest corpus.
        let mut counts = std::collections::HashMap::new();
        for q in &qs {
            *counts.entry(q.sources.id()).or_insert(0usize) += 1;
        }
        let hot_hits = *counts.values().max().unwrap();
        assert!(
            hot_hits > qs.len() / 4,
            "skew 4.0 must concentrate load (got {hot_hits}/256)"
        );
    }

    #[test]
    fn workload_completes_on_cpu_backend() {
        let wl = WorkloadConfig {
            clients: 3,
            queries_per_client: 5,
            m: 32,
            n: 16,
            k: 4,
            ..WorkloadConfig::default()
        };
        let cfg = ServeConfig {
            backend: ServeBackend::CpuFused,
            ..ServeConfig::default()
        };
        let report = run_workload(cfg, &wl);
        assert_eq!(report.submitted, 15);
        assert_eq!(report.accepted + report.rejected, report.submitted);
        assert_eq!(
            report.completed + report.expired + report.shed + report.failed,
            report.accepted
        );
    }

    #[test]
    fn small_query_deadlines_draw_within_the_configured_range() {
        let lo = Duration::from_secs(10);
        let hi = Duration::from_secs(20);
        let cfg = SmallQueryWorkloadConfig {
            queries: 32,
            m: 16,
            n: 8,
            k: 4,
            deadline_range: Some((lo, hi)),
            ..SmallQueryWorkloadConfig::default()
        };
        let start = Instant::now();
        let qs = generate_small_queries(&cfg);
        let end = Instant::now();
        let mut distinct = std::collections::HashSet::new();
        for q in &qs {
            let d = q.deadline.expect("range set: every query has a deadline");
            assert!(d >= start + lo, "deadline below the range");
            assert!(d <= end + hi, "deadline above the range");
            distinct.insert(d);
        }
        assert!(
            distinct.len() > 1,
            "a non-degenerate range draws mixed urgencies"
        );
        // The option consumes no draws when off: the default stream
        // is untouched (weights replay bit-identically).
        let off = SmallQueryWorkloadConfig {
            deadline_range: None,
            ..cfg.clone()
        };
        let a = generate_small_queries(&off);
        let b = generate_small_queries(&off);
        for (qa, qb) in a.iter().zip(&b) {
            assert_eq!(qa.weights, qb.weights);
            assert_eq!(qa.deadline, None);
        }
    }
}
